"""Query-time benchmarks for every sampler on a common set-data workload.

These are not paper figures but support the running-time claims of
Theorems 1, 2 and 4: the fair samplers' per-query cost should stay within a
small factor of the standard LSH query and far below the brute-force scan.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CollectAllFairSampler,
    ExactUniformSampler,
    IndependentFairSampler,
    PermutationFairSampler,
    RankPerturbationSampler,
    StandardLSHSampler,
)
from repro.data import select_interesting_queries
from repro.distances import JaccardSimilarity
from repro.lsh import MinHashFamily

RADIUS = 0.2
FAR = 0.1


@pytest.fixture(scope="module")
def workload(small_lastfm):
    measure = JaccardSimilarity()
    query_index = select_interesting_queries(
        small_lastfm, measure, num_queries=1, min_neighbors=10, threshold=RADIUS, seed=2
    )[0]
    return {"dataset": small_lastfm, "query": small_lastfm[query_index], "exclude": query_index}


def _lsh_kwargs():
    return dict(radius=RADIUS, far_radius=FAR, recall=0.95, seed=7)


def test_query_exact_baseline(benchmark, workload):
    sampler = ExactUniformSampler(JaccardSimilarity(), RADIUS, seed=7).fit(workload["dataset"])
    result = benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))
    assert result is None or isinstance(result, int)


def test_query_standard_lsh(benchmark, workload):
    sampler = StandardLSHSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_collect_all_fair(benchmark, workload):
    sampler = CollectAllFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_permutation_fair_section3(benchmark, workload):
    sampler = PermutationFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_rank_perturbation_appendix_a(benchmark, workload):
    sampler = RankPerturbationSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_independent_fair_section4(benchmark, workload):
    sampler = IndependentFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_k_sample_without_replacement(benchmark, workload):
    sampler = PermutationFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample_k(workload["query"], 5, replacement=False))


def test_query_weighted_fair_extension(benchmark, workload):
    """Weighted (distance-sensitive) sampling via rejection over the Section 4 sampler."""
    from repro.core import IndependentFairSampler, WeightedFairSampler, exponential_similarity_weight

    weight = exponential_similarity_weight(scale=4.0)
    sampler = WeightedFairSampler(
        IndependentFairSampler(MinHashFamily(), **_lsh_kwargs()),
        weight=weight,
        max_weight=weight(1.0),
        seed=7,
    ).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_filter_fair_section5(benchmark):
    """Section 5 sampler on an inner-product workload (unit vectors)."""
    import numpy as np

    from repro.core import FilterFairSampler
    from repro.data import planted_inner_product_neighborhood

    points, query, _ = planted_inner_product_neighborhood(
        n_background=800, n_neighbors=30, dim=32, alpha=0.8, beta_max=0.2, seed=3
    )
    sampler = FilterFairSampler(alpha=0.8, beta=0.3, num_structures=6, epsilon=0.05, seed=3).fit(points)
    benchmark(lambda: sampler.sample(query))

"""Query-time benchmarks for every sampler on a common set-data workload.

These are not paper figures but support the running-time claims of
Theorems 1, 2 and 4: the fair samplers' per-query cost should stay within a
small factor of the standard LSH query and far below the brute-force scan.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_result, write_result_json
from repro.core import (
    CollectAllFairSampler,
    ExactUniformSampler,
    IndependentFairSampler,
    PermutationFairSampler,
    RankPerturbationSampler,
    StandardLSHSampler,
    scalar_kernels,
)
from repro.data import select_interesting_queries
from repro.distances import JaccardSimilarity
from repro.lsh import MinHashFamily

RADIUS = 0.2
FAR = 0.1


@pytest.fixture(scope="module")
def workload(small_lastfm):
    measure = JaccardSimilarity()
    query_index = select_interesting_queries(
        small_lastfm, measure, num_queries=1, min_neighbors=10, threshold=RADIUS, seed=2
    )[0]
    return {"dataset": small_lastfm, "query": small_lastfm[query_index], "exclude": query_index}


def _lsh_kwargs():
    return dict(radius=RADIUS, far_radius=FAR, recall=0.95, seed=7)


def test_query_exact_baseline(benchmark, workload):
    sampler = ExactUniformSampler(JaccardSimilarity(), RADIUS, seed=7).fit(workload["dataset"])
    result = benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))
    assert result is None or isinstance(result, int)


def test_query_standard_lsh(benchmark, workload):
    sampler = StandardLSHSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_collect_all_fair(benchmark, workload):
    sampler = CollectAllFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_permutation_fair_section3(benchmark, workload):
    sampler = PermutationFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_rank_perturbation_appendix_a(benchmark, workload):
    sampler = RankPerturbationSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_independent_fair_section4(benchmark, workload):
    sampler = IndependentFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def test_query_k_sample_without_replacement(benchmark, workload):
    sampler = PermutationFairSampler(MinHashFamily(), **_lsh_kwargs()).fit(workload["dataset"])
    benchmark(lambda: sampler.sample_k(workload["query"], 5, replacement=False))


def test_query_weighted_fair_extension(benchmark, workload):
    """Weighted (distance-sensitive) sampling via rejection over the Section 4 sampler."""
    from repro.core import IndependentFairSampler, WeightedFairSampler, exponential_similarity_weight

    weight = exponential_similarity_weight(scale=4.0)
    sampler = WeightedFairSampler(
        IndependentFairSampler(MinHashFamily(), **_lsh_kwargs()),
        weight=weight,
        max_weight=weight(1.0),
        seed=7,
    ).fit(workload["dataset"])
    benchmark(lambda: sampler.sample(workload["query"], exclude_index=workload["exclude"]))


def _time_queries(sampler, query, repeats):
    results = []
    start = time.perf_counter()
    for _ in range(repeats):
        results.append(sampler.sample_detailed(query))
    return results, time.perf_counter() - start


def _compare_modes(build, query, repeats):
    """Time a sampler's queries with the batch kernels on vs forced scalar.

    Both modes run the same (new) query procedures with identically seeded
    structures, so answers and counters must agree exactly; only how
    candidate values are computed differs — which is precisely the cost the
    vectorization removed.
    """
    vectorized = build()
    _time_queries(vectorized, query, 2)  # warm
    vector_results, vector_time = _time_queries(vectorized, query, repeats)
    with scalar_kernels():
        scalar = build()
        _time_queries(scalar, query, 2)
        scalar_results, scalar_time = _time_queries(scalar, query, repeats)
    assert [r.index for r in vector_results] == [r.index for r in scalar_results]
    assert [r.stats for r in vector_results] == [r.stats for r in scalar_results]
    stats = vector_results[0].stats
    return {
        "wall_ms_vectorized": round(vector_time / repeats * 1000, 3),
        "wall_ms_scalar": round(scalar_time / repeats * 1000, 3),
        "speedup": round(scalar_time / vector_time, 2),
        "candidates_examined": stats.candidates_examined,
        "distance_evaluations": stats.distance_evaluations,
        "kernel_calls": stats.kernel_calls,
        "rounds": stats.rounds,
    }


def test_vectorized_pipeline_speedup_on_candidate_heavy_workload():
    """Tentpole acceptance (PR 3): on a candidate-heavy (large-bucket)
    workload, the samplers that score whole candidate sets per query must be
    at least 5x faster through the columnar batch kernels than through the
    scalar per-pair loop (the pre-vectorization evaluation path, pinned via
    ``scalar_kernels``) — with identical seeded outputs and work counters,
    and ~1 kernel call per rejection round / bucket instead of one
    Python-level evaluation per candidate.

    The workload is Euclidean with a deliberately wide p-stable bucket width
    (``K = 1``), so all 4040 points collide in every one of the 15 tables:
    every query faces a ~60k-reference multiset and a 4040-point distinct
    candidate set, the regime where the ``b(q, cr)`` candidate-scoring term
    of the paper's query bound dominates.
    """
    from repro.core import ApproximateNeighborhoodSampler
    from repro.data import planted_neighborhood
    from repro.lsh.pstable import PStableFamily

    dim = 64
    points, query, _ = planted_neighborhood(
        n_background=4000, n_neighbors=40, dim=dim, radius=1.0, seed=3
    )

    def build_lsh(sampler_cls):
        def build():
            return sampler_cls(
                PStableFamily(dim=dim, width=200.0),
                radius=1.0,
                far_radius=4.0,
                num_hashes=1,
                num_tables=15,
                seed=7,
            ).fit(points)

        return build

    def build_exact():
        from repro.distances import EuclideanDistance

        return ExactUniformSampler(EuclideanDistance(), radius=1.0, seed=7).fit(points)

    lines = ["sampler                          vectorized     scalar    speedup"]
    payload = {
        "workload": "euclidean planted neighborhood, n=4040, dim=64, K=1, L=15, "
        "width=200 (all points collide in every table)",
        "samplers": {},
    }
    cases = [
        ("CollectAllFairSampler", build_lsh(CollectAllFairSampler), 10),
        ("ApproximateNeighborhoodSampler", build_lsh(ApproximateNeighborhoodSampler), 10),
        ("ExactUniformSampler", build_exact, 10),
        ("IndependentFairSampler", build_lsh(IndependentFairSampler), 5),
        ("PermutationFairSampler", build_lsh(PermutationFairSampler), 10),
    ]
    for name, build, repeats in cases:
        row = _compare_modes(build, query, repeats)
        payload["samplers"][name] = row
        lines.append(
            f"{name:<30} {row['wall_ms_vectorized']:8.2f}ms "
            f"{row['wall_ms_scalar']:8.2f}ms {row['speedup']:8.2f}x"
        )
    write_result("samplers_vectorized_speedup", "\n".join(lines))
    write_result_json("samplers_vectorized_speedup", payload)

    # Acceptance: >= 5x wherever the query scores the whole candidate set —
    # one batched kernel call replacing thousands of per-pair Python calls.
    # (The Section 3/4 structures scan far fewer candidates per query by
    # design — that is their point — so they gain less; their rows are
    # reported for the trajectory but not gated.)
    for gated in ("CollectAllFairSampler", "ApproximateNeighborhoodSampler", "ExactUniformSampler"):
        assert payload["samplers"][gated]["speedup"] >= 5.0, (gated, payload["samplers"][gated])


def test_query_filter_fair_section5(benchmark):
    """Section 5 sampler on an inner-product workload (unit vectors)."""

    from repro.core import FilterFairSampler
    from repro.data import planted_inner_product_neighborhood

    points, query, _ = planted_inner_product_neighborhood(
        n_background=800, n_neighbors=30, dim=32, alpha=0.8, beta_max=0.2, seed=3
    )
    sampler = FilterFairSampler(alpha=0.8, beta=0.3, num_structures=6, epsilon=0.05, seed=3).fit(points)
    benchmark(lambda: sampler.sample(query))

"""Shared fixtures and helpers for the benchmark harness.

Every figure-level benchmark both (a) times the core operation with
pytest-benchmark and (b) regenerates the figure's rows/series with a reduced
but structurally faithful configuration, writing the text rendering to
``benchmarks/results/`` so the numbers quoted in EXPERIMENTS.md can be
re-derived with a single ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a figure reproduction to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def write_result_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark results to benchmarks/results/<name>.json.

    The JSON sits alongside the human-readable .txt rendering so the perf
    trajectory (wall-ms, candidates, distance evaluations, kernel calls per
    workload) can be diffed and plotted across PRs.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def small_lastfm():
    """A reduced Last.FM-like dataset shared by the benchmarks."""
    from repro.data import generate_lastfm_like

    return generate_lastfm_like(num_users=300, seed=1)


@pytest.fixture(scope="session")
def small_movielens():
    """A reduced MovieLens-like dataset shared by the benchmarks."""
    from repro.data import generate_movielens_like

    return generate_movielens_like(num_users=300, seed=1)

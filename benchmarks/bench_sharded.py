"""Sharded serving benchmark: batched throughput across index partitions.

The tentpole claim of the sharded engine is quantified here and persisted to
``benchmarks/results/engine_sharded_throughput.json``:

* **Sharded batched queries beat the unsharded engine.**  On a 100k-point
  euclidean serving workload, ``ShardedEngine`` at 4 shards must answer a
  300-query batch at **>= 2x** the throughput of the unsharded
  ``BatchQueryEngine`` — while returning byte-identical responses.

Where the win comes from: the unsharded Section 3 query materializes the
full colliding multiset per query (tens of thousands of references on
candidate-heavy workloads), sorts it by rank and deduplicates it, even
though the answer — the minimum-rank near point — is almost always decided
within the first few hundred candidates.  The sharded engine exploits the
exchangeable ``2^62`` rank domain instead: each shard surfaces only its
bottom-``B`` colliding references by rank (an ``argpartition``, O(shard
multiset)), the engine merges the per-shard prefixes into a provably
complete global rank prefix, and the sampler's early-exit scan runs on
that — byte-identical answers and work counters, at a fraction of the sort
work.  On multicore hosts the per-shard gathers and (for deterministic
samplers) whole queries additionally run on a thread pool; the numbers
below are from whatever host runs the benchmark, so the algorithmic win is
the floor, not the ceiling.

The workload is clustered (serving traffic queries near existing data):
100k points in 400 Gaussian clusters, queries landing near cluster centers,
radius covering the local cluster — dense neighborhoods, large buckets,
early hits.  Mutation-inclusive equivalence is covered by the tier-1 suite
(``tests/test_sharded.py``); this file is about throughput.

The **process executor** (PR 7) is measured on the same workload:
``ProcessShardedEngine`` replicates each shard into a worker process
reading the dataset zero-copy through shared memory and gathers every
query's rank prefix in one batched frame round per shard.  Since PR 10
both executors run the *same* unified gather core and self-tuning
budget controller (``repro.engine.gather``), so the process fleet's
former algorithmic edge -- a narrower starting budget -- is now shared;
what remains process-specific is IPC framing cost versus true CPU
parallelism.  Acceptance: at the same shard count the worker-side
gather plus IPC batching must cost at most a bounded overhead over the
thread pool's in-process gathers (process @ 4 within 1.25x of thread
@ 4).  On a single-core container that overhead is all the process
fleet can show; on multicore hosts the GIL-free workers add real
parallelism on top and the ratio drops below 1.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from benchmarks.conftest import write_result, write_result_json
from repro.core import PermutationFairSampler, StandardLSHSampler
from repro.engine import BatchQueryEngine, ProcessShardedEngine, ShardedEngine
from repro.engine.requests import QueryRequest
from repro.lsh import PStableFamily

N_POINTS = 100_000
DIM = 24
N_CLUSTERS = 400
N_QUERIES = 300
RADIUS = 2.8
FAR_RADIUS = 6.0
SHARD_COUNTS = (1, 2, 4)

# The thread@4 batched latency recorded in
# benchmarks/results/engine_sharded_throughput.txt before the unified
# gather layer (PR 10) replaced the static per-shard budget ladder with
# the shared self-tuning controller.  The port must pay for itself.
PRIOR_BEST_THREAD4_MS = 337.5
THREAD4_REQUIRED_IMPROVEMENT = 1.15


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def _timed_best(callable_, repeats=2):
    """Best-of-*repeats* wall time (same value every run: queries are
    deterministic).  Applied to every configuration identically, this
    filters scheduler noise on small hosts without biasing the comparison."""
    value, best = _timed(callable_)
    for _ in range(repeats - 1):
        again, seconds = _timed(callable_)
        assert again == value
        best = min(best, seconds)
    return value, best


def _workload():
    rng = np.random.default_rng(2024)
    centers = rng.normal(size=(N_CLUSTERS, DIM)) * 2.0
    assignment = rng.integers(0, N_CLUSTERS, size=N_POINTS)
    points = centers[assignment] + rng.normal(size=(N_POINTS, DIM)) * 0.35
    dataset = [points[i] for i in range(N_POINTS)]
    queries = [
        centers[c] + rng.normal(size=DIM) * 0.3
        for c in rng.integers(0, N_CLUSTERS, size=N_QUERIES)
    ]
    return dataset, queries


def _sampler(seed=17):
    return PermutationFairSampler(
        PStableFamily(dim=DIM, width=8.0),
        radius=RADIUS,
        far_radius=FAR_RADIUS,
        num_hashes=2,
        num_tables=10,
        seed=seed,
    )


def test_sharded_batched_throughput():
    """Tentpole acceptance (PR 5): >= 2x batched-query throughput at 4 shards
    on the 100k-point workload, byte-identical answers at every shard count."""
    dataset, queries = _workload()

    engine, build_seconds = _timed(lambda: BatchQueryEngine.build(_sampler(), dataset))
    engine.sample_batch(queries[:20])  # warm caches and the columnar store
    reference, unsharded_seconds = _timed_best(lambda: engine.sample_batch(queries))
    found = sum(answer is not None for answer in reference)
    # The unsharded engine is only needed for its reference answers; drop it
    # so the hundreds of MB it pins don't inflate allocator pressure (and
    # worker fork images) for every configuration measured after it.
    del engine
    gc.collect()

    lines = [
        f"workload: {N_POINTS} points, dim {DIM}, {N_CLUSTERS} clusters, "
        f"{N_QUERIES} queries, radius {RADIUS} (answers found: {found}/{N_QUERIES})",
        f"unsharded build: {build_seconds:8.2f}s",
        f"unsharded batch: {unsharded_seconds * 1000:8.1f}ms "
        f"({N_QUERIES / unsharded_seconds:7.0f} q/s)",
        "",
        "shards     batch      q/s   speedup   prefix-escalations   shard-merges",
    ]
    payload = {
        "workload": {
            "points": N_POINTS,
            "dim": DIM,
            "clusters": N_CLUSTERS,
            "queries": N_QUERIES,
            "radius": RADIUS,
            "answers_found": int(found),
        },
        "unsharded": {
            "wall_ms_build": round(build_seconds * 1000, 1),
            "wall_ms_batch": round(unsharded_seconds * 1000, 3),
            "queries_per_second": round(N_QUERIES / unsharded_seconds, 1),
        },
        "sharded": {},
    }

    speedups = {}
    thread_seconds = {}
    for n_shards in SHARD_COUNTS:
        sharded, shard_build = _timed(
            lambda: ShardedEngine.build(_sampler(), dataset, n_shards=n_shards)
        )
        sharded.sample_batch(queries[:20])
        answers, sharded_seconds = _timed_best(lambda: sharded.sample_batch(queries))
        # The merge is exact: byte-identical answers at every shard count.
        assert answers == reference
        speedups[n_shards] = unsharded_seconds / sharded_seconds
        thread_seconds[n_shards] = sharded_seconds
        stats = sharded.stats
        lines.append(
            f"{n_shards:>6} {sharded_seconds * 1000:8.1f}ms {N_QUERIES / sharded_seconds:8.0f} "
            f"{speedups[n_shards]:8.2f}x {stats.prefix_escalations:>19} {stats.shard_merges:>14}"
        )
        payload["sharded"][str(n_shards)] = {
            "wall_ms_build": round(shard_build * 1000, 1),
            "wall_ms_batch": round(sharded_seconds * 1000, 3),
            "queries_per_second": round(N_QUERIES / sharded_seconds, 1),
            "speedup_vs_unsharded": round(speedups[n_shards], 2),
            "byte_identical": True,
            "prefix_scans": stats.prefix_scans,
            "prefix_escalations": stats.prefix_escalations,
            "shard_merges": stats.shard_merges,
        }
        sharded.close()
        gc.collect()

    lines += [
        "",
        "process executor (shard replicas in worker processes, shared-memory "
        "dataset):",
        "shards     batch      q/s   speedup   prefix-escalations   ipc-sent"
        "   ipc-recv",
    ]
    payload["process"] = {}
    process_seconds = {}
    for n_shards in SHARD_COUNTS:
        gc.collect()
        procs, proc_build = _timed(
            lambda: ProcessShardedEngine.build(_sampler(), dataset, n_shards=n_shards)
        )
        try:
            procs.sample_batch(queries[:20])
            answers, proc_seconds_ = _timed_best(lambda: procs.sample_batch(queries))
            # Still byte-identical: the worker gather is the same provably
            # complete rank prefix, just computed out-of-process.
            assert answers == reference
            process_seconds[n_shards] = proc_seconds_
            stats = procs.stats
            lines.append(
                f"{n_shards:>6} {proc_seconds_ * 1000:8.1f}ms "
                f"{N_QUERIES / proc_seconds_:8.0f} "
                f"{unsharded_seconds / proc_seconds_:8.2f}x "
                f"{stats.prefix_escalations:>19} "
                f"{stats.ipc_bytes_sent:>10} {stats.ipc_bytes_received:>10}"
            )
            payload["process"][str(n_shards)] = {
                "wall_ms_build": round(proc_build * 1000, 1),
                "wall_ms_batch": round(proc_seconds_ * 1000, 3),
                "queries_per_second": round(N_QUERIES / proc_seconds_, 1),
                "speedup_vs_unsharded": round(unsharded_seconds / proc_seconds_, 2),
                "byte_identical": True,
                "prefix_scans": stats.prefix_scans,
                "prefix_escalations": stats.prefix_escalations,
                "worker_restarts": stats.worker_restarts,
                "ipc_bytes_sent": stats.ipc_bytes_sent,
                "ipc_bytes_received": stats.ipc_bytes_received,
            }
        finally:
            procs.close()

    best_thread = min(thread_seconds.values())
    lines.append(
        f"\nprocess @ 4 shards vs best thread config: "
        f"{process_seconds[4] * 1000:.1f}ms vs {best_thread * 1000:.1f}ms "
        f"({best_thread / process_seconds[4]:.2f}x)"
    )
    write_result("engine_sharded_throughput", "\n".join(lines))
    write_result_json("engine_sharded_throughput", payload)

    # Acceptance: >= 2x batched throughput at 4 shards.
    assert speedups[4] >= 2.0
    # Acceptance (PR 7, re-baselined by PR 10): with the gather core and
    # budget controller now shared, the process fleet's worker-side gather
    # plus IPC batching must stay within a bounded overhead of the thread
    # pool at the same shard count.  (Pre-unification this read "process
    # beats the best thread config outright" — an edge that was really the
    # thread engine's static over-wide budget ladder, which PR 10 deleted.)
    assert process_seconds[4] <= thread_seconds[4] * 1.25, (
        f"process@4 {process_seconds[4] * 1000:.1f}ms exceeds 1.25x "
        f"thread@4 {thread_seconds[4] * 1000:.1f}ms"
    )
    # Acceptance (PR 10): the unified gather's self-tuning budget must beat
    # the static-ladder thread@4 latency this file recorded before the port.
    assert thread_seconds[4] * 1000 * THREAD4_REQUIRED_IMPROVEMENT <= PRIOR_BEST_THREAD4_MS, (
        f"thread@4 {thread_seconds[4] * 1000:.1f}ms did not improve "
        f">= {THREAD4_REQUIRED_IMPROVEMENT}x on {PRIOR_BEST_THREAD4_MS}ms"
    )


def _standard_lsh_sampler(seed=17):
    return StandardLSHSampler(
        PStableFamily(dim=DIM, width=8.0),
        radius=RADIUS,
        far_radius=FAR_RADIUS,
        num_hashes=2,
        num_tables=10,
        seed=seed,
        use_ranks=True,
    )


def test_prefix_path_covers_sample_k_and_standard_lsh():
    """PR 10 acceptance: the widened prefix contract carries the new modes.

    ``sample_k`` batches (Section 3.1 k-lowest-ranks draws) and classical
    ``standard_lsh`` single-draw batches must both ride the bounded
    rank-prefix gather (``prefix_scans > 0``) on the thread *and* process
    executors — byte-identical to the unsharded engine, on the same
    100k-point workload the throughput test measures.
    """
    dataset, queries = _workload()
    modes = {
        "permutation_sample_k3": (
            _sampler,
            [QueryRequest(q, k=3, replacement=False) for q in queries],
        ),
        "standard_lsh_single": (_standard_lsh_sampler, list(queries)),
    }

    lines = [
        f"workload: {N_POINTS} points, dim {DIM}, {N_CLUSTERS} clusters, "
        f"{N_QUERIES} queries, radius {RADIUS}",
        "",
        "mode                      executor     batch   prefix-scans   escalations",
    ]
    payload = {}
    for mode, (make_sampler, requests) in modes.items():
        engine = BatchQueryEngine.build(make_sampler(), dataset)
        engine.run(requests[:20])
        reference, unsharded_seconds = _timed_best(lambda: engine.run(requests))
        del engine
        gc.collect()
        payload[mode] = {
            "unsharded": {"wall_ms_batch": round(unsharded_seconds * 1000, 3)}
        }
        lines.append(
            f"{mode:<25} {'unsharded':<10} {unsharded_seconds * 1000:7.1f}ms "
            f"{'-':>12} {'-':>13}"
        )
        for label, engine_cls in (("thread", ShardedEngine), ("process", ProcessShardedEngine)):
            sharded = engine_cls.build(make_sampler(), dataset, n_shards=4)
            try:
                sharded.run(requests[:20])
                answers, seconds = _timed_best(lambda: sharded.run(requests))
                # Byte-identical: certification makes the prefix path exact.
                assert answers == reference
                stats = sharded.stats
                # The point of the port: the new modes actually take the
                # bounded gather, on both executors.
                assert stats.prefix_scans > 0, (mode, label)
                payload[mode][label] = {
                    "wall_ms_batch": round(seconds * 1000, 3),
                    "speedup_vs_unsharded": round(unsharded_seconds / seconds, 2),
                    "byte_identical": True,
                    "prefix_scans": stats.prefix_scans,
                    "prefix_escalations": stats.prefix_escalations,
                    "prefix_budget": stats.prefix_budget,
                }
                lines.append(
                    f"{mode:<25} {label + '@4':<10} {seconds * 1000:7.1f}ms "
                    f"{stats.prefix_scans:>12} {stats.prefix_escalations:>13}"
                )
            finally:
                sharded.close()
            gc.collect()

    write_result("engine_gather_prefix", "\n".join(lines))
    write_result_json("engine_gather_prefix", payload)

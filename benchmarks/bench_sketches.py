"""Throughput benchmarks for the count-distinct sketch substrate (Section 4)."""

from __future__ import annotations

import pytest

from repro.sketches import BottomTSketch, DistinctCountSketcher


@pytest.fixture(scope="module")
def sketcher():
    return DistinctCountSketcher(universe_size=100_000, epsilon=0.5, delta=0.01, seed=0)


def test_sketch_build_small_bucket(benchmark, sketcher):
    """Sketching a typical LSH bucket (a few dozen members)."""
    keys = list(range(40))
    benchmark(lambda: sketcher.sketch_keys(keys))


def test_sketch_build_large_bucket(benchmark, sketcher):
    keys = list(range(2000))
    benchmark(lambda: sketcher.sketch_keys(keys))


def test_sketch_merge_pair(benchmark, sketcher):
    a = sketcher.sketch_keys(range(0, 500))
    b = sketcher.sketch_keys(range(250, 750))
    benchmark(lambda: a.merge(b))


def test_sketch_merge_many(benchmark, sketcher):
    """Merging L = 64 bucket sketches, the per-query cost of the Section 4 estimate."""
    parts = [sketcher.sketch_keys(range(i * 30, i * 30 + 40)) for i in range(64)]
    benchmark(lambda: BottomTSketch.merge_all(parts))


def test_sketch_estimate(benchmark, sketcher):
    sketch = sketcher.sketch_keys(range(3000))
    benchmark(sketch.estimate)

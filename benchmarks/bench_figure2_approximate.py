"""Figure 2 (Q2): unfairness of approximate-neighborhood sampling.

Regenerates the Section 6.2 result on the clustered-neighborhood instance:
the empirical sampling probabilities of the landmark points X (similarity
0.5, isolated), Y (similarity 0.6, clustered) and Z (similarity 0.9), with
X reported far more often than Y despite being less similar to the query.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments import Q2Config, format_q2, run_q2


@pytest.fixture(scope="module")
def q2_result():
    config = Q2Config(min_subset_size=15, repetitions=60, trials=16, recall=0.95, seed=2)
    result = run_q2(config)
    write_result("figure2_approximate", format_q2(result))
    return result


def test_figure2_sampling_probabilities(benchmark, q2_result):
    """Benchmark one approximate-neighborhood query on the full instance."""
    from repro.core import ApproximateNeighborhoodSampler
    from repro.data import clustered_neighborhood_instance
    from repro.lsh import MinHashFamily
    from repro.lsh.params import select_parameters

    instance = clustered_neighborhood_instance(min_subset_size=15)
    family = MinHashFamily()
    params = select_parameters(
        family, near_threshold=0.9, far_threshold=0.1, n=len(instance.dataset),
        recall=0.95, max_expected_far_collisions=5.0,
    )
    sampler = ApproximateNeighborhoodSampler(
        family, radius=instance.r, far_radius=instance.cr,
        num_hashes=params.k, num_tables=params.l, seed=0,
    ).fit(instance.dataset)

    benchmark(lambda: sampler.sample(instance.query))

    # Figure 2 shape: X dominates Y by a large factor, Z is reported often.
    quartiles = q2_result.quartiles()
    assert q2_result.x_over_y_ratio() > 5.0
    assert quartiles["X"]["mean"] > quartiles["Y"]["mean"]
    assert quartiles["Z"]["mean"] > quartiles["Y"]["mean"]


def test_figure2_exact_neighborhood_sampler_is_fair_on_same_instance(benchmark):
    """Control: the exact-neighborhood fair sampler treats X, Y, Z at similarity
    >= r uniformly (here only Z is r-near at r = 0.9, so it gets all the mass)."""
    from repro.core import CollectAllFairSampler
    from repro.data import clustered_neighborhood_instance
    from repro.lsh import MinHashFamily
    from repro.lsh.params import select_parameters

    instance = clustered_neighborhood_instance(min_subset_size=16)
    family = MinHashFamily()
    params = select_parameters(
        family, near_threshold=0.9, far_threshold=0.1, n=len(instance.dataset),
        recall=0.95, max_expected_far_collisions=5.0,
    )
    sampler = CollectAllFairSampler(
        family, radius=instance.r, far_radius=instance.cr,
        num_hashes=params.k, num_tables=params.l, seed=0,
    ).fit(instance.dataset)

    result = benchmark(lambda: sampler.sample(instance.query))
    assert result == instance.index_z

"""Storage-backend benchmark: cold-start-to-first-query and steady state.

The point of the out-of-core tiers is the *cold path*: a format-5 snapshot
loaded with ``store="memmap"`` opens the dataset and bucket arrays as
memory maps — file headers, not the corpus — so a serving process answers
its first query without materializing 100k vectors it may never touch.
This benchmark measures, on a 100k-point dense workload:

* **cold start** — ``load_engine`` wall time, and wall time to the *first
  answered query*, for the legacy zipped format (v3, everything
  materialized) and the v5 snapshot through all three backends;
* **steady state** — batched query throughput per backend once warm, so
  the price of lazy tiers under sustained load is visible next to their
  cold-start win (remote runs against an in-process block client: the
  protocol + cache overhead without network noise);
* **identity** — the first responses of every backend are asserted
  identical, so every measured configuration is also a correctness run.

Results persist to ``benchmarks/results/store_backends.{json,txt}``.  The
guard at the bottom pins the tentpole claim: memmap cold start at least
10x faster than the legacy materializing load on this workload.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np
import numpy.ma  # noqa: F401 - pre-warm numpy's lazy submodule import so the
# first measured query times storage, not a one-time interpreter cost (it
# would otherwise land in whichever backend queries first).

from benchmarks.conftest import write_result, write_result_json
from repro.engine import BatchQueryEngine, load_engine, save_engine
from repro.engine.requests import QueryRequest
from repro.spec import LSHSpec, SamplerSpec
from repro.store import LocalBlockClient

N_POINTS = 100_000
DIM = 128
N_QUERIES = 64
STEADY_BATCHES = 3
REMOTE_STORE = {"backend": "remote", "cache_blocks": 256, "block_size": 512}
# The permutation sampler keeps its snapshot state small (no per-bucket
# sketches), so the cold path measures the storage tiers, not pickling of
# sampler-specific auxiliary structures.
SPEC = SamplerSpec(
    "permutation",
    {"radius": 0.7, "far_radius": 0.2, "num_hashes": 10, "num_tables": 6},
    lsh=LSHSpec("hyperplane", {"dim": DIM}),
    seed=23,
)


def _dataset():
    rng = np.random.default_rng(11)
    points = rng.standard_normal((N_POINTS, DIM))
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    return np.ascontiguousarray(points)


def _cold_start(directory, first_query, **load_kwargs):
    """(engine, seconds to loaded, seconds to first answered query)."""
    start = time.perf_counter()
    engine = load_engine(directory, **load_kwargs)
    loaded = time.perf_counter() - start
    response = engine.run([QueryRequest(query=first_query)])[0]
    answered = time.perf_counter() - start
    return engine, loaded, answered, response


def _steady_qps(engine, queries):
    requests = [QueryRequest(query=q) for q in queries]
    engine.run(requests)  # warm caches / lazy tiers
    start = time.perf_counter()
    for _ in range(STEADY_BATCHES):
        engine.run(requests)
    return STEADY_BATCHES * len(requests) / (time.perf_counter() - start)


def test_store_backend_cold_start_and_throughput():
    points = _dataset()
    rng = np.random.default_rng(29)
    queries = [points[int(i)] for i in rng.choice(N_POINTS, size=N_QUERIES, replace=False)]

    tmp = tempfile.mkdtemp(prefix="bench-stores-")
    try:
        engine = BatchQueryEngine.build(SPEC.build(), points)
        save_engine(engine, f"{tmp}/legacy", format_version=3)
        save_engine(engine, f"{tmp}/v5", format_version=5)
        del engine

        runs = {
            "legacy_v3": (f"{tmp}/legacy", {}),
            "inram": (f"{tmp}/v5", {}),
            "memmap": (f"{tmp}/v5", {"store": "memmap"}),
            "remote": (
                f"{tmp}/v5",
                {"store": REMOTE_STORE, "block_client": LocalBlockClient(f"{tmp}/v5")},
            ),
        }
        rows, first_responses = {}, {}
        for name, (directory, kwargs) in runs.items():
            engine, loaded, answered, response = _cold_start(directory, queries[0], **kwargs)
            first_responses[name] = response
            rows[name] = {
                "load_seconds": round(loaded, 4),
                "cold_start_to_first_query_seconds": round(answered, 4),
                "steady_queries_per_second": round(_steady_qps(engine, queries), 1),
            }

        # Every measured configuration answers identically.
        reference = first_responses["legacy_v3"]
        for name, response in first_responses.items():
            assert response.indices == reference.indices, name
            assert response.value == reference.value, name

        speedup = round(
            rows["legacy_v3"]["cold_start_to_first_query_seconds"]
            / rows["memmap"]["cold_start_to_first_query_seconds"],
            1,
        )
        payload = {
            "workload": {
                "points": N_POINTS,
                "dim": DIM,
                "queries": N_QUERIES,
                "steady_batches": STEADY_BATCHES,
                "remote_store": REMOTE_STORE,
            },
            "backends": rows,
            "memmap_cold_start_speedup_vs_legacy": speedup,
        }
        lines = ["store backends: cold start to first query / steady throughput", ""]
        for name, row in rows.items():
            lines.append(
                f"{name:>9}: load {row['load_seconds'] * 1e3:8.1f} ms   "
                f"first query {row['cold_start_to_first_query_seconds'] * 1e3:8.1f} ms   "
                f"steady {row['steady_queries_per_second']:8.1f} q/s"
            )
        lines.append("")
        lines.append(f"memmap cold-start speedup vs legacy v3: {speedup}x")
        write_result("store_backends", "\n".join(lines))
        write_result_json("store_backends", payload)
        print("\n".join(lines))

        # The tentpole claim: mapping beats materializing by an order of
        # magnitude on the cold path.
        assert speedup >= 10.0, lines
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

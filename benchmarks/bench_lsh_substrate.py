"""Throughput benchmarks for the LSH substrate (hashing and tables).

The repro hint for this paper is that raw Python hashing loops are the
bottleneck; these benchmarks quantify the vectorized batch-hashing path
against the per-function fallback and the table query path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lsh import LSHTables, MinHashFamily, OneBitMinHashFamily


@pytest.fixture(scope="module")
def minhash_functions():
    family = MinHashFamily()
    rng = np.random.default_rng(0)
    return family, [family.sample(rng) for _ in range(128)]


def test_batch_hashing_dataset(benchmark, small_lastfm, minhash_functions):
    """Vectorized hashing of the whole dataset under 128 functions."""
    family, functions = minhash_functions
    hasher = family.make_batch_hasher(functions)
    benchmark(lambda: hasher.keys_for_dataset(small_lastfm))


def test_loop_hashing_dataset_subset(benchmark, small_lastfm, minhash_functions):
    """Per-function fallback on a small subset (ablation: batch vs loop)."""
    _, functions = minhash_functions
    subset = small_lastfm[:50]
    benchmark(lambda: [f.hash_dataset(subset) for f in functions[:16]])


def test_batch_hashing_single_point(benchmark, small_lastfm, minhash_functions):
    family, functions = minhash_functions
    hasher = family.make_batch_hasher(functions)
    benchmark(lambda: hasher.keys_for_point(small_lastfm[0]))


def test_table_construction(benchmark, small_lastfm):
    family = OneBitMinHashFamily().concatenate(8)
    benchmark(lambda: LSHTables(family, l=64, seed=1).fit(small_lastfm))


def test_table_query_candidates(benchmark, small_lastfm):
    family = OneBitMinHashFamily().concatenate(8)
    tables = LSHTables(family, l=64, seed=1).fit(small_lastfm)
    benchmark(lambda: tables.query_candidates(small_lastfm[0]))


def test_table_rank_range_query(benchmark, small_lastfm):
    family = OneBitMinHashFamily().concatenate(8)
    ranks = np.random.default_rng(2).permutation(len(small_lastfm))
    tables = LSHTables(family, l=64, seed=1).fit(small_lastfm, ranks=ranks)
    n = len(small_lastfm)
    benchmark(lambda: tables.rank_range_candidates(small_lastfm[0], n // 4, n // 2))

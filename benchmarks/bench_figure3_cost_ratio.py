"""Figure 3 (Q3): the cost ratio b(q, cr) / b(q, r).

Regenerates the per-(r, c) ratio distributions on the Last.FM-like and
MovieLens-like datasets and checks the paper's qualitative findings: ratios
stay modest on Last.FM even for large gaps, grow much larger on MovieLens for
small c, and are monotone in the gap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments import Q3Config, format_q3, run_q3


@pytest.fixture(scope="module")
def q3_results():
    results = {}
    for dataset in ("lastfm", "movielens"):
        config = Q3Config(dataset=dataset, num_users=250, num_queries=20, seed=3)
        results[dataset] = run_q3(config)
        write_result(f"figure3_{dataset}", format_q3(results[dataset]))
    return results


def test_figure3_ratio_computation(benchmark, small_lastfm, q3_results):
    """Benchmark the brute-force ratio computation for one (r, c) cell.

    Depending on ``q3_results`` ensures the figure data files are written even
    when only benchmark-marked tests run (``--benchmark-only``).
    """
    from repro.data import select_interesting_queries
    from repro.distances import JaccardSimilarity
    from repro.distances.ball import cost_ratio

    measure = JaccardSimilarity()
    queries = [
        small_lastfm[i]
        for i in select_interesting_queries(
            small_lastfm, measure, num_queries=10, min_neighbors=10, threshold=0.2, seed=3
        )
    ]
    benchmark(lambda: cost_ratio(small_lastfm, queries, r=0.2, relaxed=0.05, measure=measure))


def test_figure3_shapes(q3_results):
    """Check the qualitative Figure 3 findings on both datasets."""
    for dataset, result in q3_results.items():
        summary = result.cell_summary()
        for r in result.config.radii:
            medians = [
                summary[(float(r), float(c))]["median"] for c in sorted(result.config.c_values)
            ]
            # Smaller c (first entries) means a bigger gap and a ratio at least
            # as large as for bigger c.
            assert medians[0] >= medians[-1]
            assert all(m >= 1.0 or m == 0.0 for m in medians)

    # Cross-dataset claim: the MovieLens-like data has (weakly) larger worst-case
    # ratios than the Last.FM-like data at the most aggressive cell.
    aggressive = (0.25, 0.2)
    lastfm_max = q3_results["lastfm"].cell_summary()[aggressive]["max"]
    movielens_max = q3_results["movielens"].cell_summary()[aggressive]["max"]
    assert movielens_max >= 0.5 * lastfm_max

"""Figure 1 (Q1): output-distribution fairness of standard vs fair LSH.

The paper's Figure 1 plots, per query, the relative report frequency of each
neighbor against its similarity to the query: standard LSH shows a clear
gradient towards high-similarity points, fair LSH does not.  This benchmark
regenerates those series (on the synthetic stand-ins for Last.FM and
MovieLens, see DESIGN.md) and times the audited query loop for both samplers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments import Q1Config, format_q1, run_q1


@pytest.fixture(scope="module")
def q1_lastfm_result():
    config = Q1Config(
        dataset="lastfm", num_users=250, num_queries=4, repetitions=250,
        radius=0.15, recall=0.95, seed=1,
    )
    result = run_q1(config)
    write_result("figure1_lastfm", format_q1(result))
    return result


@pytest.fixture(scope="module")
def q1_movielens_result():
    config = Q1Config(
        dataset="movielens", num_users=200, num_queries=3, repetitions=150,
        radius=0.2, recall=0.95, seed=1,
    )
    result = run_q1(config)
    write_result("figure1_movielens", format_q1(result))
    return result


def test_figure1_lastfm_standard_lsh_is_biased(benchmark, q1_lastfm_result):
    """Benchmark the standard-LSH audit loop and check the Figure 1 shape."""
    from repro.core import StandardLSHSampler
    from repro.data import generate_lastfm_like, select_interesting_queries
    from repro.distances import JaccardSimilarity
    from repro.lsh import OneBitMinHashFamily

    dataset = generate_lastfm_like(num_users=250, seed=1)
    sampler = StandardLSHSampler(
        OneBitMinHashFamily(), radius=0.15, far_radius=0.1,
        num_hashes=int(q1_lastfm_result.params["K"]), num_tables=int(q1_lastfm_result.params["L"]),
        seed=1,
    ).fit(dataset)
    query_index = select_interesting_queries(
        dataset, JaccardSimilarity(), num_queries=1, min_neighbors=10, threshold=0.2, seed=1
    )[0]
    query = dataset[query_index]

    benchmark(lambda: sampler.sample(query, exclude_index=query_index))

    # Figure 1 shape: standard LSH is measurably less uniform than fair LSH.
    reports = q1_lastfm_result.reports
    assert reports["standard_lsh"].mean_tv > reports["fair_lsh_collect"].mean_tv
    assert reports["standard_lsh"].mean_tv > reports["fair_nnis"].mean_tv


def test_figure1_lastfm_fair_nnis_is_uniform(benchmark, q1_lastfm_result):
    """Benchmark the Section 4 sampler on the same workload."""
    from repro.core import IndependentFairSampler
    from repro.data import generate_lastfm_like, select_interesting_queries
    from repro.distances import JaccardSimilarity
    from repro.lsh import OneBitMinHashFamily

    dataset = generate_lastfm_like(num_users=250, seed=1)
    sampler = IndependentFairSampler(
        OneBitMinHashFamily(), radius=0.15, far_radius=0.1,
        num_hashes=int(q1_lastfm_result.params["K"]), num_tables=int(q1_lastfm_result.params["L"]),
        seed=1,
    ).fit(dataset)
    query_index = select_interesting_queries(
        dataset, JaccardSimilarity(), num_queries=1, min_neighbors=10, threshold=0.2, seed=1
    )[0]
    query = dataset[query_index]

    benchmark(lambda: sampler.sample(query, exclude_index=query_index))

    # The fair sampler's frequency-vs-similarity correlation is close to flat
    # relative to standard LSH (the visual "no gradient" in Figure 1 right).
    slopes = q1_lastfm_result.slope_summary()
    assert abs(slopes["fair_nnis"]) <= abs(slopes["standard_lsh"]) + 0.1


def test_figure1_movielens_shape(benchmark, q1_movielens_result):
    """MovieLens panel of Figure 1: same ordering of samplers by fairness."""
    reports = q1_movielens_result.reports

    def summarize():
        return {name: report.mean_tv for name, report in reports.items()}

    tv = benchmark(summarize)
    assert tv["standard_lsh"] >= tv["fair_lsh_collect"] - 0.02

"""WAL overhead benchmark: what durability costs per mutation.

The durable facade journals every insert/delete to the write-ahead log
*before* applying it (see :mod:`repro.engine.wal`), so the interesting
number for an operator is mutation throughput per fsync policy relative to
a WAL-less facade, persisted to ``benchmarks/results/wal_throughput.json``:

* **off** — flush per append, never fsync.  Survives process crash
  (``kill -9`` included: the bytes are in the OS page cache); power loss
  may drop the un-synced suffix.  Should cost single-digit percent.
* **interval** — flush per append + opportunistic fsync at most once per
  ``fsync_interval`` seconds.  The default: bounds power-loss exposure at
  near-``off`` cost.
* **always** — fsync per append.  Survives power loss; the fsync dominates
  the mutation path, and the measured gap is the price tag.

Two measurements are taken: **raw** ``WriteAheadLog.append`` throughput
(isolates the journal; the fsync cliff is unmistakable) and **end-to-end**
facade mutation throughput (what an operator actually observes — noisier,
because the in-memory apply path with its amortized compaction dominates).

The recovered state is asserted live-count-identical to the served facade
after each run, so every measured configuration is also a correctness run.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from benchmarks.conftest import write_result, write_result_json
from repro import FairNN, LSHSpec, SamplerSpec
from repro.data import generate_lastfm_like
from repro.engine.wal import WriteAheadLog

N_APPENDS = 2_000
N_USERS = 1_000
N_BATCHES = 150
BATCH_SIZE = 4
SPEC = SamplerSpec(
    "permutation",
    {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
    lsh=LSHSpec("minhash"),
    seed=17,
)


def _mutation_batches(seed=3):
    rng = np.random.default_rng(seed)
    return [
        [
            frozenset(int(x) for x in rng.choice(3000, size=rng.integers(8, 20)))
            for _ in range(BATCH_SIZE)
        ]
        for _ in range(N_BATCHES)
    ]


def _run_mutations(nn, batches):
    start = time.perf_counter()
    for batch in batches:
        indices = nn.insert_many(batch)
        nn.delete(indices[0])
    return time.perf_counter() - start


def _raw_append_rates():
    """Appends/s of the bare journal per policy — isolates the fsync cost."""
    payload = {
        "op": "insert",
        "points": [frozenset(range(100, 115))] * BATCH_SIZE,
        "key": None,
    }
    rates = {}
    for policy in ("off", "interval", "always"):
        tmp = tempfile.mkdtemp(prefix=f"wal-raw-{policy}-")
        try:
            wal = WriteAheadLog.open(f"{tmp}/wal", fsync=policy)
            for _ in range(100):  # warm the segment + allocator
                wal.append(payload)
            start = time.perf_counter()
            for _ in range(N_APPENDS):
                wal.append(payload)
            rates[policy] = round(N_APPENDS / (time.perf_counter() - start), 1)
            wal.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return rates


def test_wal_mutation_overhead():
    """Insert/delete throughput: no WAL vs each fsync policy, plus recovery."""
    raw = _raw_append_rates()
    users = generate_lastfm_like(num_users=N_USERS, seed=1)
    batches = _mutation_batches()

    baseline = FairNN.from_spec(SPEC).serve(users)
    _run_mutations(baseline, batches[:10])  # warm the columnar store
    baseline_seconds = _run_mutations(baseline, batches)
    live_after = baseline.num_live_points
    baseline.close()
    mutations = N_BATCHES * 2  # one insert batch + one delete per round

    rows = {}
    for policy in ("off", "interval", "always"):
        tmp = tempfile.mkdtemp(prefix=f"wal-bench-{policy}-")
        try:
            nn = FairNN.from_spec(SPEC).serve(
                users, data_dir=f"{tmp}/d", fsync=policy
            )
            _run_mutations(nn, batches[:10])
            seconds = _run_mutations(nn, batches)
            report = nn.durability()
            nn.close()
            recovered = FairNN.recover(f"{tmp}/d")
            # Same history as the baseline => same live count.
            assert recovered.num_live_points == live_after
            recovered.close()
            rows[policy] = {
                "mutations_per_second": round(mutations / seconds, 1),
                "overhead_vs_no_wal": round(seconds / baseline_seconds, 3),
                "wal_appended_bytes": report["wal_appended_bytes"],
                "recovery_verified": True,
            }
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    no_wal_qps = mutations / baseline_seconds
    lines = [
        f"raw journal appends ({N_APPENDS} x {BATCH_SIZE}-point insert payloads):",
    ]
    for policy in ("off", "interval", "always"):
        lines.append(f"  fsync={policy:<9} {raw[policy]:10.0f} appends/s")
    lines += [
        "",
        f"end-to-end: {N_USERS} users, {N_BATCHES} rounds of insert x{BATCH_SIZE} + delete",
        f"  no WAL:          {no_wal_qps:8.0f} mutations/s (baseline)",
    ]
    for policy in ("off", "interval", "always"):
        row = rows[policy]
        lines.append(
            f"  fsync={policy:<9} {row['mutations_per_second']:8.0f} mutations/s "
            f"({row['overhead_vs_no_wal']:.2f}x baseline cost, "
            f"{row['wal_appended_bytes']} journal bytes)"
        )
    lines.append("recovery: every policy's directory recovered to the served live count")

    payload = {
        "workload": {
            "users": N_USERS,
            "rounds": N_BATCHES,
            "insert_batch_size": BATCH_SIZE,
            "mutations": mutations,
            "raw_appends": N_APPENDS,
        },
        "raw_appends_per_second": raw,
        "no_wal": {"mutations_per_second": round(no_wal_qps, 1)},
        "policies": rows,
    }
    write_result("wal_throughput", "\n".join(lines))
    write_result_json("wal_throughput", payload)
    print("\n".join(lines))

    # Durability must be an overhead, not a cliff: the flush-only policies
    # stay within 3x of WAL-less mutation throughput on this workload (the
    # loose bound absorbs the apply path's amortized-compaction jitter).
    assert rows["off"]["overhead_vs_no_wal"] < 3.0, lines
    assert rows["interval"]["overhead_vs_no_wal"] < 3.0, lines

"""Serving-engine benchmarks: batched execution and online index mutation.

Two claims of the engine layer are quantified here and persisted to
``benchmarks/results/``:

* **Batched beats the per-query loop.**  ``BatchQueryEngine.run`` on a
  1000+ query workload must be at least 3x faster than calling
  ``sampler.sample`` in a Python loop.  The win comes from hashing the
  batch's distinct queries against all ``L`` tables in one vectorized pass,
  gathering candidates with array operations, and coalescing duplicate
  requests (exact for the query-deterministic Section 3 sampler).  Serving
  traffic is heavy-tailed, so the headline workload draws queries
  Zipf-distributed over the user base; the uniform-cycle and all-distinct
  workloads are reported alongside for honesty about where the win comes
  from.
* **Online mutation beats refitting.**  Applying a 30% churn (deletes +
  inserts) through ``DynamicLSHTables`` must be faster than even the
  laziest offline alternative — one full ``fit`` over the final dataset.
* **Incremental sketch maintenance beats the full rebuild.**  For the
  Section 4 sampler, folding an insert-only mutation batch into the
  affected bucket sketches (``O(batch x L)`` via the ``MutationDelta``)
  must be at least 5x faster than rebuilding every bucket sketch
  (``O(total bucket refs)``) at 100k indexed points and a 1% batch.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_result, write_result_json
from repro.core import IndependentFairSampler, PermutationFairSampler
from repro.engine import BatchQueryEngine
from repro.lsh import LSHTables, MinHashFamily, OneBitMinHashFamily

RADIUS = 0.2
FAR = 0.1


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def _fresh_engine(dataset, seed=7):
    sampler = PermutationFairSampler(
        MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=seed
    )
    return BatchQueryEngine.build(sampler, dataset, seed=seed)


def test_batched_vs_per_query_throughput(small_lastfm):
    engine = _fresh_engine(small_lastfm)
    sampler = engine.sampler
    rng = np.random.default_rng(3)
    n = len(small_lastfm)

    zipf_ids = rng.zipf(1.3, size=1500) % n
    workloads = [
        ("zipf-hot (1500 queries)", [small_lastfm[i] for i in zipf_ids]),
        ("uniform cycle (1000 queries)", [small_lastfm[i % n] for i in range(1000)]),
        ("all distinct (300 queries)", list(small_lastfm)),
    ]

    lines = ["workload                        batched      loop    speedup"]
    speedups = {}
    payload = {"workloads": {}}
    for label, queries in workloads:
        engine.sample_batch(queries[:50])  # warm both paths
        batched_answers, batched_time = _timed(lambda: engine.sample_batch(queries))
        loop_answers, loop_time = _timed(lambda: [sampler.sample(q) for q in queries])
        assert batched_answers == loop_answers  # the fast path may not change answers
        speedups[label] = loop_time / batched_time
        payload["workloads"][label] = {
            "wall_ms_batched": round(batched_time * 1000, 3),
            "wall_ms_loop": round(loop_time * 1000, 3),
            "speedup": round(speedups[label], 2),
            "queries": len(queries),
        }
        lines.append(
            f"{label:<30}  {batched_time * 1000:7.1f}ms {loop_time * 1000:7.1f}ms  {speedups[label]:6.2f}x"
        )

    lines.append("")
    lines.append(f"engine stats: {engine.stats.as_dict()}")
    write_result("engine_batched_throughput", "\n".join(lines))
    payload["engine_stats"] = engine.stats.as_dict()
    write_result_json("engine_batched_throughput", payload)

    # Acceptance: >= 3x on the serving-shaped (>= 1k queries) workloads.
    assert speedups["zipf-hot (1500 queries)"] >= 3.0
    assert speedups["uniform cycle (1000 queries)"] >= 3.0


def test_dynamic_churn_vs_full_refit(small_lastfm):
    rng = np.random.default_rng(4)
    engine = _fresh_engine(small_lastfm)
    n = len(small_lastfm)
    churn = int(0.3 * n)
    doomed = rng.choice(n, size=churn, replace=False)
    replacements = [
        frozenset(int(x) for x in rng.choice(5000, size=rng.integers(5, 40)))
        for _ in range(churn)
    ]

    def apply_churn():
        for index in doomed:
            engine.delete(int(index))
        return engine.insert_many(replacements)

    _, dynamic_time = _timed(apply_churn)

    # The lazy offline alternative: one full rebuild over the final dataset.
    doomed_set = {int(d) for d in doomed}
    final_dataset = [
        point for i, point in enumerate(small_lastfm) if i not in doomed_set
    ] + replacements
    tables = engine.tables
    _, refit_time = _timed(
        lambda: LSHTables(tables.family, tables.num_tables, seed=5).fit(final_dataset)
    )

    advantage = refit_time / dynamic_time
    write_result(
        "engine_dynamic_churn",
        "\n".join(
            [
                f"dataset size: {n}, churn: {churn} deletes + {churn} inserts",
                f"dynamic insert/delete: {dynamic_time * 1000:.1f}ms "
                f"(compactions: {engine.tables.rebuilds_triggered})",
                f"full refit of final dataset: {refit_time * 1000:.1f}ms",
                f"advantage: {advantage:.2f}x",
            ]
        ),
    )
    write_result_json(
        "engine_dynamic_churn",
        {
            "dataset_size": n,
            "churn_deletes": int(churn),
            "churn_inserts": int(churn),
            "wall_ms_dynamic": round(dynamic_time * 1000, 3),
            "wall_ms_refit": round(refit_time * 1000, 3),
            "advantage": round(advantage, 2),
            "compactions": engine.tables.rebuilds_triggered,
        },
    )
    assert dynamic_time < refit_time

    # The mutated engine still serves: every answer must be a live point.
    responses = engine.run(list(small_lastfm[:20]))
    alive = engine.tables.alive
    for response in responses:
        if response.found:
            assert alive[response.index]


def test_incremental_sketch_maintenance_vs_full_rebuild():
    """Tentpole acceptance (PR 2): on an insert-only mutation batch over a
    100k-point index, the Section 4 sampler's incremental ``_after_update``
    (merge the batch into the ``L`` affected bucket sketches, driven by the
    ``MutationDelta``) must be at least 5x faster than the pre-incremental
    behaviour of rebuilding every bucket sketch from scratch.

    1-bit MinHash with K=8 keeps the per-table key space at 256, so the
    index stores large, all-sketched buckets — the regime where sketch
    upkeep dominates and the full rebuild's O(total bucket refs) hurts.
    """
    rng = np.random.default_rng(42)
    n, batch = 100_000, 1_000
    items = rng.integers(0, 50_000, size=(n + batch, 8))
    dataset = [frozenset(int(x) for x in row) for row in items[:n]]
    batch_points = [frozenset(int(x) for x in row) for row in items[n:]]

    sampler = IndependentFairSampler(
        OneBitMinHashFamily(),
        radius=0.2,
        far_radius=0.05,
        num_hashes=8,
        num_tables=10,
        seed=5,
    )
    engine = BatchQueryEngine.build(sampler, dataset, seed=5)
    stored_refs = engine.tables.total_stored_references()
    sketched = sum(len(s) for s in sampler._bucket_sketches)

    probe = dataset[0]
    estimate_before = sampler.estimate_colliding_count(probe)

    engine.insert_many(batch_points)
    # Incremental path: drain the MutationDelta, merge the batch into the
    # affected sketches (O(batch x L)).
    _, incremental_time = _timed(sampler.notify_update)
    engine._tables_dirty = False
    estimate_incremental = sampler.estimate_colliding_count(probe)

    # The pre-incremental path: compact and re-sketch every bucket
    # (O(total bucket refs)) over exactly the same final tables.
    _, rebuild_time = _timed(lambda: sampler._after_update(None))
    estimate_rebuilt = sampler.estimate_colliding_count(probe)

    speedup = rebuild_time / incremental_time
    write_result(
        "engine_incremental_sketches",
        "\n".join(
            [
                f"index: {n} points, {engine.tables.num_tables} tables, "
                f"{stored_refs} stored refs, {sketched} sketched buckets",
                f"insert-only mutation batch: {batch} points (1%)",
                f"incremental _after_update (delta merge): {incremental_time * 1000:8.1f}ms",
                f"full sketch rebuild (pre-incremental):   {rebuild_time * 1000:8.1f}ms",
                f"speedup: {speedup:.1f}x",
                f"colliding-count estimate for a fixed probe: "
                f"{estimate_before:.0f} before batch, "
                f"{estimate_incremental:.0f} incremental, "
                f"{estimate_rebuilt:.0f} rebuilt",
            ]
        ),
    )
    write_result_json(
        "engine_incremental_sketches",
        {
            "index_points": n,
            "mutation_batch": batch,
            "tables": engine.tables.num_tables,
            "stored_references": int(stored_refs),
            "sketched_buckets": int(sketched),
            "wall_ms_incremental": round(incremental_time * 1000, 3),
            "wall_ms_full_rebuild": round(rebuild_time * 1000, 3),
            "speedup": round(speedup, 2),
            "estimate_before": round(estimate_before, 1),
            "estimate_incremental": round(estimate_incremental, 1),
            "estimate_rebuilt": round(estimate_rebuilt, 1),
        },
    )
    assert speedup >= 5.0
    # The incremental estimate must agree with the rebuilt one (different
    # hash draws, same data): generous 30% envelope on a ~4000-point count.
    assert abs(estimate_incremental - estimate_rebuilt) <= 0.3 * estimate_rebuilt

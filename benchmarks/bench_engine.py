"""Serving-engine benchmarks: batched execution and online index mutation.

Two claims of the engine layer are quantified here and persisted to
``benchmarks/results/``:

* **Batched beats the per-query loop.**  ``BatchQueryEngine.run`` on a
  1000+ query workload must be at least 3x faster than calling
  ``sampler.sample`` in a Python loop.  The win comes from hashing the
  batch's distinct queries against all ``L`` tables in one vectorized pass,
  gathering candidates with array operations, and coalescing duplicate
  requests (exact for the query-deterministic Section 3 sampler).  Serving
  traffic is heavy-tailed, so the headline workload draws queries
  Zipf-distributed over the user base; the uniform-cycle and all-distinct
  workloads are reported alongside for honesty about where the win comes
  from.
* **Online mutation beats refitting.**  Applying a 30% churn (deletes +
  inserts) through ``DynamicLSHTables`` must be faster than even the
  laziest offline alternative — one full ``fit`` over the final dataset.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core import PermutationFairSampler
from repro.engine import BatchQueryEngine
from repro.lsh import LSHTables, MinHashFamily

RADIUS = 0.2
FAR = 0.1


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def _fresh_engine(dataset, seed=7):
    sampler = PermutationFairSampler(
        MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=seed
    )
    return BatchQueryEngine.build(sampler, dataset, seed=seed)


def test_batched_vs_per_query_throughput(small_lastfm):
    engine = _fresh_engine(small_lastfm)
    sampler = engine.sampler
    rng = np.random.default_rng(3)
    n = len(small_lastfm)

    zipf_ids = rng.zipf(1.3, size=1500) % n
    workloads = [
        ("zipf-hot (1500 queries)", [small_lastfm[i] for i in zipf_ids]),
        ("uniform cycle (1000 queries)", [small_lastfm[i % n] for i in range(1000)]),
        ("all distinct (300 queries)", list(small_lastfm)),
    ]

    lines = ["workload                        batched      loop    speedup"]
    speedups = {}
    for label, queries in workloads:
        engine.sample_batch(queries[:50])  # warm both paths
        batched_answers, batched_time = _timed(lambda: engine.sample_batch(queries))
        loop_answers, loop_time = _timed(lambda: [sampler.sample(q) for q in queries])
        assert batched_answers == loop_answers  # the fast path may not change answers
        speedups[label] = loop_time / batched_time
        lines.append(
            f"{label:<30}  {batched_time * 1000:7.1f}ms {loop_time * 1000:7.1f}ms  {speedups[label]:6.2f}x"
        )

    lines.append("")
    lines.append(f"engine stats: {engine.stats.as_dict()}")
    write_result("engine_batched_throughput", "\n".join(lines))

    # Acceptance: >= 3x on the serving-shaped (>= 1k queries) workloads.
    assert speedups["zipf-hot (1500 queries)"] >= 3.0
    assert speedups["uniform cycle (1000 queries)"] >= 3.0


def test_dynamic_churn_vs_full_refit(small_lastfm):
    rng = np.random.default_rng(4)
    engine = _fresh_engine(small_lastfm)
    n = len(small_lastfm)
    churn = int(0.3 * n)
    doomed = rng.choice(n, size=churn, replace=False)
    replacements = [
        frozenset(int(x) for x in rng.choice(5000, size=rng.integers(5, 40)))
        for _ in range(churn)
    ]

    def apply_churn():
        for index in doomed:
            engine.delete(int(index))
        return engine.insert_many(replacements)

    _, dynamic_time = _timed(apply_churn)

    # The lazy offline alternative: one full rebuild over the final dataset.
    doomed_set = {int(d) for d in doomed}
    final_dataset = [
        point for i, point in enumerate(small_lastfm) if i not in doomed_set
    ] + replacements
    tables = engine.tables
    _, refit_time = _timed(
        lambda: LSHTables(tables.family, tables.num_tables, seed=5).fit(final_dataset)
    )

    advantage = refit_time / dynamic_time
    write_result(
        "engine_dynamic_churn",
        "\n".join(
            [
                f"dataset size: {n}, churn: {churn} deletes + {churn} inserts",
                f"dynamic insert/delete: {dynamic_time * 1000:.1f}ms "
                f"(compactions: {engine.tables.rebuilds_triggered})",
                f"full refit of final dataset: {refit_time * 1000:.1f}ms",
                f"advantage: {advantage:.2f}x",
            ]
        ),
    )
    assert dynamic_time < refit_time

    # The mutated engine still serves: every answer must be a live point.
    responses = engine.run(list(small_lastfm[:20]))
    alive = engine.tables.alive
    for response in responses:
        if response.found:
            assert alive[response.index]

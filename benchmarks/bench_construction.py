"""Construction-time benchmarks for the index structures.

Supports the space/construction statements of Theorems 1-4: LSH structures
pay Theta(n^(1+rho) log n)-ish construction, the Section 5 filter structure is
nearly linear.
"""

from __future__ import annotations


from repro.core import (
    CollectAllFairSampler,
    FilterFairSampler,
    GaussianFilterIndex,
    IndependentFairSampler,
    PermutationFairSampler,
)
from repro.lsh import MinHashFamily

RADIUS = 0.2
FAR = 0.1


def test_build_permutation_fair_section3(benchmark, small_lastfm):
    benchmark(
        lambda: PermutationFairSampler(
            MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=1
        ).fit(small_lastfm)
    )


def test_build_independent_fair_section4(benchmark, small_lastfm):
    benchmark(
        lambda: IndependentFairSampler(
            MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=1
        ).fit(small_lastfm)
    )


def test_build_collect_all_baseline(benchmark, small_lastfm):
    benchmark(
        lambda: CollectAllFairSampler(
            MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=1
        ).fit(small_lastfm)
    )


def test_build_gaussian_filter_index_section5(benchmark):
    from repro.data import planted_inner_product_neighborhood

    points, _, _ = planted_inner_product_neighborhood(
        n_background=1500, n_neighbors=50, dim=32, alpha=0.8, beta_max=0.2, seed=2
    )
    benchmark(lambda: GaussianFilterIndex(alpha=0.8, beta=0.3, seed=2).fit(points))


def test_build_filter_fair_sampler_section5(benchmark):
    from repro.data import planted_inner_product_neighborhood

    points, _, _ = planted_inner_product_neighborhood(
        n_background=800, n_neighbors=30, dim=32, alpha=0.8, beta_max=0.2, seed=2
    )
    benchmark(
        lambda: FilterFairSampler(alpha=0.8, beta=0.3, num_structures=5, seed=2).fit(points)
    )


def test_space_accounting_matches_theory(small_lastfm):
    """Sanity (not timed): LSH stores n references per table, filters store n once."""
    sampler = PermutationFairSampler(
        MinHashFamily(), radius=RADIUS, far_radius=FAR, recall=0.95, seed=3
    ).fit(small_lastfm)
    stored = sampler.tables.total_stored_references()
    assert stored == sampler.params.l * len(small_lastfm)

"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Rank index inside buckets: sorted-array + searchsorted (ours) vs a linear
   scan per bucket (the naive alternative to the paper's per-bucket BST).
2. Count-distinct sketch accuracy: bottom-t size vs estimate quality and the
   effect on the Section 4 segment-count guess.
3. Number of repetitions L: recall of the neighborhood vs L, validating the
   parameter rule.
4. Tensoring in the Section 5 filter structure: t blocks vs a single block.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core import GaussianFilterIndex, PermutationFairSampler
from repro.data import planted_inner_product_neighborhood, select_interesting_queries
from repro.distances import JaccardSimilarity
from repro.lsh import LSHTables, MinHashFamily
from repro.sketches import DistinctCountSketcher


# ----------------------------------------------------------------------
# 1. Rank-range query: searchsorted vs linear scan
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ranked_tables(small_lastfm):
    family = MinHashFamily().concatenate(2)
    ranks = np.random.default_rng(0).permutation(len(small_lastfm))
    return LSHTables(family, l=32, seed=0).fit(small_lastfm, ranks=ranks), ranks


def test_ablation_rank_range_searchsorted(benchmark, small_lastfm, ranked_tables):
    tables, _ = ranked_tables
    n = len(small_lastfm)
    benchmark(lambda: tables.rank_range_candidates(small_lastfm[0], n // 8, n // 4))


def test_ablation_rank_range_linear_scan(benchmark, small_lastfm, ranked_tables):
    tables, ranks = ranked_tables
    n = len(small_lastfm)
    lo, hi = n // 8, n // 4

    def linear_scan():
        hits = set()
        for bucket in tables.query_buckets(small_lastfm[0]):
            for index, rank in zip(bucket.indices, bucket.ranks):
                if lo <= rank < hi:
                    hits.add(int(index))
        return hits

    expected = set(tables.rank_range_candidates(small_lastfm[0], lo, hi).tolist())
    assert linear_scan() == expected
    benchmark(linear_scan)


# ----------------------------------------------------------------------
# 2. Sketch accuracy vs bottom-t size
# ----------------------------------------------------------------------
def test_ablation_sketch_accuracy(benchmark):
    true_count = 5000
    rows = []
    for epsilon in (0.75, 0.5, 0.25, 0.1):
        sketcher = DistinctCountSketcher(universe_size=10**6, epsilon=epsilon, delta=0.01, seed=1)
        estimate = sketcher.sketch_keys(range(true_count)).estimate()
        rows.append((epsilon, sketcher.t, estimate, abs(estimate - true_count) / true_count))
    text = "epsilon  t  estimate  relative_error\n" + "\n".join(
        f"{epsilon:<8}{t:<4}{estimate:<10.0f}{error:.3f}" for epsilon, t, estimate, error in rows
    )
    write_result("ablation_sketch_accuracy", text)
    # Tighter epsilon must not be less accurate by more than noise.
    assert rows[-1][3] <= rows[0][3] + 0.2

    sketcher = DistinctCountSketcher(universe_size=10**6, epsilon=0.5, delta=0.01, seed=1)
    benchmark(lambda: sketcher.sketch_keys(range(1000)).estimate())


# ----------------------------------------------------------------------
# 3. Recall vs number of repetitions L
# ----------------------------------------------------------------------
def test_ablation_recall_vs_repetitions(benchmark, small_lastfm):
    measure = JaccardSimilarity()
    radius = 0.2
    queries = [
        small_lastfm[i]
        for i in select_interesting_queries(
            small_lastfm, measure, num_queries=8, min_neighbors=8, threshold=radius, seed=2
        )
    ]

    def coverage_for(l):
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=radius, far_radius=0.1, num_hashes=2, num_tables=l, seed=2
        ).fit(small_lastfm)
        covered, total = 0, 0
        for query in queries:
            values = measure.values_to_query(small_lastfm, query)
            neighborhood = set(np.flatnonzero(values >= radius).tolist())
            colliding = set(sampler.tables.query_candidates(query).tolist())
            covered += len(neighborhood & colliding)
            total += len(neighborhood)
        return covered / max(1, total)

    series = {l: coverage_for(l) for l in (5, 20, 80, 200)}
    text = "L  neighborhood_coverage\n" + "\n".join(f"{l:<5}{c:.3f}" for l, c in series.items())
    write_result("ablation_recall_vs_L", text)
    values = list(series.values())
    assert values == sorted(values) or values[-1] >= values[0]
    assert series[200] > 0.9

    benchmark(lambda: coverage_for(20))


# ----------------------------------------------------------------------
# 4. Tensoring vs a single filter block (Section 5)
# ----------------------------------------------------------------------
def test_ablation_tensoring(benchmark):
    points, query, _ = planted_inner_product_neighborhood(
        n_background=800, n_neighbors=25, dim=32, alpha=0.8, beta_max=0.2, seed=3
    )

    def success_rate(num_blocks, trials=15):
        hits = 0
        for seed in range(trials):
            index = GaussianFilterIndex(
                alpha=0.8, beta=0.3, epsilon=0.05, num_blocks=num_blocks, seed=seed
            ).fit(points)
            if index.search(query) is not None:
                hits += 1
        return hits / trials

    tensored = success_rate(num_blocks=3)
    single = success_rate(num_blocks=1)
    write_result(
        "ablation_tensoring",
        f"blocks  success_rate\n1       {single:.2f}\n3       {tensored:.2f}",
    )
    # Both configurations find the planted neighbor most of the time; the
    # tensored variant pays its success-probability cost (p^t) for cheaper
    # filter evaluation, as Theorem 7 describes.
    assert single >= 0.6

    index = GaussianFilterIndex(alpha=0.8, beta=0.3, epsilon=0.05, seed=0).fit(points)
    benchmark(lambda: index.search(query))

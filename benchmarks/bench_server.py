"""HTTP serving benchmark: wire overhead of the ``repro.server`` front-end.

Quantifies what the network door costs over the in-process facade, persisted
to ``benchmarks/results/server_http_overhead.json``:

* **Batched HTTP amortizes the wire.**  ``POST /v1/sample_batch`` feeds the
  whole request list to one engine run, so its throughput must stay within a
  small factor of direct ``FairNN.run`` — the JSON codec and the socket are
  the only additions, and they are per-batch, not per-candidate.
* **Per-request HTTP is the anti-pattern.**  One ``POST /v1/sample`` per
  query pays the full HTTP round-trip each time; the measured gap against
  the batched endpoint is the number an operator needs when sizing clients.

Answers over the wire are asserted byte-identical to the direct run (JSON
floats round-trip float64 exactly), so the comparison is apples-to-apples.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_result, write_result_json
from repro import FairNN, FairNNClient, FairNNServer, LSHSpec, SamplerSpec
from repro.data import generate_lastfm_like
from repro.engine.requests import QueryRequest

N_USERS = 2_000
N_QUERIES = 200
N_SINGLES = 50
ROUNDS = 5
SPEC = SamplerSpec(
    "permutation",
    {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
    lsh=LSHSpec("minhash"),
    seed=17,
)


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def test_http_serving_overhead():
    """Batched HTTP throughput vs direct FairNN.run, and per-request cost."""
    users = generate_lastfm_like(num_users=N_USERS, seed=1)
    queries = [users[i * 7 % N_USERS] for i in range(N_QUERIES)]
    requests = [QueryRequest(query=q, k=2, replacement=False) for q in queries]

    direct = FairNN.from_spec(SPEC).serve(users)
    served = FairNN.from_spec(SPEC).serve(users)
    direct.run(requests[:20])  # warm caches and the columnar store

    with FairNNServer(served) as server:
        client = FairNNClient(server.url)
        client.sample_batch(queries[:20], k=2, replacement=False)  # warm

        reference, direct_seconds = _timed(
            lambda: [direct.run(requests) for _ in range(ROUNDS)][-1]
        )
        wire, batched_seconds = _timed(
            lambda: [
                client.sample_batch(queries, k=2, replacement=False)
                for _ in range(ROUNDS)
            ][-1]
        )
        # Wire fidelity: the HTTP answers equal the direct ones, bytewise.
        assert [r["indices"] for r in wire["results"]] == [
            r.indices for r in reference
        ]
        assert [r["value"] for r in wire["results"]] == [r.value for r in reference]

        _, singles_seconds = _timed(
            lambda: [
                client.sample(q, k=2, replacement=False) for q in queries[:N_SINGLES]
            ]
        )

    direct_qps = ROUNDS * N_QUERIES / direct_seconds
    batched_qps = ROUNDS * N_QUERIES / batched_seconds
    singles_qps = N_SINGLES / singles_seconds
    overhead_ratio = direct_qps / batched_qps
    per_request_ms = (batched_seconds / ROUNDS - direct_seconds / ROUNDS) * 1000

    lines = [
        f"workload: {N_USERS} users, {N_QUERIES}-query batches x {ROUNDS} rounds, "
        f"k=2 without replacement ({N_SINGLES} per-request singles)",
        f"direct FairNN.run:        {direct_qps:8.0f} q/s",
        f"HTTP /v1/sample_batch:    {batched_qps:8.0f} q/s "
        f"({overhead_ratio:4.2f}x direct cost, ~{per_request_ms:.2f}ms per batch on the wire)",
        f"HTTP /v1/sample (single): {singles_qps:8.0f} q/s "
        f"({batched_qps / singles_qps:4.1f}x slower than batched)",
        "answers: byte-identical across all three paths",
    ]
    payload = {
        "workload": {
            "users": N_USERS,
            "batch_queries": N_QUERIES,
            "rounds": ROUNDS,
            "single_requests": N_SINGLES,
        },
        "direct_run": {"queries_per_second": round(direct_qps, 1)},
        "http_batched": {
            "queries_per_second": round(batched_qps, 1),
            "cost_ratio_vs_direct": round(overhead_ratio, 3),
            "wire_ms_per_batch": round(per_request_ms, 3),
            "byte_identical": True,
        },
        "http_per_request": {
            "queries_per_second": round(singles_qps, 1),
            "slowdown_vs_batched": round(batched_qps / singles_qps, 2),
        },
    }
    write_result("server_http_overhead", "\n".join(lines))
    write_result_json("server_http_overhead", payload)
    print("\n".join(lines))

    # The wire must stay an overhead, not a cliff: batched HTTP within 5x of
    # in-process throughput on this workload.
    assert overhead_ratio < 5.0, lines

"""Serve fair near-neighbor samples online: batch queries, churn, snapshots.

The static samplers answer one query at a time over a frozen dataset.  This
example runs the serving stack from :mod:`repro.engine` instead:

1. build a *dynamic* index over a Last.FM-like user base;
2. answer a batch of heavy-tailed (Zipf) query traffic in one engine call;
3. absorb churn — users leaving and joining — without refitting, and show
   the fair sampler keeps answering from the live dataset;
4. snapshot the engine to disk and load it back, as a server fleet would.

Run with:

    PYTHONPATH=src python examples/online_serving.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import MinHashFamily, PermutationFairSampler
from repro.data import generate_lastfm_like
from repro.engine import BatchQueryEngine, load_engine, save_engine

RADIUS = 0.2


def main() -> None:
    rng = np.random.default_rng(0)
    users = generate_lastfm_like(num_users=400, seed=0)

    # 1. One call builds dynamic LSH tables and attaches the fair sampler.
    sampler = PermutationFairSampler(
        MinHashFamily(), radius=RADIUS, far_radius=0.1, recall=0.95, seed=0
    )
    engine = BatchQueryEngine.build(sampler, users, seed=0)
    print(f"engine over {engine.num_live_points} users, L={sampler.params.l} tables")

    # 2. A batch of hot traffic: most requests hit a few popular users.
    traffic = [users[int(i) % len(users)] for i in rng.zipf(1.4, size=500)]
    responses = engine.run(traffic)
    answered = sum(response.found for response in responses)
    print(f"batch of {len(traffic)} queries: {answered} answered")

    # 3. Churn: 100 users leave, 100 new users join.  No refit.
    for index in rng.choice(len(users), size=100, replace=False):
        engine.delete(int(index))
    newcomers = [
        frozenset(int(x) for x in rng.choice(3000, size=int(rng.integers(5, 40))))
        for _ in range(100)
    ]
    engine.insert_many(newcomers)
    response = engine.run([newcomers[0]])[0]
    print(
        f"after churn: {engine.num_live_points} live users, "
        f"query for a new user answered: {response.found}"
    )

    # 4. Ship the index: save, load, verify the clone answers identically.
    with tempfile.TemporaryDirectory() as directory:
        save_engine(engine, directory)
        clone = load_engine(directory)
        original = engine.sample_batch(traffic[:50])
        loaded = clone.sample_batch(traffic[:50])
        print(f"snapshot round-trip, answers identical: {original == loaded}")

    stats = engine.stats.as_dict()
    print("serving stats:", {k: v for k, v in stats.items() if v})


if __name__ == "__main__":
    main()

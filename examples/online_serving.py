"""Serve fair near-neighbor samples online: batch queries, churn, snapshots.

The static samplers answer one query at a time over a frozen dataset.  This
example runs the serving stack through the :class:`~repro.api.FairNN`
facade instead:

1. declare the sampler as a :class:`~repro.spec.SamplerSpec` and promote it
   straight to a *dynamic* index over a Last.FM-like user base;
2. answer a batch of heavy-tailed (Zipf) query traffic in one call;
3. absorb churn — users leaving and joining — without refitting, and show
   the fair sampler keeps answering from the live dataset;
4. snapshot the serving setup to disk and load it back, as a server fleet
   would — the snapshot (format v3) carries the spec, so the artifact is
   self-describing.

Run with:

    PYTHONPATH=src python examples/online_serving.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import FairNN, LSHSpec, SamplerSpec
from repro.data import generate_lastfm_like

RADIUS = 0.2


def main() -> None:
    rng = np.random.default_rng(0)
    users = generate_lastfm_like(num_users=400, seed=0)

    # 1. One spec + one call: dynamic LSH tables, attached fair sampler,
    #    batch engine.  The spec is the JSON-serializable source of truth.
    spec = SamplerSpec(
        "permutation",
        {"radius": RADIUS, "far_radius": 0.1, "recall": 0.95},
        lsh=LSHSpec("minhash"),
        seed=0,
    )
    nn = FairNN.from_spec(spec, name="fair").serve(users)
    sampler = nn.samplers["fair"]
    print(f"engine over {nn.num_live_points} users, L={sampler.params.l} tables")

    # 2. A batch of hot traffic: most requests hit a few popular users.
    traffic = [users[int(i) % len(users)] for i in rng.zipf(1.4, size=500)]
    responses = nn.run(traffic)
    answered = sum(response.found for response in responses)
    print(f"batch of {len(traffic)} queries: {answered} answered (by {responses[0].sampler!r})")

    # 3. Churn: 100 users leave, 100 new users join.  No refit.
    for index in rng.choice(len(users), size=100, replace=False):
        nn.delete(int(index))
    newcomers = [
        frozenset(int(x) for x in rng.choice(3000, size=int(rng.integers(5, 40))))
        for _ in range(100)
    ]
    nn.insert_many(newcomers)
    response = nn.run([newcomers[0]])[0]
    print(
        f"after churn: {nn.num_live_points} live users, "
        f"query for a new user answered: {response.found}"
    )

    # 4. Ship the index: save, load, verify the clone answers identically.
    with tempfile.TemporaryDirectory() as directory:
        nn.save(directory)
        clone = FairNN.load(directory)
        original = nn.engine().sample_batch(traffic[:50])
        loaded = clone.engine().sample_batch(traffic[:50])
        print(f"snapshot round-trip, answers identical: {original == loaded}")
        print(f"snapshot spec == serving spec: {clone.spec == nn.spec}")

    stats = nn.stats()["fair"].as_dict()
    print("serving stats:", {k: v for k, v in stats.items() if v})


if __name__ == "__main__":
    main()

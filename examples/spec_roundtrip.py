"""Spec round-trip: JSON document → build → snapshot → reload.

The declarative layer makes "which sampler over which distance with which
LSH family and parameters" a *data* question.  This example walks the full
life cycle of that data:

1. start from a JSON document (the form a config service or deployment
   manifest would store);
2. build and serve the described engine with :class:`~repro.api.FairNN`;
3. snapshot it — the spec is persisted inside the artifact (format v3);
4. reload the snapshot elsewhere and verify both the spec and the query
   answers survived byte-for-byte.

Run with:

    PYTHONPATH=src python examples/spec_roundtrip.py
"""

from __future__ import annotations

import json
import tempfile

from repro import EngineSpec, FairNN
from repro.data import generate_lastfm_like

#: What a deployment config for a fair-sampling service looks like: two
#: samplers by name — an independent fair sampler for recommendations and
#: the biased baseline for comparison dashboards — over one MinHash table
#: set, with dynamic tables for churn.
SPEC_JSON = """
{
  "samplers": {
    "recommend": {
      "sampler": "independent",
      "params": {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
      "lsh": {"family": "minhash", "params": {}},
      "distance": null,
      "seed": 7
    },
    "baseline": {
      "sampler": "standard_lsh",
      "params": {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
      "lsh": {"family": "minhash", "params": {}},
      "distance": null,
      "seed": 7
    }
  },
  "primary": "recommend",
  "dynamic": true,
  "max_tombstone_fraction": 0.25,
  "batch_hashing": true,
  "coalesce_duplicates": true
}
"""


def main() -> None:
    # 1. JSON → validated spec object (typos in names or keys fail here,
    #    with the registered alternatives listed).
    spec = EngineSpec.from_json(SPEC_JSON)
    assert EngineSpec.from_dict(json.loads(spec.to_json())) == spec
    print(f"spec: {list(spec.samplers)} over {spec.primary_spec.lsh.family!r} LSH")

    # 2. Build + serve.  Both samplers attach to one shared dynamic table
    #    set sized by the primary's parameter rule.
    users = generate_lastfm_like(num_users=300, seed=0)
    nn = FairNN.from_spec(spec).serve(users)
    query = users[42]
    print(f"serving {nn.num_live_points} users; "
          f"recommend -> {nn.sample(query)}, baseline -> {nn.sample(query, sampler='baseline')}")

    # 3/4. Snapshot, reload, verify.  The manifest carries the spec, so the
    #    loaded facade knows its own configuration.
    with tempfile.TemporaryDirectory() as directory:
        nn.save(directory)
        manifest = json.loads(open(f"{directory}/manifest.json").read())
        print(f"snapshot format v{manifest['format_version']}, "
              f"spec_kind={manifest['spec_kind']}, primary={manifest['sampler_name']!r}")

        clone = FairNN.load(directory)
        assert clone.spec == spec
        sample_queries = list(users[:40])
        original = nn.engine().sample_batch(sample_queries)
        restored = clone.engine().sample_batch(sample_queries)
        print(f"spec survived: {clone.spec == spec}; "
              f"answers identical after reload: {original == restored}")


if __name__ == "__main__":
    main()

"""Quickstart: fair near-neighbor sampling on set data, declaratively.

Describes the Section 3 (rank permutation) and Section 4 (independent
sampling) data structures — plus the biased standard-LSH baseline — as one
:class:`~repro.spec.EngineSpec`, builds them all through the
:class:`~repro.api.FairNN` facade over a small synthetic Last.FM-like
dataset, compares their output distribution on a single query, and prints a
small fairness report.

Everything here is a config value: swapping a sampler, the LSH family or a
radius means editing the spec, not the code.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    EngineSpec,
    FairNN,
    LSHSpec,
    SamplerSpec,
    total_variation_from_uniform,
)
from repro.data import generate_lastfm_like, select_interesting_queries

RADIUS = 0.2  # two users are "near" when their Jaccard similarity is >= 0.2


def main() -> None:
    # 1. Data: synthetic users, each a set of item ids (Jaccard similarity).
    dataset = generate_lastfm_like(num_users=300, seed=1)

    # 2. Declare the whole setup: three samplers by name over one shared
    #    MinHash table set.  `python -c "print(spec.to_json(indent=2))"` is
    #    the deployable artifact form of this block.
    lsh = LSHSpec("minhash")
    params = {"radius": RADIUS, "far_radius": 0.1}
    spec = EngineSpec(
        samplers={
            "fair_nns": SamplerSpec("permutation", params, lsh=lsh, seed=2),
            "fair_nnis": SamplerSpec("independent", params, lsh=lsh, seed=2),
            "standard": SamplerSpec("standard_lsh", params, lsh=lsh, seed=2),
        },
        primary="fair_nns",
        dynamic=False,
    )
    nn = FairNN.from_spec(spec)

    # 3. Pick an interesting query: a user with a dense neighborhood.
    query_index = select_interesting_queries(
        dataset, nn.spec.primary_spec.lsh.build().measure,
        num_queries=1, min_neighbors=10, threshold=RADIUS, seed=1,
    )[0]
    query = dataset[query_index]

    # 4. One fit builds every named sampler (LSH-backed ones share tables).
    nn.fit(dataset)
    neighborhood = nn.neighborhood(query)
    print(f"query user {query_index} has {neighborhood.size} near neighbors at r={RADIUS}")
    fair_sampler = nn.samplers["fair_nns"]
    print(
        f"LSH parameters chosen automatically: K={fair_sampler.params.k}, "
        f"L={fair_sampler.params.l} (recall {fair_sampler.params.recall:.2f})"
    )

    # 5. Single queries, addressed by sampler name.
    print("one fair sample (Section 3):", nn.sample(query))
    print("one independent fair sample (Section 4):", nn.sample(query, sampler="fair_nnis"))
    print(
        "five fair samples without replacement:",
        nn.sample_k(query, 5, replacement=False),
    )

    # 6. Repeat the query many times and compare output distributions.
    repetitions = 400
    report = {}
    for name in ("standard", "fair_nnis"):
        counts = Counter()
        for _ in range(repetitions):
            index = nn.sample(query, sampler=name)
            if index is not None:
                counts[index] += 1
        aligned = [counts.get(int(i), 0) for i in neighborhood]
        report[name] = total_variation_from_uniform(aligned)

    print("\nTotal variation distance from the uniform distribution over the neighborhood")
    print("(0 = perfectly fair, close to 1 = concentrated on a few points):")
    for name, tv in report.items():
        print(f"  {name:<14} {tv:.3f}")


if __name__ == "__main__":
    main()

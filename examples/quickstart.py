"""Quickstart: fair near-neighbor sampling on set data.

Builds the Section 3 (rank permutation) and Section 4 (independent sampling)
data structures over a small synthetic Last.FM-like dataset, compares their
output distribution with standard LSH on a single query, and prints a small
fairness report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    ExactUniformSampler,
    IndependentFairSampler,
    JaccardSimilarity,
    MinHashFamily,
    PermutationFairSampler,
    StandardLSHSampler,
    total_variation_from_uniform,
)
from repro.data import generate_lastfm_like, select_interesting_queries


def main() -> None:
    # 1. Data: synthetic users, each a set of item ids (Jaccard similarity).
    dataset = generate_lastfm_like(num_users=300, seed=1)
    measure = JaccardSimilarity()
    radius = 0.2  # two users are "near" when their Jaccard similarity is >= 0.2

    # 2. Pick an interesting query: a user with a dense neighborhood.
    query_index = select_interesting_queries(
        dataset, measure, num_queries=1, min_neighbors=10, threshold=radius, seed=1
    )[0]
    query = dataset[query_index]

    # Ground truth for reference.
    exact = ExactUniformSampler(measure, radius, seed=0).fit(dataset)
    neighborhood = exact.neighborhood(query)
    print(f"query user {query_index} has {neighborhood.size} near neighbors at r={radius}")

    # 3. Build the samplers.  The LSH family is a black box: MinHash here.
    family = MinHashFamily()
    standard = StandardLSHSampler(family, radius=radius, far_radius=0.1, seed=2).fit(dataset)
    fair_nns = PermutationFairSampler(family, radius=radius, far_radius=0.1, seed=2).fit(dataset)
    fair_nnis = IndependentFairSampler(family, radius=radius, far_radius=0.1, seed=2).fit(dataset)
    print(
        f"LSH parameters chosen automatically: K={standard.params.k}, L={standard.params.l} "
        f"(recall {standard.params.recall:.2f})"
    )

    # 4. Single queries.
    print("one fair sample (Section 3):", fair_nns.sample(query))
    print("one independent fair sample (Section 4):", fair_nnis.sample(query))
    print("five fair samples without replacement:", fair_nns.sample_k(query, 5, replacement=False))

    # 5. Repeat the query many times and compare output distributions.
    repetitions = 400
    report = {}
    for name, sampler in (("standard LSH", standard), ("fair r-NNIS", fair_nnis)):
        counts = Counter()
        for _ in range(repetitions):
            index = sampler.sample(query)
            if index is not None:
                counts[index] += 1
        aligned = [counts.get(int(i), 0) for i in neighborhood]
        report[name] = total_variation_from_uniform(aligned)

    print("\nTotal variation distance from the uniform distribution over the neighborhood")
    print("(0 = perfectly fair, close to 1 = concentrated on a few points):")
    for name, tv in report.items():
        print(f"  {name:<14} {tv:.3f}")


if __name__ == "__main__":
    main()

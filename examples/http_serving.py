"""Serve fair near-neighbor samples over HTTP: boot, query, swap, throttle.

The in-process serving loop (``examples/online_serving.py``) has a network
twin: :class:`~repro.server.FairNNServer` puts a stdlib HTTP/JSON front
door on the :class:`~repro.api.FairNN` facade.  This example — also run by
CI as the server smoke test — walks the whole surface and *asserts* the
schemas it documents, exiting non-zero on any regression:

1. boot a server on an ephemeral port with a capacity budget and a
   per-sampler query quota;
2. check ``/healthz`` and ``/v1/capacity`` return the documented shapes;
3. answer a query batch through ``POST /v1/sample_batch`` (one engine
   batch) and confirm it matches the in-process answers byte-for-byte;
4. mutate the index over the wire and watch the capacity accounting move;
5. hot-swap to a snapshot of the served state — probe-verified, the
   generation counter flips, traffic continues;
6. drive the quota into exhaustion and read the ``Retry-After`` hint from
   the resulting 429;
7. boot a **durable** server (``serve(data_dir=...)``): every mutation is
   journaled to a write-ahead log before it is applied, and idempotency
   keys dedupe client retries;
8. shut down gracefully on SIGTERM/SIGINT — the handler only sets a flag,
   the serving loop drains in-flight requests and closes cleanly — then
   **restart with recovery** (``FairNNServer.from_data_dir``) and confirm
   the rebooted server answers byte-identically.

Operational details (fsync policies, crash recovery, chaos testing) live
in ``docs/operations.md``.

Run with:

    PYTHONPATH=src python examples/http_serving.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading

from repro import CapacityModel, FairNN, FairNNClient, FairNNServer, LSHSpec, SamplerSpec
from repro.data import generate_lastfm_like
from repro.engine.requests import QueryRequest
from repro.server.client import ServerHTTPError


def main() -> None:
    users = generate_lastfm_like(num_users=300, seed=0)
    spec = SamplerSpec(
        "permutation",
        {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
        lsh=LSHSpec("minhash"),
        seed=0,
    )
    nn = FairNN.from_spec(spec, name="fair").serve(users)
    twin = FairNN.from_spec(spec, name="fair").serve(users)  # in-process reference

    capacity = CapacityModel(
        slot_capacity=400,
        over_commit_ratio=1.25,
        default_quota=(50.0, 100.0),
        max_inflight=16,
    )

    # 1. Ephemeral port; the context manager serves on a background thread.
    with FairNNServer(nn, capacity=capacity) as server:
        client = FairNNClient(server.url)
        print(f"serving {len(users)} users at {server.url}")

        # 2. /healthz and /v1/capacity schemas (CI smoke assertions).
        health = client.healthz()
        assert health["status"] == "ok", health
        assert health["serving"] is True and health["generation"] == 1, health
        assert health["samplers"] == ["fair"] and health["primary"] == "fair", health
        assert health["live_points"] == len(users), health
        assert health["point_kind"] == "set", health

        snapshot = client.capacity()
        for section in ("total", "used", "available"):
            assert set(snapshot[section]) == {"points", "memory_bytes"}, snapshot
        assert snapshot["total"]["points"] == 500  # floor(400 * 1.25)
        assert snapshot["used"]["points"] == len(users), snapshot
        assert snapshot["over_commit_ratio"] == 1.25, snapshot
        assert snapshot["queue"]["max_inflight"] == 16, snapshot
        print(
            f"capacity: {snapshot['used']['points']}/{snapshot['total']['points']} slots, "
            f"{snapshot['used']['memory_bytes']} resident bytes"
        )

        # 3. One HTTP batch == one engine batch == the in-process answers.
        queries = users[:20]
        over_http = client.sample_batch(queries, k=2, replacement=False)
        expected = twin.run([QueryRequest(query=q, k=2, replacement=False) for q in queries])
        assert [r["indices"] for r in over_http["results"]] == [
            r.indices for r in expected
        ], "HTTP answers diverged from in-process answers"
        answered = sum(r["found"] for r in over_http["results"])
        print(f"batch of {len(queries)} queries over HTTP: {answered} answered, byte-identical")

        # 4. Mutation over the wire moves the capacity needle.
        inserted = client.insert([frozenset({5000 + i, 5100 + i}) for i in range(3)])
        assert client.capacity()["used"]["points"] == len(users) + 3
        client.delete(inserted["indices"][0])
        assert client.capacity()["live_points"] == len(users) + 2
        print(f"inserted {len(inserted['indices'])} users, deleted 1 (tombstoned)")

        # 5. Hot swap to a snapshot of the *current* state: probe-verified.
        with tempfile.TemporaryDirectory() as tmp:
            nn.save(f"{tmp}/tonight")
            report = client.swap(f"{tmp}/tonight")
            assert report["status"] == "completed", report
            assert client.healthz()["generation"] == 2
            print(
                f"hot swap: generation {report['generation']}, "
                f"{report['compared_identical']} probe answers byte-identical, "
                f"load {report['load_seconds']:.3f}s"
            )
        assert client.sample(users[0])["found"] is not None  # traffic continues

        # 6. Exhaust the quota; backpressure arrives as 429 + Retry-After.
        # The default client *retries* 429s after sleeping out Retry-After,
        # which would politely wait for the bucket to refill — exactly what
        # production callers want, and exactly wrong for this demo.  Turn
        # retries off to observe the raw backpressure.
        impatient = FairNNClient(server.url, retries=0)
        throttled = None
        for _ in range(200):
            try:
                impatient.sample(users[0])
            except ServerHTTPError as exc:
                throttled = exc
                break
        assert throttled is not None and throttled.status == 429, "quota never engaged"
        assert throttled.retry_after is not None and throttled.retry_after >= 1
        print(f"quota exhausted: HTTP 429, Retry-After {throttled.retry_after:.0f}s")

    # 7 + 8. Durable serving, graceful shutdown, restart with recovery.
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = f"{tmp}/durable"
        durable = FairNN.from_spec(spec, name="fair").serve(
            users, data_dir=data_dir, fsync="interval"
        )

        # A production handler must not tear the server down from inside the
        # signal frame; it only sets a flag, and the serving loop drains.
        drain_requested = threading.Event()

        def _request_drain(signum, frame):
            drain_requested.set()

        previous = {
            sig: signal.signal(sig, _request_drain)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            with FairNNServer(durable) as server:
                client = FairNNClient(server.url)
                assert client.healthz()["durable"] is True

                # Journaled mutations: logged (and flushed) before applied.
                # The idempotency key makes the client's retries safe.
                inserted = client.insert(
                    [frozenset({7000 + i, 7100 + i}) for i in range(3)]
                )
                client.checkpoint()  # snapshot + truncate the journaled prefix
                client.delete(inserted["indices"][0])  # lives in the WAL suffix
                queries = users[:10]
                before = client.sample_batch(queries, k=2, replacement=False)

                # The operator sends SIGTERM (here: to ourselves).  The loop
                # notices the flag, stops accepting work, and the context
                # manager exit drains in-flight requests before closing.
                os.kill(os.getpid(), signal.SIGTERM)
                assert drain_requested.wait(5.0), "signal handler never ran"
            durable.close()  # fsyncs and closes the WAL
            print("SIGTERM: drained in-flight requests, closed server and WAL")
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)

        # Restart with recovery: newest checkpoint + WAL-suffix replay
        # rebuilds the exact pre-shutdown engine (see docs/operations.md).
        with FairNNServer.from_data_dir(data_dir) as server:
            client = FairNNClient(server.url)
            assert client.healthz()["durable"] is True
            after = client.sample_batch(queries, k=2, replacement=False)
            assert after["results"] == before["results"], "recovery diverged"
            with server.handle.acquire() as facade:
                recovered = facade
        recovered.close()
        print(f"restarted from {data_dir}: answers byte-identical")

    print("ok")


if __name__ == "__main__":
    main()

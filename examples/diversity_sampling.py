"""Diverse recommendations by sampling k items from a similarity range.

Adomavicius and Kwon (cited in the paper) make recommendation lists more
diverse by sampling k items at random from a larger top-l candidate list.
The paper's data structures provide exactly this primitive without
materializing the candidate list: sample k near neighbors of the user vector
uniformly (with or without replacement).

This example compares, on a synthetic user-item set dataset:

* top-k by similarity (the classical recommendation list),
* k uniform samples without replacement from the r-neighborhood
  (the Section 3 structure's native k-sampling),

and reports intra-list diversity (average pairwise Jaccard distance) and
catalog coverage over many users.

Run with::

    python examples/diversity_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PermutationFairSampler
from repro.data import generate_movielens_like, select_interesting_queries
from repro.distances import JaccardSimilarity
from repro.lsh import MinHashFamily


def intra_list_distance(dataset, indices, measure) -> float:
    """Average pairwise Jaccard *distance* among the recommended users' sets."""
    if len(indices) < 2:
        return 0.0
    distances = []
    for position, first in enumerate(indices):
        for second in indices[position + 1:]:
            distances.append(1.0 - measure.value(dataset[first], dataset[second]))
    return float(np.mean(distances))


def main() -> None:
    dataset = generate_movielens_like(num_users=250, seed=5)
    measure = JaccardSimilarity()
    radius = 0.2
    k = 5

    sampler = PermutationFairSampler(
        MinHashFamily(), radius=radius, far_radius=0.1, recall=0.95, seed=6
    ).fit(dataset)

    query_indices = select_interesting_queries(
        dataset, measure, num_queries=15, min_neighbors=k + 2, threshold=radius, seed=6
    )

    topk_diversity, fair_diversity = [], []
    topk_coverage, fair_coverage = set(), set()
    for query_index in query_indices:
        query = dataset[query_index]
        values = measure.values_to_query(dataset, query)
        values[query_index] = -1.0  # never recommend the user to themselves

        top_k = list(np.argsort(-values)[:k])
        fair_k = [
            i for i in sampler.sample_k(query, k + 1, replacement=False) if i != query_index
        ][:k]

        topk_diversity.append(intra_list_distance(dataset, top_k, measure))
        fair_diversity.append(intra_list_distance(dataset, fair_k, measure))
        topk_coverage.update(int(i) for i in top_k)
        fair_coverage.update(int(i) for i in fair_k)

    print(f"{len(query_indices)} users, {k} recommendations each, similarity threshold r={radius}")
    print(f"{'strategy':<28}{'intra-list diversity':>22}{'catalog coverage':>20}")
    print(f"{'top-k by similarity':<28}{np.mean(topk_diversity):>22.3f}{len(topk_coverage):>20}")
    print(f"{'fair k-sample (Section 3)':<28}{np.mean(fair_diversity):>22.3f}{len(fair_coverage):>20}")
    print("\nUniform sampling from the neighborhood trades a little similarity for")
    print("more diverse lists and broader coverage, with every eligible item getting")
    print("the same chance of exposure.")


if __name__ == "__main__":
    main()

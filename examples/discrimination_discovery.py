"""Discrimination discovery via independent range sampling.

The paper points out (Section 1 and the conclusion) that independent range
sampling can support discrimination discovery in databases: by drawing
*independent* samples of the users similar to a target user, an analyst can
compare outcome rates (e.g. loan approval) across protected groups in that
neighborhood with statistical significance — without paying for the full
neighborhood on every probe.

This example builds a synthetic "credit applications" table, uses the
Section 4 r-NNIS structure to sample similar applicants independently, and
runs a simple two-proportion z-test on the sampled approval rates between two
groups.

Run with::

    python examples/discrimination_discovery.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import IndependentFairSampler
from repro.distances import JaccardSimilarity
from repro.lsh import MinHashFamily


def build_population(num_applicants: int = 500, seed: int = 0):
    """Synthetic applicants: each a set of categorical attributes, a group and an outcome.

    Attribute ids encode legally admissible features (income band, employment
    type, region, ...).  Applicants are generated around a small number of
    archetype profiles (so genuinely similar applicants exist, as in real
    application data).  The hidden data-generating process approves group 0
    applicants more often than group 1 applicants *with identical features* —
    the discrimination the analyst wants to detect.
    """
    rng = np.random.default_rng(seed)
    num_pools, pool_size = 10, 6
    attribute_pools = [list(range(base, base + pool_size)) for base in range(0, num_pools * pool_size, pool_size)]
    archetypes = [
        [int(rng.choice(pool)) for pool in attribute_pools] for _ in range(10)
    ]
    applicants, groups, outcomes = [], [], []
    for _ in range(num_applicants):
        profile = list(archetypes[int(rng.integers(0, len(archetypes)))])
        # Mutate a few attributes so applicants of the same archetype are
        # similar but not identical.
        for position in rng.choice(num_pools, size=3, replace=False):
            profile[position] = int(rng.choice(attribute_pools[position]))
        features = frozenset(profile)
        group = int(rng.random() < 0.4)
        merit = len(features & frozenset(range(0, 30))) / 10.0
        bias = -0.25 if group == 1 else 0.0
        approved = int(rng.random() < min(0.95, max(0.05, 0.4 + merit / 2 + bias)))
        applicants.append(features)
        groups.append(group)
        outcomes.append(approved)
    return applicants, np.array(groups), np.array(outcomes)


def two_proportion_z(successes_a, total_a, successes_b, total_b) -> float:
    """z statistic for the difference of two proportions (0 when undefined)."""
    if total_a == 0 or total_b == 0:
        return 0.0
    p_a, p_b = successes_a / total_a, successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    denom = math.sqrt(pooled * (1 - pooled) * (1 / total_a + 1 / total_b))
    return 0.0 if denom == 0 else (p_a - p_b) / denom


def main() -> None:
    applicants, groups, outcomes = build_population()
    radius = 0.3  # "similar applicant" = Jaccard similarity of features >= 0.3

    sampler = IndependentFairSampler(
        MinHashFamily(), radius=radius, far_radius=0.1, recall=0.95, seed=1
    ).fit(applicants)

    # The analyst probes the neighborhood of a target applicant with
    # independent samples instead of retrieving all similar applicants.
    # Pick a target that actually has a populated neighborhood.
    from repro.data import select_interesting_queries

    target_index = select_interesting_queries(
        applicants, JaccardSimilarity(), num_queries=1, min_neighbors=20,
        threshold=radius, seed=1,
    )[0]
    target = applicants[target_index]
    sample_budget = 200
    tallies = {0: [0, 0], 1: [0, 0]}  # group -> [approvals, total]
    for _ in range(sample_budget):
        index = sampler.sample(target, exclude_index=target_index)
        if index is None:
            continue
        group = int(groups[index])
        tallies[group][0] += int(outcomes[index])
        tallies[group][1] += 1

    (a_succ, a_tot), (b_succ, b_tot) = tallies[0], tallies[1]
    z = two_proportion_z(a_succ, a_tot, b_succ, b_tot)
    print(f"target applicant {target_index}: sampled {a_tot + b_tot} similar applicants")
    print(f"  group 0 approval rate: {a_succ}/{a_tot}"
          f" = {a_succ / max(1, a_tot):.2f}")
    print(f"  group 1 approval rate: {b_succ}/{b_tot}"
          f" = {b_succ / max(1, b_tot):.2f}")
    print(f"  two-proportion z statistic: {z:.2f}"
          f" ({'significant difference' if abs(z) > 1.96 else 'no significant difference'} at 5%)")
    print("\nBecause every similar applicant is sampled with equal probability and")
    print("samples are independent across probes, these counts are an unbiased basis")
    print("for the significance test — a biased (standard LSH) sampler would not be.")


if __name__ == "__main__":
    main()

"""Recommendation scenario: fair sampling over matrix-factorization embeddings.

The paper motivates the r-NNIS problem with recommender systems: instead of
always recommending the items with the largest inner product, a system can
recommend a *uniform* sample of all items above a relevance threshold, giving
every sufficiently relevant item the same exposure.  This example

1. generates a synthetic ratings matrix and factorizes it (ALS),
2. normalizes the item factors onto the unit sphere,
3. builds the Section 5 filter-based alpha-NNIS sampler over the items,
4. compares "top-1 by inner product" exposure with fair-sampling exposure.

Run with::

    python examples/recommender_fairness.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core import FilterFairSampler
from repro.data import factorize, generate_ratings
from repro.distances import InnerProductSimilarity
from repro.distances.inner_product import normalize_rows


def main() -> None:

    # 1. Ratings + ALS factorization (both part of this library's substrate).
    num_users, num_items = 60, 400
    ratings = generate_ratings(num_users, num_items, rank=8, density=0.15, seed=1)
    model = factorize(ratings, rank=8, iterations=6, seed=2)

    # 2. Work on the unit sphere (Section 5 is stated for unit vectors).
    items = normalize_rows(model.item_factors)
    users = normalize_rows(model.user_factors)
    measure = InnerProductSimilarity()

    # 3. Pick a user and a relevance threshold alpha: the 95th percentile of
    #    that user's item scores, so ~20 items count as "relevant".
    user = users[7]
    scores = measure.values_to_query(items, user)
    alpha = float(np.quantile(scores, 0.95))
    relevant = np.flatnonzero(scores >= alpha)
    print(f"user has {relevant.size} items above the relevance threshold alpha={alpha:.3f}")

    sampler = FilterFairSampler(
        alpha=alpha, beta=alpha - 0.3, num_structures=8, epsilon=0.05, seed=3
    ).fit(items)

    # 4. Compare exposure under top-1 recommendation vs fair sampling.
    top1 = int(np.argmax(scores))
    repetitions = 300
    exposure = Counter()
    for _ in range(repetitions):
        index = sampler.sample(user)
        if index is not None:
            exposure[index] += 1

    print(f"\ntop-1 recommendation would always expose item {top1} "
          f"(score {scores[top1]:.3f}) and nothing else")
    print(f"fair sampling spread {repetitions} recommendations over {len(exposure)} distinct items:")
    for item, count in exposure.most_common(8):
        print(f"  item {item:>4}  score {scores[item]:.3f}  share {count / repetitions:.2%}")
    coverage = len(exposure) / max(1, relevant.size)
    print(f"\ncoverage of the relevant set: {coverage:.0%} "
          "(every relevant item has the same chance of being recommended)")


if __name__ == "__main__":
    main()

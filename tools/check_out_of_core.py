"""Out-of-core serving check: answer queries under a memory budget smaller
than the corpus.

The CI job this script drives is the executable form of the memmap tier's
promise: a format-5 snapshot can be served with ``store="memmap"`` by a
process whose *heap budget is smaller than the dataset*, because the corpus
is paged in from the snapshot files on demand instead of materialized.

Two subprocess phases (each a fresh interpreter, so limits and page caches
don't leak between them):

``build``
    Generates an out-of-budget dense corpus, builds a permutation-sampler
    engine, saves a v5 snapshot, and records the expected answers
    (indices + measure values) of a fixed query batch.

``serve``
    Caps the process heap with ``resource.setrlimit(RLIMIT_DATA, budget)``
    — ``RLIMIT_DATA`` (not ``RLIMIT_AS``) because file-backed ``np.memmap``
    pages count toward the address-space limit but not the data limit; the
    budget must bound what the process *materializes*, which is exactly
    what the out-of-core tier avoids.  Then loads the snapshot with
    ``store="memmap"`` and asserts byte-identical answers.  As a control,
    it first verifies the corpus file alone exceeds the budget, so an
    accidental eager load could not survive the limit.

Run with no arguments to execute both phases::

    PYTHONPATH=src python tools/check_out_of_core.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

N_POINTS = 80_000
DIM = 384
N_QUERIES = 48
#: Heap budget for the serving phase.  The corpus alone is
#: ``N_POINTS * DIM * 8`` = ~245 MB; the budget leaves room for the
#: interpreter, numpy and the (in-RAM) bucket structures but not for a
#: materialized dataset.
BUDGET_BYTES = 200 * 1024 * 1024


def _spec():
    from repro.spec import LSHSpec, SamplerSpec

    return SamplerSpec(
        "permutation",
        {"radius": 0.7, "far_radius": 0.2, "num_hashes": 12, "num_tables": 4},
        lsh=LSHSpec("hyperplane", {"dim": DIM}),
        seed=31,
    )


def build(workdir: pathlib.Path) -> None:
    import numpy as np

    from repro.engine import BatchQueryEngine, save_engine
    from repro.engine.requests import QueryRequest

    rng = np.random.default_rng(13)
    points = rng.standard_normal((N_POINTS, DIM))
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    points = np.ascontiguousarray(points)

    engine = BatchQueryEngine.build(_spec().build(), points)
    save_engine(engine, workdir / "snapshot", format_version=5)

    query_rows = rng.choice(N_POINTS, size=N_QUERIES, replace=False)
    queries = np.ascontiguousarray(points[query_rows])
    np.save(workdir / "queries.npy", queries)
    responses = engine.run([QueryRequest(query=q) for q in queries])
    expected = [
        {"indices": [int(i) for i in r.indices], "value": r.value} for r in responses
    ]
    (workdir / "expected.json").write_text(json.dumps(expected))
    print(f"build: saved v5 snapshot + {N_QUERIES} expected answers under {workdir}")


def serve(workdir: pathlib.Path) -> None:
    import resource

    resource.setrlimit(resource.RLIMIT_DATA, (BUDGET_BYTES, BUDGET_BYTES))

    import numpy as np

    from repro.engine import load_engine
    from repro.engine.requests import QueryRequest

    corpus_bytes = os.path.getsize(workdir / "snapshot" / "arrays" / "dataset__dense.npy")
    assert corpus_bytes > BUDGET_BYTES, (
        f"control failed: corpus ({corpus_bytes} B) fits the budget "
        f"({BUDGET_BYTES} B); the check would prove nothing"
    )

    engine = load_engine(workdir / "snapshot", store="memmap")
    queries = np.load(workdir / "queries.npy")
    responses = engine.run([QueryRequest(query=q) for q in queries])
    expected = json.loads((workdir / "expected.json").read_text())
    for index, (response, want) in enumerate(zip(responses, expected)):
        assert [int(i) for i in response.indices] == want["indices"], index
        assert response.value == want["value"], index
    print(
        f"serve: {len(expected)} answers byte-identical under a "
        f"{BUDGET_BYTES // 1024 // 1024} MB heap budget "
        f"(corpus {corpus_bytes // 1024 // 1024} MB, backend="
        f"{engine.tables.point_store.backend})"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--phase", choices=["build", "serve"])
    parser.add_argument("--workdir")
    args = parser.parse_args()

    if args.phase:
        workdir = pathlib.Path(args.workdir)
        build(workdir) if args.phase == "build" else serve(workdir)
        return 0

    with tempfile.TemporaryDirectory(prefix="out-of-core-") as tmp:
        for phase in ("build", "serve"):
            result = subprocess.run(
                [sys.executable, __file__, "--phase", phase, "--workdir", tmp],
                env={**os.environ},
            )
            if result.returncode != 0:
                print(f"{phase} phase failed", file=sys.stderr)
                return result.returncode
    print("out-of-core check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Verify (or regenerate) the checked-in public-API surface file.

The public surface of :mod:`repro` is the union of

* ``repro.__all__`` (every symbol importable from the top level), and
* the three registries (every sampler / distance / LSH family name and the
  class it resolves to).

``docs/api_surface.txt`` is the checked-in snapshot of that surface.  CI runs
this script with no arguments: any drift — a symbol dropped from
``__all__``, a registration renamed or removed — fails the job, so API
breaks are deliberate, reviewed diffs of the surface file rather than
accidents.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_api_surface.py          # verify
    PYTHONPATH=src python tools/check_api_surface.py --write  # regenerate
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SURFACE_FILE = REPO_ROOT / "docs" / "api_surface.txt"


def render_surface() -> str:
    """The current public surface, in the checked-in file's format."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro
    from repro import registry

    lines = [
        "# Public API surface of `repro` — checked by CI.",
        "# Regenerate after a *deliberate* API change with:",
        "#   PYTHONPATH=src python tools/check_api_surface.py --write",
        "",
        "[repro.__all__]",
    ]
    lines += sorted(repro.__all__)
    for title, reg in (
        ("samplers", registry.SAMPLERS),
        ("distances", registry.DISTANCES),
        ("lsh_families", registry.LSH_FAMILIES),
    ):
        lines.append("")
        lines.append(f"[registry.{title}]")
        for name, cls in reg.items():
            lines.append(f"{name} -> {cls.__module__}.{cls.__qualname__}")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write",
        action="store_true",
        help="rewrite docs/api_surface.txt with the current surface",
    )
    args = parser.parse_args(argv)

    current = render_surface()
    if args.write:
        SURFACE_FILE.write_text(current, encoding="utf-8")
        print(f"wrote {SURFACE_FILE.relative_to(REPO_ROOT)}")
        return 0

    recorded = SURFACE_FILE.read_text(encoding="utf-8") if SURFACE_FILE.exists() else ""
    if current == recorded:
        print("public API surface matches docs/api_surface.txt")
        return 0
    import difflib

    diff = difflib.unified_diff(
        recorded.splitlines(keepends=True),
        current.splitlines(keepends=True),
        fromfile="docs/api_surface.txt (checked in)",
        tofile="current surface",
    )
    sys.stderr.write("".join(diff))
    sys.stderr.write(
        "\npublic API surface drifted from docs/api_surface.txt;\n"
        "if the change is deliberate, regenerate with:\n"
        "  PYTHONPATH=src python tools/check_api_surface.py --write\n"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())

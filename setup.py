"""Setuptools shim.

The environment this reproduction targets may lack the ``wheel`` package, in
which case PEP 660 editable installs fail; keeping a ``setup.py`` allows the
legacy ``pip install -e . --no-use-pep517 --no-build-isolation`` path.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

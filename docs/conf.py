"""Sphinx configuration for the repro library documentation.

The pages are MyST markdown (``myst_parser``); build them with::

    sphinx-build -W -b html docs docs/_build

``-W`` (warnings are errors) is enforced in CI, so keep every page in the
``index.md`` toctree and every cross-page link valid.
"""

import pathlib
import sys

# Make the library importable for doctest-style snippets and future autodoc.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

project = "repro — fair near-neighbor sampling"
author = "repro contributors"
copyright = "2026, repro contributors"

extensions = ["myst_parser"]

source_suffix = {".md": "markdown"}
root_doc = "index"

exclude_patterns = ["_build"]

html_theme = "alabaster"
html_title = "repro"

myst_enable_extensions = ["colon_fence"]

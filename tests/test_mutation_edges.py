"""Regression tests for the mutation edge paths audited in this PR.

Three under-specified behaviours are pinned down:

* ``delete`` on an out-of-range or already-tombstoned slot raises a typed
  error (:class:`SlotOutOfRangeError` — an ``IndexError`` — respectively
  :class:`AlreadyDeletedError` — a ``KeyError``) **before** any bookkeeping:
  no :class:`MutationDelta` entry, no pending tombstone, no moved engine
  counter, no compaction-trigger drift.
* ``insert_many([])`` is a no-op at every layer (tables, engine, facade):
  it returns ``[]``, emits no delta, bumps no counter and triggers no
  sampler re-synchronization.
* ``FairNN.neighborhood`` over a churned (insert/delete/compaction) index
  always equals a fresh exact scan over the live points — in particular it
  never evaluates the measure against a compaction-released (``None``)
  dataset slot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import FairNN
from repro.core import PermutationFairSampler
from repro.engine import BatchQueryEngine, ShardedEngine
from repro.exceptions import (
    AlreadyDeletedError,
    InvalidParameterError,
    SlotOutOfRangeError,
)
from repro.lsh import MinHashFamily
from repro.spec import DistanceSpec, EngineSpec, LSHSpec, SamplerSpec

SET_PARAMS = {"radius": 0.35, "far_radius": 0.1, "num_hashes": 2, "num_tables": 8}


def _dataset(seed=3, n=60):
    rng = np.random.default_rng(seed)
    return [
        frozenset(int(x) for x in rng.choice(400, size=rng.integers(8, 22)))
        for _ in range(n)
    ]


def _engine(dataset, sharded=False, seed=7):
    sampler = PermutationFairSampler(
        MinHashFamily(), seed=seed, **{k: SET_PARAMS[k] for k in SET_PARAMS}
    )
    if sharded:
        return ShardedEngine.build(sampler, dataset, n_shards=3)
    return BatchQueryEngine.build(sampler, dataset)


@pytest.mark.parametrize("sharded", [False, True])
class TestDeleteEdgeSemantics:
    def test_out_of_range_raises_index_error(self, sharded):
        engine = _engine(_dataset(), sharded)
        for bad in (len(engine.tables.dataset), 10_000, -1):
            with pytest.raises(SlotOutOfRangeError):
                engine.delete(bad)
            with pytest.raises(IndexError):
                engine.delete(bad)
            # Still an InvalidParameterError for pre-existing handlers.
            with pytest.raises(InvalidParameterError):
                engine.delete(bad)

    def test_double_delete_raises_key_error(self, sharded):
        engine = _engine(_dataset(), sharded)
        engine.delete(0)
        with pytest.raises(AlreadyDeletedError):
            engine.delete(0)
        with pytest.raises(KeyError):
            engine.delete(0)
        with pytest.raises(InvalidParameterError):
            engine.delete(0)

    def test_failed_delete_has_no_side_effects(self, sharded):
        engine = _engine(_dataset(), sharded)
        tables = engine.tables
        engine.delete(1)
        delta_before = tables.peek_delta()
        deleted_before = list(delta_before.deleted)
        pending_before = set(tables._pending)
        live_before = tables.num_live
        epoch_before = tables.mutation_epoch
        stats_before = engine.stats.as_dict()

        for failing in (lambda: engine.delete(1), lambda: engine.delete(10_000)):
            with pytest.raises(InvalidParameterError):
                failing()
            # Never double-counted: the delta, the tombstone bookkeeping and
            # the engine statistics are untouched by a failed delete.
            assert list(tables.peek_delta().deleted) == deleted_before
            assert set(tables._pending) == pending_before
            assert tables.num_live == live_before
            assert tables.mutation_epoch == epoch_before
            assert engine.stats.as_dict() == stats_before

    def test_tombstone_fraction_not_moved_by_failed_deletes(self, sharded):
        dataset = _dataset(n=40)
        engine = _engine(dataset, sharded)
        tables = engine.tables
        # Bring the index one delete short of the compaction trigger, then
        # hammer it with failing deletes: no sweep may fire.
        threshold = tables.max_tombstone_fraction
        while len(tables._pending) + 1 <= threshold * max(1, tables.num_live - 1):
            engine.delete(len(tables._pending))
        sweeps = tables.rebuilds_triggered
        for _ in range(50):
            with pytest.raises(InvalidParameterError):
                engine.delete(0 if not tables._alive[0] else 10_000)
        assert tables.rebuilds_triggered == sweeps


class TestFairNNDeleteSemantics:
    def test_facade_propagates_typed_errors_without_counting(self):
        dataset = _dataset()
        spec = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)
        nn = FairNN.from_spec(spec).serve(dataset)
        nn.delete(3)
        stats_before = {name: s.as_dict() for name, s in nn.stats().items()}
        with pytest.raises(KeyError):
            nn.delete(3)
        with pytest.raises(IndexError):
            nn.delete(10_000)
        assert {name: s.as_dict() for name, s in nn.stats().items()} == stats_before


@pytest.mark.parametrize("sharded", [False, True])
class TestEmptyInsertIsANoOp:
    def test_engine_empty_insert_many(self, sharded):
        engine = _engine(_dataset(), sharded)
        tables = engine.tables
        epoch = tables.mutation_epoch
        stats_before = engine.stats.as_dict()
        assert engine.insert_many([]) == []
        assert tables.mutation_epoch == epoch
        assert tables.peek_delta().is_empty
        assert engine.stats.as_dict() == stats_before
        assert engine._tables_dirty is False

    def test_tables_empty_insert_many(self, sharded):
        engine = _engine(_dataset(), sharded)
        tables = engine.tables
        epoch = tables.mutation_epoch
        assert tables.insert_many([]) == []
        assert tables.mutation_epoch == epoch
        assert tables.peek_delta().is_empty


class TestFairNNEmptyInsert:
    def test_no_delta_no_counters_no_sync(self):
        dataset = _dataset()
        spec = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)
        nn = FairNN.from_spec(spec).serve(dataset, shards=2)
        stats_before = {name: s.as_dict() for name, s in nn.stats().items()}
        assert nn.insert_many([]) == []
        assert {name: s.as_dict() for name, s in nn.stats().items()} == stats_before
        assert nn.tables.peek_delta().is_empty
        assert all(not engine._tables_dirty for engine in nn._engines.values())

    def test_no_op_even_where_mutation_would_be_rejected(self):
        """A facade serving the exact baseline rejects real mutations, but an
        empty batch has nothing to apply and must not raise."""
        dataset = _dataset()
        spec = EngineSpec(
            samplers={
                "fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5),
                "exact": SamplerSpec("exact", {"radius": 0.35}, distance=DistanceSpec("jaccard"), seed=6),
            },
            primary="fair",
        )
        nn = FairNN.from_spec(spec).serve(dataset)
        with pytest.raises(InvalidParameterError):
            nn.insert(frozenset({1, 2, 3}))
        assert nn.insert_many([]) == []


class TestNeighborhoodLivenessAudit:
    @pytest.mark.parametrize("shards", [None, 3])
    def test_neighborhood_equals_fresh_exact_scan_under_churn(self, shards):
        """Property test: after arbitrary interleavings of insert / delete /
        compaction, ``FairNN.neighborhood`` equals a fresh exact scan over
        the surviving points — in particular it survives compaction-released
        (``None``) dataset slots, which the pre-audit implementation fed
        straight into the measure kernels."""
        rng = np.random.default_rng(11)
        dataset = _dataset(n=50)
        spec = EngineSpec(
            samplers={"fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)},
            max_tombstone_fraction=0.15,  # force frequent sweeps
        )
        nn = (
            FairNN.from_spec(spec).serve(dataset)
            if shards is None
            else FairNN.from_spec(spec).serve(dataset, shards=shards)
        )
        sampler = nn.samplers["fair"]
        queries = [dataset[0], dataset[7], frozenset(int(x) for x in rng.choice(400, size=12))]

        for step in range(60):
            action = rng.integers(0, 3)
            live = np.flatnonzero(nn.tables.alive)
            if action == 0 or live.size <= 5:
                nn.insert_many(
                    [frozenset(int(x) for x in rng.choice(400, size=rng.integers(8, 22)))]
                )
            elif action == 1:
                nn.delete(int(rng.choice(live)))
            else:
                nn.tables.compact()
            if step % 5 == 0:
                container = nn.tables.dataset
                alive = nn.tables.alive
                for query in queries:
                    expected = sorted(
                        index
                        for index in range(len(container))
                        if alive[index]
                        and sampler.measure.within(
                            sampler.measure.value(container[index], query), sampler.radius
                        )
                    )
                    assert nn.neighborhood(query).tolist() == expected

        # End in a compacted state with released slots and check once more.
        nn.tables.compact()
        assert any(point is None for point in nn.tables.dataset)
        container = nn.tables.dataset
        alive = nn.tables.alive
        for query in queries:
            expected = sorted(
                index
                for index in range(len(container))
                if alive[index]
                and sampler.measure.within(
                    sampler.measure.value(container[index], query), sampler.radius
                )
            )
            assert nn.neighborhood(query).tolist() == expected

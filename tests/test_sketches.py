"""Tests for the count-distinct sketch substrate."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sketches import BottomTSketch, DistinctCountSketcher, PairwiseIndependentHash


class TestPairwiseIndependentHash:
    def test_output_in_range(self):
        h = PairwiseIndependentHash.sample(output_range=1000, seed=0)
        for key in range(100):
            assert 0 <= h(key) < 1000

    def test_deterministic(self):
        h = PairwiseIndependentHash(a=12345, b=678, output_range=10**6)
        assert h(42) == h(42)

    def test_different_functions_differ(self):
        h1 = PairwiseIndependentHash.sample(10**9, seed=1)
        h2 = PairwiseIndependentHash.sample(10**9, seed=2)
        values1 = [h1(k) for k in range(50)]
        values2 = [h2(k) for k in range(50)]
        assert values1 != values2

    def test_hash_array_matches_scalar(self):
        h = PairwiseIndependentHash.sample(10**6, seed=3)
        keys = np.arange(30)
        np.testing.assert_array_equal(h.hash_array(keys), [h(int(k)) for k in keys])

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            PairwiseIndependentHash(a=0, b=0, output_range=10)
        with pytest.raises(InvalidParameterError):
            PairwiseIndependentHash(a=1, b=0, output_range=0)


class TestBottomTSketch:
    def test_exact_for_small_streams(self):
        sketcher = DistinctCountSketcher(universe_size=1000, epsilon=0.5, seed=0)
        sketch = sketcher.new_sketch()
        sketch.update_many(range(5))
        assert sketch.estimate() == pytest.approx(5.0)

    def test_duplicates_do_not_inflate(self):
        sketcher = DistinctCountSketcher(universe_size=1000, epsilon=0.5, seed=1)
        sketch = sketcher.new_sketch()
        for _ in range(10):
            sketch.update_many([1, 2, 3])
        assert sketch.estimate() == pytest.approx(3.0)

    def test_estimate_accuracy_on_large_stream(self):
        sketcher = DistinctCountSketcher(universe_size=100_000, epsilon=0.25, delta=0.01, seed=2)
        sketch = sketcher.new_sketch()
        true_count = 3000
        sketch.update_many(range(true_count))
        estimate = sketch.estimate()
        assert 0.6 * true_count <= estimate <= 1.6 * true_count

    def test_merge_equals_union(self):
        sketcher = DistinctCountSketcher(universe_size=10_000, epsilon=0.5, seed=3)
        a = sketcher.sketch_keys(range(0, 400))
        b = sketcher.sketch_keys(range(200, 600))
        merged = a.merge(b)
        union_estimate = merged.estimate()
        direct = sketcher.sketch_keys(range(0, 600)).estimate()
        assert union_estimate == pytest.approx(direct, rel=1e-9)

    def test_merge_all(self):
        sketcher = DistinctCountSketcher(universe_size=10_000, epsilon=0.5, seed=4)
        parts = [sketcher.sketch_keys(range(i * 100, (i + 1) * 100)) for i in range(5)]
        merged = BottomTSketch.merge_all(parts)
        assert 250 <= merged.estimate() <= 900  # true value 500, epsilon=1/2 guarantee

    def test_merge_all_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            BottomTSketch.merge_all([])

    def test_merge_incompatible_sketches_rejected(self):
        a = DistinctCountSketcher(universe_size=100, epsilon=0.5, seed=5).new_sketch()
        b = DistinctCountSketcher(universe_size=100, epsilon=0.5, seed=6).new_sketch()
        a.update(1)
        b.update(2)
        with pytest.raises(InvalidParameterError):
            a.merge(b)

    def test_merge_is_commutative(self):
        sketcher = DistinctCountSketcher(universe_size=5_000, epsilon=0.5, seed=7)
        a = sketcher.sketch_keys(range(0, 300))
        b = sketcher.sketch_keys(range(150, 450))
        assert a.merge(b).estimate() == pytest.approx(b.merge(a).estimate())

    def test_empty_sketch_estimates_zero(self):
        sketch = DistinctCountSketcher(universe_size=100, seed=8).new_sketch()
        assert sketch.estimate() == 0.0

    def test_half_approximation_guarantee_typical(self):
        """Section 4 relies on a 1/2-approximation; check it holds on typical data."""
        sketcher = DistinctCountSketcher(universe_size=50_000, epsilon=0.5, delta=0.01, seed=9)
        for true_count in (50, 500, 2000):
            estimate = sketcher.sketch_keys(range(true_count)).estimate()
            assert 0.5 * true_count <= estimate <= 1.6 * true_count


class TestDistinctCountSketcher:
    def test_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            DistinctCountSketcher(universe_size=10, epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            DistinctCountSketcher(universe_size=10, delta=1.5)

    def test_invalid_universe(self):
        with pytest.raises(InvalidParameterError):
            DistinctCountSketcher(universe_size=0)

    def test_t_grows_with_accuracy(self):
        loose = DistinctCountSketcher(universe_size=100, epsilon=0.5, seed=0)
        tight = DistinctCountSketcher(universe_size=100, epsilon=0.1, seed=0)
        assert tight.t > loose.t

    def test_rows_grow_with_confidence(self):
        loose = DistinctCountSketcher(universe_size=100, delta=0.5, seed=0)
        tight = DistinctCountSketcher(universe_size=100, delta=0.001, seed=0)
        assert tight.num_rows >= loose.num_rows

    def test_sketches_from_same_sketcher_are_mergeable(self):
        sketcher = DistinctCountSketcher(universe_size=1000, seed=10)
        a = sketcher.sketch_keys([1, 2, 3])
        b = sketcher.sketch_keys([3, 4, 5])
        assert a.merge(b).estimate() == pytest.approx(5.0)

"""The unified gather layer: primitives, budget controller, executor parity.

Three layers of guarantees for :mod:`repro.engine.gather`, the rank-prefix
core both sharded executors share:

1. **Primitive correctness** — :func:`~repro.engine.gather.
   bounded_shard_prefix` / :func:`~repro.engine.gather.merge_prefix_parts`
   produce true, certified global rank prefixes (with sound per-table
   completeness metadata), and :class:`~repro.engine.gather.PrefixView`
   stays unpackable as the bare ``(ranks, indices)`` tuple.
2. **Controller determinism** — :class:`~repro.engine.gather.
   PrefixBudgetController` is a pure, order-insensitive function of the
   per-round certification counts: injectable state, exact tuning moves,
   probe-down clock.
3. **Executor parity** — for the same batch stream, the thread and process
   executors return byte-identical responses *and* walk the exact same
   controller state sequence, for single draws, ``k``-draws and the
   bucket-replaying standard-LSH sampler alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchQueryEngine, ShardedEngine
from repro.engine.gather import (
    PrefixBudgetController,
    PrefixView,
    bounded_shard_prefix,
    merge_prefix_parts,
    split_budget,
)
from repro.engine.procpool import ProcessShardedEngine
from repro.engine.requests import QueryRequest
from repro.exceptions import InvalidParameterError

from repro import MinHashFamily
from repro.core import StandardLSHSampler

from test_sharded import SET_PARAMS, _assert_identical, _make_sampler


def _build_sampler(name, seed=7):
    """Like ``_make_sampler`` but rank-enabled for standard LSH.

    The classical sampler does not need ranks to answer, but only tables
    built *with* ranks expose the bounded rank-prefix gather — the serving
    configuration under test here.
    """
    if name == "standard_lsh":
        return StandardLSHSampler(MinHashFamily(), seed=seed, use_ranks=True, **SET_PARAMS)
    return _make_sampler(name, seed=seed)


@pytest.fixture(scope="module")
def hub_dataset():
    rng = np.random.default_rng(11)
    core = set(range(8))
    return [
        frozenset(core | {int(x) for x in rng.choice(range(8, 300), size=10, replace=False)})
        for _ in range(160)
    ]


# ----------------------------------------------------------------------
class TestGatherPrimitives:
    def test_prefix_view_unpacks_as_bare_tuple(self):
        ranks = np.array([1, 2, 3], dtype=np.int64)
        indices = np.array([7, 8, 9], dtype=np.intp)
        view = PrefixView(ranks, indices)
        unpacked_ranks, unpacked_indices = view
        assert unpacked_ranks is ranks and unpacked_indices is indices
        assert isinstance(view, tuple) and len(view) == 2
        assert view.table_ids is None and view.table_sizes is None

    def test_empty_view_carries_zeroed_table_sizes_when_asked(self):
        bare = PrefixView.empty()
        assert bare.ranks.size == 0 and bare.table_sizes is None
        tabled = PrefixView.empty(num_tables=5)
        assert tabled.table_ids.size == 0
        assert np.array_equal(tabled.table_sizes, np.zeros(5, dtype=np.int64))

    def test_split_budget_is_ceiling_division_with_floor(self):
        assert split_budget(128, 4) == 32
        assert split_budget(130, 4) == 33
        assert split_budget(128, 1) == 128
        # Tiny splits are floored: below it the per-shard overheads dominate.
        assert split_budget(64, 8) == 32
        assert split_budget(64, 8, floor=4) == 8

    def test_bounded_gather_merges_to_a_true_certified_prefix(self, hub_dataset):
        sampler = _make_sampler("permutation")
        engine = ShardedEngine.build(sampler, hub_dataset, n_shards=3)
        tables = engine.tables
        query = hub_dataset[0]
        full_ranks, full_indices = tables.colliding_view(query)
        order = np.argsort(full_ranks, kind="stable")
        full_ranks, full_indices = full_ranks[order], full_indices[order]

        keys = tables.query_keys(query)
        for limit in (4, 16, 10_000):
            parts = []
            for shard_index in engine.tables._fitted_shards():
                part = bounded_shard_prefix(tables.shards[shard_index], keys, limit)
                if part is not None:
                    parts.append((shard_index, part))
            view, complete = merge_prefix_parts(parts, tables._shard_globals)
            ranks, indices = view
            # A true prefix: byte-identical head of the full rank-sorted view.
            assert np.array_equal(ranks, full_ranks[: ranks.size])
            assert np.array_equal(indices, full_indices[: indices.size])
            if complete:
                assert ranks.size == full_ranks.size

    def test_with_tables_metadata_accounts_per_bucket_completeness(self, hub_dataset):
        sampler = _build_sampler("standard_lsh")
        engine = ShardedEngine.build(sampler, hub_dataset, n_shards=3)
        tables = engine.tables
        query = hub_dataset[0]
        keys = tables.query_keys(query)
        view, complete = tables.colliding_prefix_view(
            None, 10_000, keys=keys, with_tables=True
        )
        assert complete
        # At a generous limit every bucket survives whole: the per-table
        # reference counts must equal the recorded full bucket sizes, which
        # in turn must equal the merged buckets' actual sizes.
        for table_index in range(tables.num_tables):
            in_view = int(np.count_nonzero(view.table_ids == table_index))
            assert in_view == int(view.table_sizes[table_index])
        truncated, complete = tables.colliding_prefix_view(
            None, 2, keys=keys, with_tables=True
        )
        assert not complete
        # Truncation may only ever *shrink* a bucket's surviving count, and
        # the recorded full sizes must not change.
        assert np.array_equal(truncated.table_sizes, view.table_sizes)
        for table_index in range(tables.num_tables):
            in_view = int(np.count_nonzero(truncated.table_ids == table_index))
            assert in_view <= int(truncated.table_sizes[table_index])


# ----------------------------------------------------------------------
class TestPrefixBudgetController:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PrefixBudgetController(floor=0)
        with pytest.raises(InvalidParameterError):
            PrefixBudgetController(floor=128, cap=64)
        with pytest.raises(InvalidParameterError):
            PrefixBudgetController(probe_every=0)

    def test_injected_start_is_clamped(self):
        assert PrefixBudgetController(floor=128, cap=4096).limit == 128
        assert PrefixBudgetController(floor=128, cap=4096, start=512).limit == 512
        assert PrefixBudgetController(floor=128, cap=4096, start=7).limit == 128
        assert PrefixBudgetController(floor=128, cap=4096, start=10_000).limit == 4096

    def test_batch_certifying_nothing_is_a_no_op(self):
        controller = PrefixBudgetController(start=512)
        controller.observe_batch([(512, 0), (1024, 0)], opening=512)
        assert controller.limit == 512
        assert controller.batches_tuned == 0

    def test_single_round_batch_probes_down(self):
        controller = PrefixBudgetController(floor=128, start=1024)
        controller.observe_batch([(1024, 20)], opening=1024)
        assert controller.limit == 512
        # ... but never below the floor.
        controller = PrefixBudgetController(floor=128, start=128)
        controller.observe_batch([(128, 20)], opening=128)
        assert controller.limit == 128

    def test_multi_round_batch_settles_on_the_seven_eighths_quantile(self):
        controller = PrefixBudgetController(floor=128)
        # 24 of 26 certified by the 256 round: 24/26 >= 7/8 -> tune to 256,
        # leaving the one straggler that needed 512 to escalation.
        controller.observe_batch([(128, 20), (256, 4), (512, 2)], opening=128)
        assert controller.limit == 256
        # A fatter tail pushes the quantile a round deeper.
        controller = PrefixBudgetController(floor=128)
        controller.observe_batch([(128, 10), (256, 6), (512, 10)], opening=128)
        assert controller.limit == 512

    def test_probe_down_clock_fires_every_nth_tuned_batch(self):
        controller = PrefixBudgetController(floor=128, probe_every=4)
        rounds = [(128, 10), (256, 16)]
        for _ in range(3):
            controller.observe_batch(rounds, opening=128)
            assert controller.limit == 256
        controller.observe_batch(rounds, opening=128)  # 4th tuned batch
        assert controller.limit == 128
        assert controller.batches_tuned == 4

    def test_escalation_raises_to_certified_depth_clamped(self):
        controller = PrefixBudgetController(floor=128, cap=4096, start=256)
        controller.observe_escalation(1024)
        assert controller.limit == 1024
        controller.observe_escalation(512)  # never lowers
        assert controller.limit == 1024
        controller.observe_escalation(1 << 20)
        assert controller.limit == 4096

    def test_demand_beyond_cap_disables_prefix_attempts(self):
        controller = PrefixBudgetController(floor=128, cap=4096, probe_every=4)
        assert controller.attempt_prefix()
        # 7/8 of the batch only certified at 8192 — beyond the cap, so the
        # prefix path would escalate for most queries of every future batch.
        controller.observe_batch([(128, 1), (8192, 30)], opening=128)
        assert controller.disabled
        assert controller.limit == 4096  # clamped, for the probe batches
        # The skip clock lets one probe batch through every probe_every.
        assert [controller.attempt_prefix() for _ in range(8)] == (
            [False, False, False, True] * 2
        )
        # A probe still finding beyond-cap depth stays disabled...
        controller.observe_batch([(4096, 2), (16384, 30)], opening=4096)
        assert controller.disabled
        # ... while a healthy probe re-enables immediately.
        controller.observe_batch([(4096, 30)], opening=4096)
        assert not controller.disabled
        assert controller.attempt_prefix()

    def test_replay_determinism_via_state_dict(self):
        stream = [
            ([(128, 3), (256, 9)], 128),
            ([(256, 12)], 256),
            ([(128, 1), (256, 2), (512, 9)], 128),
            ([(512, 30)], 512),
        ]
        def run():
            controller = PrefixBudgetController(floor=128, cap=4096, probe_every=4)
            states = []
            for rounds, opening in stream:
                controller.observe_batch(rounds, opening)
                states.append(controller.state_dict())
            return states
        assert run() == run()


# ----------------------------------------------------------------------
def _batch_stream(dataset):
    """A mixed multi-batch stream: cold start, repeats, k-draws, churn-free.

    Built once so both executors consume the exact same requests in the
    exact same batch boundaries.
    """
    hub = list(dataset[:20])
    return [
        hub[:12],                                        # cold batch
        hub[:12],                                        # warmed repeat
        [QueryRequest(q, k=3, replacement=False) for q in hub[5:15]],
        [QueryRequest(q, k=2, replacement=True) for q in hub[:8]] + hub[15:20],
        hub[8:20],
    ]


class TestExecutorGatherEquivalence:
    """Thread and process executors share one gather brain.

    Identical answers alone would tolerate divergent budget dynamics (a
    wrong budget costs work, not bytes) — so the controller's full state is
    compared after every batch too.
    """

    @pytest.mark.parametrize("sampler_name", ["permutation", "standard_lsh"])
    def test_byte_identical_answers_and_budget_sequences(
        self, hub_dataset, sampler_name
    ):
        stream = _batch_stream(hub_dataset)

        def serve(engine, close=False):
            answers, budgets = [], []
            try:
                for batch in stream:
                    answers.append(engine.run(list(batch)))
                    budget = getattr(engine, "_budget", None)
                    budgets.append(None if budget is None else budget.state_dict())
                counters = engine.stats.as_dict()
            finally:
                if close:
                    engine.close()
            return answers, budgets, counters

        reference, _, _ = serve(BatchQueryEngine.build(_build_sampler(sampler_name), hub_dataset))
        threaded, thread_budgets, thread_counters = serve(
            ShardedEngine.build(_build_sampler(sampler_name), hub_dataset, n_shards=4)
        )
        processed, process_budgets, process_counters = serve(
            ProcessShardedEngine.build(
                _build_sampler(sampler_name), hub_dataset, n_shards=4
            ),
            close=True,
        )
        for ref_batch, thread_batch, process_batch in zip(reference, threaded, processed):
            _assert_identical(ref_batch, thread_batch)
            _assert_identical(ref_batch, process_batch)
        # Same controller, same moves: the budget sequences match exactly.
        assert thread_budgets == process_budgets
        # And the gather did the answering: the prefix path certified work on
        # both executors, with identical certification/escalation profiles.
        assert thread_counters["prefix_scans"] > 0
        for counter in ("prefix_scans", "prefix_escalations", "shard_merges"):
            assert thread_counters[counter] == process_counters[counter]

    def test_disabled_controller_routes_batches_to_merged_buckets(self, hub_dataset):
        """A disabled regime skips the prefix path wholesale — and probes back.

        Answers must stay byte-identical either way (the merged-bucket path
        is the reference semantics); only the counters may move.
        """
        reference = BatchQueryEngine.build(
            _make_sampler("permutation"), hub_dataset
        ).run(list(hub_dataset[:10]))
        engine = ShardedEngine.build(_make_sampler("permutation"), hub_dataset, n_shards=2)
        try:
            engine._budget.disabled = True
            # probe_every=4: three straight batches skip the prefix path...
            for _ in range(3):
                _assert_identical(reference, engine.run(list(hub_dataset[:10])))
            assert engine.stats.prefix_scans == 0
            assert engine.stats.shard_merges > 0
            # ... and the fourth is a probe: this workload certifies within
            # the cap, so the controller switches the prefix path back on.
            _assert_identical(reference, engine.run(list(hub_dataset[:10])))
            assert engine.stats.prefix_scans > 0
            assert not engine._budget.disabled
            _assert_identical(reference, engine.run(list(hub_dataset[:10])))
        finally:
            engine.close()

    def test_configured_budget_seeds_the_controller(self, hub_dataset):
        built = ShardedEngine.build(_make_sampler("permutation"), hub_dataset, n_shards=2)
        built.close()
        engine = ShardedEngine(built.sampler, prefix_budget=256, prefix_budget_cap=512)
        try:
            assert engine._budget.limit == 256
            assert engine._budget.cap == 512
        finally:
            engine.close()
        with pytest.raises(InvalidParameterError):
            ShardedEngine(built.sampler, prefix_budget=512, prefix_budget_cap=256)

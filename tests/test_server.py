"""The HTTP serving surface: wire fidelity, capacity, quotas, hot swap.

Four serving guarantees are pinned down here:

1. **Wire fidelity** — a ``POST /v1/sample_batch`` answered over HTTP is
   byte-identical to the same batch run directly through an in-process
   :class:`~repro.api.FairNN` twin, for **every** registered sampler and
   for sharded as well as unsharded serving (JSON float64 round-trips
   exactly, and the server feeds the whole batch to one engine run).
2. **Capacity accounting** — ``GET /v1/capacity`` stays consistent with
   inserts and deletes, and admission enforces the slot budget within the
   configured over-commit ratio (429 + ``Retry-After`` beyond it).
3. **Backpressure** — per-sampler token-bucket quotas (injectable clock)
   and the bounded in-flight queue both surface as 429 with a usable
   ``Retry-After`` hint.
4. **Hot swap** — an atomic snapshot swap under concurrent traffic never
   drops or corrupts an in-flight request: every hammered response is
   complete and byte-identical to the canonical answer, before, during and
   after the v3 (unsharded) → v4 (sharded) flip; stale snapshots fail
   probe verification and the old index keeps serving.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import (
    CapacityModel,
    FairNN,
    FairNNClient,
    FairNNServer,
    TokenBucket,
)
from repro.engine.requests import QueryRequest
from repro.exceptions import (
    CapacityExceededError,
    InvalidParameterError,
    NotFittedError,
    QuotaExceededError,
)
from repro.server import ServingHandle, SnapshotSwapper, SwapInProgressError
from repro.server.app import decode_point, encode_point, point_kind
from repro.server.client import ServerHTTPError

from test_spec_api import CANONICAL_SPECS

SEED = 7
#: Twin facades must be seeded identically to be byte-comparable.
PERMUTATION_SPEC = dataclasses.replace(CANONICAL_SPECS["permutation"][0], seed=SEED)


class FakeClock:
    """A manually advanced monotonic clock for deterministic quota tests."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _flavour_data(name, small_set_dataset, planted_unit_vectors):
    spec, flavour = CANONICAL_SPECS[name]
    spec = dataclasses.replace(spec, seed=SEED)
    if flavour == "sets":
        dataset = list(small_set_dataset)
        queries = dataset[:4] + [frozenset(set(dataset[0]) | {99991})]
    else:
        dataset = planted_unit_vectors["points"]
        queries = [dataset[i] for i in range(4)] + [planted_unit_vectors["query"]]
    return spec, dataset, queries


@pytest.fixture
def serving_server(small_set_dataset, tmp_path):
    """A serving permutation facade behind HTTP, plus a client."""
    nn = FairNN.from_spec(PERMUTATION_SPEC).serve(list(small_set_dataset), shards=None)
    with FairNNServer(nn) as server:
        yield server, FairNNClient(server.url)


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_set_point_round_trip(self):
        point = frozenset({3, 1, 41, 5926})
        assert decode_point(encode_point(point), "set") == point

    def test_dense_point_round_trip_is_exact(self, rng):
        point = rng.standard_normal(17)
        restored = decode_point(json.loads(json.dumps(encode_point(point))), "dense")
        assert restored.dtype == np.float64
        assert np.array_equal(restored, point)  # bitwise: JSON floats are exact

    def test_invalid_points_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            decode_point("not-a-list", "set")
        with pytest.raises(InvalidParameterError):
            decode_point([1, "x"], "set")
        with pytest.raises(InvalidParameterError):
            decode_point(["x"], "dense")

    def test_point_kind_detection(self, small_set_dataset, planted_unit_vectors):
        sets = FairNN.from_spec(PERMUTATION_SPEC).fit(list(small_set_dataset))
        assert point_kind(sets) == "set"
        vectors = FairNN.from_spec(CANONICAL_SPECS["filter"][0]).fit(
            planted_unit_vectors["points"]
        )
        assert point_kind(vectors) == "dense"


# ----------------------------------------------------------------------
# 1. Wire fidelity: HTTP == direct, every sampler
# ----------------------------------------------------------------------
class TestByteIdenticalServing:
    @pytest.mark.parametrize("name", sorted(CANONICAL_SPECS))
    def test_http_batch_matches_direct_run(
        self, name, small_set_dataset, planted_unit_vectors
    ):
        spec, dataset, queries = _flavour_data(
            name, small_set_dataset, planted_unit_vectors
        )
        served = FairNN.from_spec(spec).fit(dataset)
        direct = FairNN.from_spec(spec).fit(dataset)
        requests = [QueryRequest(query=q, k=2, replacement=True) for q in queries]
        with FairNNServer(served) as server:
            client = FairNNClient(server.url)
            over_http = client.sample_batch(queries, k=2, replacement=True)
        expected = direct.run(requests)
        assert over_http["count"] == len(expected)
        for wire, response in zip(over_http["results"], expected):
            assert wire["indices"] == response.indices
            assert wire["value"] == response.value
            assert wire["found"] == response.found
            assert wire["stats"] == response.stats.to_dict()

    @pytest.mark.parametrize("shards", [None, 2])
    def test_http_serving_matches_direct_unsharded(self, shards, small_set_dataset):
        """Sharded or not, the served answers equal the unsharded direct run."""
        dataset = list(small_set_dataset)
        queries = dataset[:6]
        served = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset, shards=shards)
        direct = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        with FairNNServer(served) as server:
            client = FairNNClient(server.url)
            over_http = client.sample_batch(queries, k=3, replacement=False)
        expected = direct.run(
            [QueryRequest(query=q, k=3, replacement=False) for q in queries]
        )
        for wire, response in zip(over_http["results"], expected):
            assert wire["indices"] == response.indices
            assert wire["value"] == response.value

    def test_single_sample_and_exclude_index(self, serving_server, small_set_dataset):
        _, client = serving_server
        query = list(small_set_dataset)[0]
        answer = client.sample(query)
        assert answer["found"] and isinstance(answer["index"], int)
        excluded = client.sample(query, exclude_index=answer["index"])
        assert excluded["index"] != answer["index"]

    def test_sampler_routing(self, small_set_dataset):
        from repro.spec import EngineSpec

        spec = EngineSpec(
            samplers={
                "fair": CANONICAL_SPECS["permutation"][0],
                "biased": CANONICAL_SPECS["standard_lsh"][0],
            },
            primary="fair",
        )
        nn = FairNN.from_spec(spec).fit(list(small_set_dataset))
        with FairNNServer(nn) as server:
            client = FairNNClient(server.url)
            health = client.healthz()
            assert sorted(health["samplers"]) == ["biased", "fair"]
            assert health["primary"] == "fair"
            routed = client.sample(list(small_set_dataset)[0], sampler="biased")
            assert routed["sampler"] == "biased"
            default = client.sample(list(small_set_dataset)[0])
            assert default["sampler"] == "fair"


# ----------------------------------------------------------------------
# 2. Capacity accounting
# ----------------------------------------------------------------------
class TestCapacityAccounting:
    def test_capacity_tracks_mutations(self, small_set_dataset):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        capacity = CapacityModel(slot_capacity=len(dataset), over_commit_ratio=1.5)
        with FairNNServer(nn, capacity=capacity) as server:
            client = FairNNClient(server.url)
            before = client.capacity()
            assert before["used"]["points"] == len(dataset)
            assert before["total"]["points"] == int(len(dataset) * 1.5)

            inserted = client.insert([frozenset({90001, 90002}), frozenset({90003})])
            after_insert = client.capacity()
            assert after_insert["used"]["points"] == len(dataset) + 2
            assert (
                after_insert["available"]["points"]
                == after_insert["total"]["points"] - after_insert["used"]["points"]
            )

            client.delete(inserted["indices"][0])
            after_delete = client.capacity()
            # a delete tombstones its slot: the slot stays *used* until
            # compaction reclaims it, but live_points drops immediately
            assert after_delete["used"]["points"] == len(dataset) + 2
            assert after_delete["live_points"] == len(dataset) + 1
            assert after_delete["pending_tombstones"] == 1
            assert after_delete["used"]["memory_bytes"] > 0

    def test_insert_beyond_over_commit_is_rejected(self, small_set_dataset):
        dataset = list(small_set_dataset)[:10]
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        capacity = CapacityModel(slot_capacity=10, over_commit_ratio=1.2)  # 12 slots
        with FairNNServer(nn, capacity=capacity) as server:
            client = FairNNClient(server.url)
            client.insert([frozenset({90000 + i}) for i in range(2)])  # to the brim
            with pytest.raises(ServerHTTPError) as excinfo:
                client.insert([frozenset({91000})])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            # the rejected insert must not have leaked into the index
            assert client.capacity()["used"]["points"] == 12
            # tombstoned slots still count against the budget (reclaimed by
            # compaction, not by delete), so a delete does not re-admit
            client.delete(0)
            with pytest.raises(ServerHTTPError) as excinfo:
                client.insert([frozenset({91000})])
            assert excinfo.value.status == 429

    def test_unlimited_model_reports_nulls(self, serving_server):
        _, client = serving_server
        snapshot = client.capacity()
        assert snapshot["total"]["points"] is None
        assert snapshot["available"]["points"] is None
        assert snapshot["used"]["points"] > 0


# ----------------------------------------------------------------------
# 3. Backpressure: quotas and the bounded queue
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_token_bucket_refills_on_injected_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert all(bucket.try_acquire(1.0) is None for _ in range(4))
        retry = bucket.try_acquire(1.0)
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire(1.0) is None

    def test_quota_exhaustion_returns_429_with_retry_after(self, small_set_dataset):
        dataset = list(small_set_dataset)
        clock = FakeClock()
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        capacity = CapacityModel(default_quota=(1.0, 2.0), clock=clock)
        with FairNNServer(nn, capacity=capacity) as server:
            client = FairNNClient(server.url)
            client.sample(dataset[0])
            client.sample(dataset[0])
            with pytest.raises(ServerHTTPError) as excinfo:
                client.sample(dataset[0])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            clock.advance(2.0)  # refill
            assert client.sample(dataset[0])["found"] is not None

    def test_batch_charged_per_query(self, small_set_dataset):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        capacity = CapacityModel(quotas={"default": (1.0, 4.0)}, clock=FakeClock())
        with FairNNServer(nn, capacity=capacity) as server:
            client = FairNNClient(server.url)
            with pytest.raises(ServerHTTPError) as excinfo:
                client.sample_batch(dataset[:5])  # 5 queries > burst of 4
            assert excinfo.value.status == 429
            client.sample_batch(dataset[:4])  # nothing was charged by the reject

    def test_full_queue_returns_429(self, small_set_dataset):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        capacity = CapacityModel(max_inflight=0, retry_after=3.0)
        with FairNNServer(nn, capacity=capacity) as server:
            client = FairNNClient(server.url)
            with pytest.raises(ServerHTTPError) as excinfo:
                client.sample(dataset[0])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 3
            # read-only endpoints stay reachable under saturation
            assert client.healthz()["status"] == "ok"
            assert client.capacity()["queue"]["max_inflight"] == 0

    def test_admission_errors_are_typed(self):
        model = CapacityModel(default_quota=(1.0, 1.0))
        with pytest.raises(QuotaExceededError):
            model.admit_queries("default", 2)
        limited = CapacityModel(slot_capacity=1, over_commit_ratio=1.0)
        with pytest.raises(CapacityExceededError):
            limited.admit_insert(2, {"total_slots": 0, "memory_bytes": 0})


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
class TestErrorMapping:
    def test_mutation_errors_map_to_http_statuses(self, serving_server):
        _, client = serving_server
        with pytest.raises(ServerHTTPError) as excinfo:
            client.delete(10**6)
        assert excinfo.value.status == 404
        client.delete(0)
        with pytest.raises(ServerHTTPError) as excinfo:
            client.delete(0)  # tombstoned
        assert excinfo.value.status == 410

    def test_validation_errors_are_400(self, serving_server, small_set_dataset):
        _, client = serving_server
        for call in (
            lambda: client.sample(list(small_set_dataset)[0], sampler="nope"),
            lambda: client._request("POST", "/v1/sample", {}),
            lambda: client._request("POST", "/v1/sample_batch", {"queries": []}),
            lambda: client._request("POST", "/v1/mutate", {"op": "compact"}),
            lambda: client._request("POST", "/v1/mutate", {"op": "delete", "index": "x"}),
            lambda: client._request(
                "POST", "/v1/sample", {"query": [1, 2], "k": "three"}
            ),
        ):
            with pytest.raises(ServerHTTPError) as excinfo:
                call()
            assert excinfo.value.status == 400

    def test_unknown_route_and_method_are_404(self, serving_server):
        _, client = serving_server
        with pytest.raises(ServerHTTPError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServerHTTPError) as excinfo:
            client._request("GET", "/v1/sample")  # POST-only route
        assert excinfo.value.status == 404

    def test_malformed_json_is_400(self, serving_server):
        server, _ = serving_server
        request = urllib.request.Request(
            f"{server.url}/v1/sample",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unbuilt_facade_is_rejected(self):
        with pytest.raises(NotFittedError):
            FairNNServer(FairNN.from_spec(PERMUTATION_SPEC))


# ----------------------------------------------------------------------
# Stats endpoint
# ----------------------------------------------------------------------
class TestStatsEndpoint:
    def test_stats_counters_advance(self, serving_server, small_set_dataset):
        server, client = serving_server
        dataset = list(small_set_dataset)
        client.sample_batch(dataset[:3])
        stats = client.stats()
        assert stats["generation"] == 1
        entry = stats["samplers"]["default"]
        assert entry["sampler"] == "default"
        assert entry["is_dynamic"] is True
        assert entry["live_points"] == len(dataset)
        assert entry["counters"]["queries_served"] >= 3
        assert entry["counters"]["batches_served"] >= 1
        # the same dict shape FairNN exposes in-process
        assert entry == server.nn.engine("default").stats_dict()


# ----------------------------------------------------------------------
# 4. Hot snapshot swap
# ----------------------------------------------------------------------
class TestGenerationSemantics:
    class _FakeEngine:
        def __init__(self):
            self.closed = False

        def close(self):
            self.closed = True

    class _FakeNN:
        def __init__(self):
            self.engines = {"default": TestGenerationSemantics._FakeEngine()}

    def test_old_generation_drains_before_close(self):
        first, second = self._FakeNN(), self._FakeNN()
        handle = ServingHandle(first)
        context = handle.acquire()  # a request in flight on generation 1
        old = handle.flip(second)
        assert old.retired and old.in_flight == 1
        assert not first.engines["default"].closed  # still serving the request
        context.__exit__(None, None, None)
        assert first.engines["default"].closed  # drained -> closed
        assert not handle.generation.try_enter() is False  # new gen admits

    def test_retired_generation_refuses_entry(self):
        handle = ServingHandle(self._FakeNN())
        old = handle.generation
        handle.flip(self._FakeNN())
        assert old.try_enter() is False
        assert handle.generation.number == 2

    def test_concurrent_swap_is_rejected(self, monkeypatch):
        handle = ServingHandle(self._FakeNN())
        swapper = SnapshotSwapper(handle)
        release = threading.Event()

        def slow_load(directory):
            release.wait(timeout=10)
            raise RuntimeError("load aborted by test")

        swapper._load = slow_load
        swapper.swap("somewhere", wait=False)
        with pytest.raises(SwapInProgressError):
            swapper.swap("elsewhere")
        release.set()


class TestHotSwap:
    def test_swap_to_current_snapshot_completes(self, small_set_dataset, tmp_path):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        nn.save(tmp_path / "snap")
        direct = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        with FairNNServer(nn) as server:
            client = FairNNClient(server.url)
            report = client.swap(str(tmp_path / "snap"))
            assert report["status"] == "completed"
            assert report["generation"] == 2
            assert report["compared_identical"] > 0
            assert client.healthz()["generation"] == 2
            # answers after the flip are byte-identical to an untouched twin
            queries = dataset[:5]
            over_http = client.sample_batch(queries, k=2)
            expected = direct.run([QueryRequest(query=q, k=2) for q in queries])
            for wire, response in zip(over_http["results"], expected):
                assert wire["indices"] == response.indices
                assert wire["value"] == response.value
            assert client.swap_status()["status"] == "completed"

    def test_stale_snapshot_fails_verification(self, small_set_dataset, tmp_path):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        nn.save(tmp_path / "stale")
        novel = frozenset(range(70001, 70011))  # disjoint from every dataset set
        with FairNNServer(nn) as server:
            client = FairNNClient(server.url)
            client.insert([novel])  # the snapshot no longer matches served state
            # probing with the novel point: the serving index finds it, the
            # stale snapshot cannot -> probe verification must veto the flip
            with pytest.raises(ServerHTTPError) as excinfo:
                client.swap(str(tmp_path / "stale"), probes=[novel])
            assert excinfo.value.status == 409
            assert excinfo.value.payload["status"] == "failed"
            assert "SwapVerificationError" in excinfo.value.payload["error"]
            health = client.healthz()  # old index kept serving, mutation intact
            assert health["generation"] == 1
            assert health["live_points"] == len(dataset) + 1
            assert client.sample(novel)["index"] == len(dataset)

    def test_snapshot_root_fences_admin_surface(self, small_set_dataset, tmp_path):
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        nn.save(tmp_path / "outside")
        with FairNNServer(nn, snapshot_root=tmp_path / "allowed") as server:
            client = FairNNClient(server.url)
            with pytest.raises(ServerHTTPError) as excinfo:
                client.swap(str(tmp_path / "outside"))
            assert excinfo.value.status == 400

    def test_swap_under_concurrent_traffic(self, small_set_dataset, tmp_path):
        """The tentpole guarantee: a v3 -> v4 flip under load is invisible.

        Four hammer threads stream ``/v1/sample_batch`` while the main
        thread swaps from the unsharded serving index to a sharded (v4)
        snapshot of the same state.  The sampler is query-deterministic and
        sharded answers are byte-identical to unsharded ones, so *every*
        response — before, during, after the flip — must equal the
        canonical answer; anything dropped, torn, or answered by a
        half-closed engine would show up as a mismatch or an error.
        """
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset)
        sharded_twin = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset, shards=2)
        sharded_twin.save(tmp_path / "v4")
        queries = dataset[:8]
        canonical = FairNN.from_spec(PERMUTATION_SPEC).serve(dataset).run(
            [QueryRequest(query=q, k=2, replacement=False) for q in queries]
        )
        expected = [(r.indices, r.value) for r in canonical]

        with FairNNServer(nn) as server:
            client = FairNNClient(server.url)
            errors, mismatches, completed = [], [], []
            stop = threading.Event()

            def hammer():
                worker = FairNNClient(server.url)
                while not stop.is_set():
                    try:
                        reply = worker.sample_batch(queries, k=2, replacement=False)
                    except Exception as exc:  # noqa: BLE001 - recorded for assertion
                        errors.append(exc)
                        return
                    got = [(r["indices"], r["value"]) for r in reply["results"]]
                    if got != expected:
                        mismatches.append(got)
                        return
                    completed.append(1)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                while len(completed) < 4 and not errors and not mismatches:
                    time.sleep(0.005)  # until traffic is demonstrably flowing
                report = client.swap(str(tmp_path / "v4"))
                assert report["status"] == "completed", report
                # let traffic run on the new generation before stopping
                flipped_floor = len(completed) + 8
                while len(completed) < flipped_floor and not errors and not mismatches:
                    time.sleep(0.005)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)

            assert not errors, errors
            assert not mismatches, mismatches[:1]
            health = client.healthz()
            assert health["generation"] == 2
            assert health["sharded"] is True and health["n_shards"] == 2
            # post-flip: still byte-identical, now answered by shards
            final = client.sample_batch(queries, k=2, replacement=False)
            assert [(r["indices"], r["value"]) for r in final["results"]] == expected

"""Tests for the module-level k-sampling helpers and the sampler base class."""

import pytest

from repro.core import (
    ExactUniformSampler,
    IndependentFairSampler,
    sample_with_replacement,
    sample_without_replacement,
)
from repro.distances import JaccardSimilarity
from repro.exceptions import InvalidParameterError
from repro.lsh import MinHashFamily


@pytest.fixture
def fitted_exact(planted_sets):
    return ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=0).fit(
        planted_sets["dataset"]
    )


@pytest.fixture
def fitted_nnis(planted_sets):
    return IndependentFairSampler(
        MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
        num_hashes=1, num_tables=50, seed=0,
    ).fit(planted_sets["dataset"])


class TestHelpers:
    def test_with_replacement_length(self, fitted_nnis, planted_sets):
        sample = sample_with_replacement(fitted_nnis, planted_sets["query"], 12)
        assert len(sample) == 12
        assert set(sample) <= planted_sets["near_indices"]

    def test_with_replacement_produces_variety_for_independent_sampler(self, fitted_nnis, planted_sets):
        sample = sample_with_replacement(fitted_nnis, planted_sets["query"], 30)
        assert len(set(sample)) >= 2

    def test_without_replacement_distinct(self, fitted_nnis, planted_sets):
        sample = sample_without_replacement(fitted_nnis, planted_sets["query"], 4)
        assert len(sample) == len(set(sample))
        assert set(sample) <= planted_sets["near_indices"]

    def test_without_replacement_exact_sampler(self, fitted_exact, planted_sets):
        sample = sample_without_replacement(fitted_exact, planted_sets["query"], 5)
        assert set(sample) == planted_sets["near_indices"]

    def test_negative_k_rejected(self, fitted_exact, planted_sets):
        with pytest.raises(InvalidParameterError):
            sample_with_replacement(fitted_exact, planted_sets["query"], -1)
        with pytest.raises(InvalidParameterError):
            sample_without_replacement(fitted_exact, planted_sets["query"], -1)

    def test_no_neighbors_gives_empty_sample(self, fitted_exact):
        assert sample_with_replacement(fitted_exact, frozenset({999}), 5) == []


class TestBaseClassBehaviour:
    def test_dataset_property(self, fitted_exact, planted_sets):
        assert fitted_exact.dataset is planted_sets["dataset"]

    def test_generic_sample_k_stops_on_failure(self, fitted_exact):
        assert fitted_exact.sample_k(frozenset({12345}), 3) == []

    def test_query_result_found_property(self, fitted_exact, planted_sets):
        result = fitted_exact.sample_detailed(planted_sets["query"])
        assert result.found is True
        missing = fitted_exact.sample_detailed(frozenset({54321}))
        assert missing.found is False

"""Tests for the Section 4 r-NNIS data structure (independent fair sampling)."""

import numpy as np
import pytest

from repro.core import IndependentFairSampler
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.fairness.metrics import total_variation_from_uniform
from repro.lsh import MinHashFamily


def make_sampler(dataset, radius=0.5, seed=0, num_tables=60, **kwargs):
    return IndependentFairSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=0.05,
        num_hashes=1,
        num_tables=num_tables,
        seed=seed,
        **kwargs,
    ).fit(dataset)


class TestCorrectness:
    def test_returns_near_point(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

    def test_returns_none_without_neighbors(self):
        dataset = [frozenset({400 + i}) for i in range(6)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2})) is None

    def test_not_fitted_raises(self):
        sampler = IndependentFairSampler(MinHashFamily(), radius=0.4, num_hashes=1, num_tables=4)
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_invalid_constants_rejected(self):
        with pytest.raises(InvalidParameterError):
            IndependentFairSampler(MinHashFamily(), radius=0.4, lambda_factor=0.0)
        with pytest.raises(InvalidParameterError):
            IndependentFairSampler(MinHashFamily(), radius=0.4, max_rounds=0)

    def test_colliding_count_estimate_reasonable(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=1)
        estimate = sampler.estimate_colliding_count(planted_sets["query"])
        # The true number of colliding points is at least the neighborhood
        # size (5) and at most the dataset size; the sketch guarantees a
        # 1/2-approximation.
        true_colliding = sampler.tables.query_candidates(planted_sets["query"]).size
        assert 0.4 * true_colliding <= estimate <= 1.8 * true_colliding

    def test_estimate_zero_for_non_colliding_query(self):
        dataset = [frozenset({500 + i, 600 + i}) for i in range(5)]
        sampler = make_sampler(dataset, seed=2)
        assert sampler.estimate_colliding_count(frozenset({1, 2, 3})) == 0.0

    def test_stats_record_rounds(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=3)
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.found
        assert result.stats.rounds >= 1

    def test_sketches_built_only_for_large_buckets(self, small_set_dataset):
        sampler = IndependentFairSampler(
            MinHashFamily(), radius=0.3, far_radius=0.1, num_hashes=1, num_tables=20,
            sketch_min_bucket=8, seed=4,
        ).fit(small_set_dataset)
        for table, sketches in zip(sampler.tables._tables, sampler._bucket_sketches):
            for key, bucket in table.items():
                if len(bucket) >= 8:
                    assert key in sketches
                else:
                    assert key not in sketches


class TestUniformityAndIndependence:
    def test_repeated_query_output_is_uniform(self, planted_sets):
        """Theorem 2: repeated queries on a single structure are uniform draws."""
        sampler = make_sampler(planted_sets["dataset"], seed=5)
        counts = {i: 0 for i in planted_sets["near_indices"]}
        repetitions = 2000
        failures = 0
        for _ in range(repetitions):
            index = sampler.sample(planted_sets["query"])
            if index is None:
                failures += 1
            else:
                counts[index] += 1
        assert failures < 0.02 * repetitions
        assert total_variation_from_uniform(list(counts.values())) < 0.1
        assert min(counts.values()) > 0.4 * (repetitions - failures) / len(counts)

    def test_consecutive_outputs_look_independent(self, planted_sets):
        """The repeat probability of consecutive outputs matches 1/b(q, r)."""
        sampler = make_sampler(planted_sets["dataset"], seed=6)
        outputs = [sampler.sample(planted_sets["query"]) for _ in range(800)]
        repeats = sum(a == b for a, b in zip(outputs, outputs[1:]))
        rate = repeats / (len(outputs) - 1)
        # For 5 equally likely outcomes the repeat rate should be ~0.2.
        assert 0.1 < rate < 0.32

    def test_different_queries_are_answered(self, small_set_dataset, jaccard):
        sampler = IndependentFairSampler(
            MinHashFamily(), radius=0.2, far_radius=0.1, recall=0.95, seed=7
        ).fit(small_set_dataset)
        answered = 0
        with_neighbors = 0
        for query in small_set_dataset[:20]:
            values = jaccard.values_to_query(small_set_dataset, query)
            if np.sum(values >= 0.2) > 0:
                with_neighbors += 1
                if sampler.sample(query) is not None:
                    answered += 1
        assert answered >= 0.85 * with_neighbors

    def test_uniformity_holds_with_small_lambda(self, planted_sets):
        """Even with an aggressive (small) lambda the output stays uniform."""
        sampler = make_sampler(planted_sets["dataset"], seed=8, lambda_factor=0.5)
        counts = {i: 0 for i in planted_sets["near_indices"]}
        for _ in range(1200):
            index = sampler.sample(planted_sets["query"])
            if index is not None:
                counts[index] += 1
        assert total_variation_from_uniform(list(counts.values())) < 0.12


class TestQueryCostShape:
    def test_cost_scales_with_candidate_load_not_neighborhood(self, planted_sets):
        """The number of distance evaluations per query stays far below n."""
        sampler = make_sampler(planted_sets["dataset"], seed=9)
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.stats.distance_evaluations <= len(planted_sets["dataset"])

    def test_view_cache_reused_across_repetitions(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=10)
        sampler.sample(planted_sets["query"])
        assert len(sampler._view_cache) == 1
        sampler.sample(planted_sets["query"])
        assert len(sampler._view_cache) == 1

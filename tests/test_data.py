"""Tests for the dataset generators (vectors, sets, adversarial instance, queries, MF)."""

import numpy as np
import pytest

from repro.data import (
    clustered_neighborhood_instance,
    factorize,
    gaussian_clusters,
    generate_lastfm_like,
    generate_movielens_like,
    generate_ratings,
    generate_set_dataset,
    planted_inner_product_neighborhood,
    planted_neighborhood,
    random_unit_vectors,
    select_interesting_queries,
)
from repro.data.sets import LASTFM_SPEC, MOVIELENS_SPEC, SetDatasetSpec
from repro.distances import EuclideanDistance, InnerProductSimilarity, JaccardSimilarity
from repro.exceptions import InvalidParameterError


class TestSyntheticVectors:
    def test_unit_vectors_have_unit_norm(self):
        points = random_unit_vectors(50, 8, seed=0)
        np.testing.assert_allclose(np.linalg.norm(points, axis=1), np.ones(50))

    def test_unit_vectors_invalid_args(self):
        with pytest.raises(InvalidParameterError):
            random_unit_vectors(0, 5)

    def test_gaussian_clusters_shapes(self):
        points, labels = gaussian_clusters(100, 4, num_clusters=3, seed=1)
        assert points.shape == (100, 4)
        assert labels.shape == (100,)
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_gaussian_clusters_invalid(self):
        with pytest.raises(InvalidParameterError):
            gaussian_clusters(10, 3, num_clusters=0)

    def test_planted_neighborhood_distances(self):
        points, query, neighbors = planted_neighborhood(
            n_background=50, n_neighbors=10, dim=6, radius=1.0, seed=2
        )
        measure = EuclideanDistance()
        values = measure.values_to_query(points, query)
        assert np.all(values[neighbors] <= 1.0 + 1e-9)
        background = np.setdiff1d(np.arange(len(points)), neighbors)
        assert np.all(values[background] > 1.0)

    def test_planted_neighborhood_invalid_radius(self):
        with pytest.raises(InvalidParameterError):
            planted_neighborhood(10, 5, 3, radius=0.0)

    def test_planted_neighborhood_background_must_be_farther(self):
        with pytest.raises(InvalidParameterError):
            planted_neighborhood(10, 5, 3, radius=2.0, background_distance=1.0)

    def test_planted_inner_product_neighborhood(self):
        points, query, neighbors = planted_inner_product_neighborhood(
            n_background=80, n_neighbors=8, dim=10, alpha=0.7, beta_max=0.2, seed=3
        )
        measure = InnerProductSimilarity()
        values = measure.values_to_query(points, query)
        assert np.all(values[neighbors] >= 0.7 - 1e-9)
        background = np.setdiff1d(np.arange(len(points)), neighbors)
        assert np.all(values[background] <= 0.2 + 1e-9)
        # Points live on (or very near) the unit sphere.
        np.testing.assert_allclose(np.linalg.norm(points, axis=1), 1.0, atol=1e-6)

    def test_planted_inner_product_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            planted_inner_product_neighborhood(10, 5, 4, alpha=1.5)


class TestSetDatasets:
    def test_lastfm_like_shape(self):
        users = generate_lastfm_like(num_users=150, seed=0)
        assert len(users) == 150
        sizes = np.array([len(u) for u in users])
        # Last.FM sets are top-20 lists: nearly constant size around 20.
        assert 15 <= sizes.mean() <= 25
        assert sizes.std() < 5

    def test_movielens_like_shape(self):
        users = generate_movielens_like(num_users=150, seed=0)
        sizes = np.array([len(u) for u in users])
        # MovieLens sets are heavy-tailed with a large mean.
        assert sizes.mean() > 50
        assert sizes.std() > 20

    def test_items_within_universe(self):
        users = generate_lastfm_like(num_users=50, seed=1)
        max_item = max(max(u) for u in users if u)
        assert max_item < LASTFM_SPEC.num_items

    def test_deterministic_with_seed(self):
        a = generate_lastfm_like(num_users=40, seed=7)
        b = generate_lastfm_like(num_users=40, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_lastfm_like(num_users=40, seed=7)
        b = generate_lastfm_like(num_users=40, seed=8)
        assert a != b

    def test_interesting_users_exist(self):
        """The query-selection precondition: dense Jaccard neighborhoods exist."""
        users = generate_lastfm_like(num_users=200, seed=2)
        measure = JaccardSimilarity()
        counts = []
        for index in range(0, 200, 10):
            values = measure.values_to_query(users, users[index])
            counts.append(int(np.sum(values >= 0.2)) - 1)
        assert max(counts) >= 10

    def test_spec_validation(self):
        bad = SetDatasetSpec(
            num_users=0, num_items=10, mean_set_size=3, set_size_sigma=0.0,
            num_communities=1, community_pool_size=5, within_community_fraction=0.5,
        )
        with pytest.raises(InvalidParameterError):
            generate_set_dataset(bad, seed=0)

    def test_full_scale_specs_match_paper_statistics(self):
        assert MOVIELENS_SPEC.num_users == 2112
        assert MOVIELENS_SPEC.num_items == 65536
        assert LASTFM_SPEC.num_users == 1892
        assert LASTFM_SPEC.num_items == 18739
        assert LASTFM_SPEC.mean_set_size == pytest.approx(19.8)


class TestAdversarialInstance:
    def test_landmark_similarities_match_paper(self):
        instance = clustered_neighborhood_instance()
        measure = JaccardSimilarity()
        assert measure.value(instance.dataset[instance.index_z], instance.query) == pytest.approx(0.9)
        assert measure.value(instance.dataset[instance.index_y], instance.query) == pytest.approx(0.6)
        assert measure.value(instance.dataset[instance.index_x], instance.query) == pytest.approx(0.5)

    def test_cluster_size_with_default_threshold(self):
        # sum_{k=15}^{17} C(18, k) = 816 + 153 + 18 = 987... computed exactly below.
        from math import comb

        instance = clustered_neighborhood_instance(min_subset_size=15)
        expected = sum(comb(18, k) for k in range(15, 18))
        assert len(instance.cluster_indices) == expected

    def test_cluster_similarities_in_expected_band(self):
        instance = clustered_neighborhood_instance(min_subset_size=16)
        measure = JaccardSimilarity()
        for index in instance.cluster_indices:
            similarity = measure.value(instance.dataset[index], instance.query)
            assert 0.5 <= similarity <= 0.57

    def test_cluster_members_are_subsets_of_y(self):
        instance = clustered_neighborhood_instance(min_subset_size=16)
        y = instance.dataset[instance.index_y]
        for index in instance.cluster_indices:
            assert instance.dataset[index] < y

    def test_smaller_instance_with_higher_threshold(self):
        small = clustered_neighborhood_instance(min_subset_size=17)
        assert len(small.cluster_indices) == 18


class TestQuerySelection:
    def test_selected_queries_are_interesting(self, small_set_dataset, jaccard):
        queries = select_interesting_queries(
            small_set_dataset, jaccard, num_queries=5, min_neighbors=5, threshold=0.2, seed=0
        )
        for index in queries:
            values = jaccard.values_to_query(small_set_dataset, small_set_dataset[index])
            assert int(np.sum(values >= 0.2)) - 1 >= 5

    def test_returns_requested_number_when_available(self, small_set_dataset, jaccard):
        queries = select_interesting_queries(
            small_set_dataset, jaccard, num_queries=3, min_neighbors=1, threshold=0.1, seed=1
        )
        assert len(queries) == 3
        assert len(set(queries)) == 3

    def test_fallback_when_no_interesting_users(self):
        dataset = [frozenset({i}) for i in range(20)]  # all disjoint
        queries = select_interesting_queries(
            dataset, JaccardSimilarity(), num_queries=4, min_neighbors=5, threshold=0.5, seed=2
        )
        assert 1 <= len(queries) <= 4

    def test_empty_dataset_rejected(self):
        with pytest.raises(InvalidParameterError):
            select_interesting_queries([], JaccardSimilarity(), num_queries=1)


class TestMatrixFactorization:
    def test_generate_ratings_shape_and_density(self):
        ratings = generate_ratings(30, 40, density=0.2, seed=0)
        assert ratings.shape == (30, 40)
        observed = ~np.isnan(ratings)
        assert 0.1 <= observed.mean() <= 0.3

    def test_factorize_reduces_error(self):
        ratings = generate_ratings(25, 30, rank=4, density=0.4, noise=0.05, seed=1)
        observed = ~np.isnan(ratings)
        model = factorize(ratings, rank=4, iterations=8, seed=2)
        predictions = model.user_factors @ model.item_factors.T
        rmse = np.sqrt(np.nanmean((ratings - np.where(observed, predictions, np.nan)) ** 2))
        baseline = np.sqrt(np.nanmean(ratings**2))
        assert rmse < baseline

    def test_predict_and_scores(self):
        ratings = generate_ratings(10, 12, rank=3, density=0.5, seed=3)
        model = factorize(ratings, rank=3, iterations=3, seed=4)
        scores = model.scores_for_user(0)
        assert scores.shape == (12,)
        assert model.predict(0, 5) == pytest.approx(scores[5])

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_ratings(0, 5)
        with pytest.raises(InvalidParameterError):
            factorize(np.zeros((3, 3)), rank=0)
        with pytest.raises(InvalidParameterError):
            generate_ratings(5, 5, density=0.0)

"""Tests for the collect-all "fair LSH" baseline of Section 6."""

import pytest

from repro.core import CollectAllFairSampler
from repro.exceptions import NotFittedError
from repro.fairness.metrics import total_variation_from_uniform
from repro.lsh import MinHashFamily


def make_sampler(dataset, radius=0.5, seed=0):
    return CollectAllFairSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=0.05,
        num_hashes=1,
        num_tables=60,
        seed=seed,
    ).fit(dataset)


class TestCorrectness:
    def test_returns_near_point(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

    def test_returns_none_without_neighbors(self):
        dataset = [frozenset({200 + i}) for i in range(6)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2})) is None

    def test_not_fitted_raises(self):
        sampler = CollectAllFairSampler(MinHashFamily(), radius=0.4, num_hashes=1, num_tables=4)
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_collected_neighborhood_matches_ground_truth(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        collected = set(sampler.collect_neighborhood(planted_sets["query"]).tolist())
        # With 60 tables and collision probability >= 0.7 per table, the whole
        # neighborhood is collected with overwhelming probability.
        assert collected == planted_sets["near_indices"]

    def test_stats_report_work(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.stats.distance_evaluations >= len(planted_sets["near_indices"])


class TestUniformity:
    def test_repeated_queries_are_uniform(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=1)
        counts = {i: 0 for i in planted_sets["near_indices"]}
        repetitions = 2500
        for _ in range(repetitions):
            counts[sampler.sample(planted_sets["query"])] += 1
        assert total_variation_from_uniform(list(counts.values())) < 0.08

    def test_all_neighbors_reachable(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=2)
        seen = {sampler.sample(planted_sets["query"]) for _ in range(300)}
        assert seen == planted_sets["near_indices"]

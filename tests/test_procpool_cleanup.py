"""Shared-memory and worker lifecycle hygiene of the process executor.

Every path out of a :class:`~repro.engine.procpool.ProcessShardedEngine`
must leave the host clean: ``close()``, a worker crash followed by close,
and plain interpreter exit without ``close()`` (the ``weakref.finalize``
safety net) all unlink the ``multiprocessing.shared_memory`` segments and
reap every worker process.  The subprocess cases run under ``-W error`` so
a ``resource_tracker`` "leaked shared_memory objects" complaint — emitted
as a warning at interpreter shutdown — fails the test instead of scrolling
past, and the parent additionally diffs ``/dev/shm`` around the child.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.engine.procpool import FaultPlan, ProcessShardedEngine
from repro.exceptions import WorkerCrashedError

from test_sharded import _make_sampler, _workload

_SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])
_SHM_DIR = pathlib.Path("/dev/shm")


def _shm_segments():
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {name for name in os.listdir(_SHM_DIR) if name.startswith("psm_")}


def _run_child(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.run(
        [sys.executable, "-W", "error", "-c", textwrap.dedent(script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )


_CHILD_PRELUDE = """
    import multiprocessing
    import numpy as np
    from repro.engine.procpool import FaultPlan, ProcessShardedEngine
    from repro.exceptions import WorkerCrashedError
    from repro.spec import LSHSpec, SamplerSpec

    rng = np.random.default_rng(7)
    dataset = [
        frozenset(int(x) for x in rng.choice(300, size=rng.integers(6, 18)))
        for _ in range(80)
    ]
    sampler = SamplerSpec(
        "permutation",
        {"radius": 0.35, "far_radius": 0.1, "num_hashes": 2, "num_tables": 8},
        lsh=LSHSpec("minhash"),
        seed=7,
    ).build()
    engine = ProcessShardedEngine.build(sampler, dataset, n_shards=2)
    engine.run(dataset[:4])
"""


class TestCloseReleasesEverything:
    def test_close_unlinks_segments_and_reaps_workers(self):
        rng = np.random.default_rng(50)
        dataset, queries, _, _ = _workload(rng, n=80)
        before = _shm_segments()
        engine = ProcessShardedEngine.build(
            _make_sampler("permutation"), dataset, n_shards=2
        )
        engine.run(queries[:4])
        pids = [pid for pid in engine.supervisor.worker_pids() if pid is not None]
        assert len(pids) == 2
        assert _shm_segments() - before  # the export is live while serving
        engine.close()
        assert _shm_segments() - before == set()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # reaped, not just signalled
        assert engine.supervisor.worker_pids() == [None, None]

    def test_close_after_crash_is_still_clean(self):
        rng = np.random.default_rng(51)
        dataset, queries, _, _ = _workload(rng, n=80)
        before = _shm_segments()
        engine = ProcessShardedEngine.build(
            _make_sampler("permutation"), dataset, n_shards=2
        )
        engine.inject_fault(FaultPlan(shard_index=0, kill_after_queries=1))
        with pytest.raises(WorkerCrashedError):
            engine.run(queries[:4])
        engine.run(queries[:4])  # restarted fleet serves
        engine.close()
        assert _shm_segments() - before == set()
        assert engine.supervisor.worker_pids() == [None, None]

    def test_facade_close_reaps_process_workers(self):
        """FairNN.close() is the public boundary's deterministic release."""
        rng = np.random.default_rng(52)
        dataset, queries, _, _ = _workload(rng, n=80)
        before = _shm_segments()
        spec = repro.SamplerSpec(
            "permutation",
            {"radius": 0.35, "far_radius": 0.1, "num_hashes": 2, "num_tables": 8},
            lsh=repro.LSHSpec("minhash"),
            seed=7,
        )
        nn = repro.FairNN.from_spec(spec).serve(dataset, shards=2, executor="process")
        nn.run(queries[:4])
        engine = next(iter(nn.engines.values()))
        pids = [pid for pid in engine.supervisor.worker_pids() if pid is not None]
        assert len(pids) == 2
        nn.close()
        nn.close()  # idempotent
        assert _shm_segments() - before == set()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert engine.supervisor.worker_pids() == [None, None]


class TestSubprocessLifecycles:
    def test_clean_close_emits_no_warnings_under_w_error(self):
        before = _shm_segments()
        result = _run_child(
            _CHILD_PRELUDE
            + """
    engine.close()
    assert multiprocessing.active_children() == [], multiprocessing.active_children()
    print("CLEAN")
"""
        )
        assert result.returncode == 0, result.stderr
        assert "CLEAN" in result.stdout
        assert result.stderr == ""
        assert _shm_segments() - before == set()

    def test_interpreter_exit_without_close_is_clean(self):
        # The weakref.finalize safety net must reap workers and unlink the
        # segments even when close() is never called.
        before = _shm_segments()
        result = _run_child(
            _CHILD_PRELUDE
            + """
    print("EXITING", flush=True)
"""
        )
        assert result.returncode == 0, result.stderr
        assert "EXITING" in result.stdout
        assert result.stderr == ""
        assert _shm_segments() - before == set()

    def test_exit_after_crash_recovery_is_clean(self):
        before = _shm_segments()
        result = _run_child(
            _CHILD_PRELUDE
            + """
    engine.inject_fault(FaultPlan(shard_index=1, kill_after_queries=1))
    try:
        engine.run(dataset[:4])
        raise SystemExit("expected WorkerCrashedError")
    except WorkerCrashedError:
        pass
    engine.run(dataset[:4])
    print("RECOVERED", flush=True)
"""
        )
        assert result.returncode == 0, result.stderr
        assert "RECOVERED" in result.stdout
        assert result.stderr == ""
        assert _shm_segments() - before == set()

    def test_engine_killed_by_signal_leaves_no_workers(self):
        # Even a SIGKILLed parent cannot leak workers: they exit on socket
        # EOF.  The shm segment is unlinked by the resource tracker (the one
        # cleanup os.kill can't skip), so /dev/shm converges too.
        before = _shm_segments()
        result = _run_child(
            _CHILD_PRELUDE
            + """
    import os, sys
    pids = [pid for pid in engine.supervisor.worker_pids() if pid is not None]
    print(" ".join(str(pid) for pid in pids), flush=True)
    sys.stdout.flush()
    os.kill(os.getpid(), __import__("signal").SIGKILL)
"""
        )
        assert result.returncode == -signal.SIGKILL
        pids = [int(token) for token in result.stdout.split()]
        assert len(pids) == 2
        deadline = 50
        import time

        for pid in pids:
            for _ in range(deadline):
                try:
                    os.kill(pid, 0)
                except OSError:
                    break
                time.sleep(0.1)
            else:  # pragma: no cover - the leak this test exists to catch
                pytest.fail(f"worker {pid} outlived its killed parent")
        for _ in range(deadline):
            if _shm_segments() - before == set():
                break
            time.sleep(0.1)
        assert _shm_segments() - before == set()

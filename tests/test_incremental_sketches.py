"""Incremental sketch maintenance over dynamic tables (the PR-2 tentpole).

The Section 4 sampler's per-bucket count-distinct sketches used to be rebuilt
from scratch on every mutation batch.  They are now maintained from the
:class:`~repro.engine.dynamic.MutationDelta` the dynamic table layer records:
inserts merge into the affected sketches, deletions trigger targeted
per-bucket rebuilds.  The load-bearing test here is the equivalence property:
across randomized insert/delete/compaction schedules, the incrementally
maintained sketches must be *exactly* the sketches a full rebuild over the
live bucket members would produce (same hash functions, so same bottom-t
rows — not merely close estimates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndependentFairSampler
from repro.engine import BatchQueryEngine, DynamicLSHTables, MutationDelta, load_engine, save_engine
from repro.lsh import MinHashFamily


def build_engine(dataset, seed=0, num_tables=8, sketch_min_bucket=4):
    sampler = IndependentFairSampler(
        MinHashFamily(),
        radius=0.5,
        far_radius=0.05,
        num_hashes=1,
        num_tables=num_tables,
        sketch_min_bucket=sketch_min_bucket,
        seed=seed,
    )
    return BatchQueryEngine.build(sampler, dataset, seed=seed)


def random_sets(rng, count, universe=60, low=3, high=10):
    return [
        frozenset(int(x) for x in rng.integers(0, universe, size=rng.integers(low, high)))
        for _ in range(count)
    ]


def assert_sketches_match_full_rebuild(engine):
    """The exact-equivalence invariant.

    For every table and bucket key: a sketch is stored iff the bucket's
    *live* membership reaches ``sketch_min_bucket``, and the stored bottom-t
    rows equal those of a fresh sketch over the live members built with the
    sampler's own (shared) hash functions.
    """
    sampler = engine.sampler
    tables = sampler.tables
    alive = tables.alive
    for table_index, table in enumerate(tables._tables):
        sketches = sampler._bucket_sketches[table_index]
        expected_keys = set()
        for key, bucket in table.items():
            live = bucket.indices[alive[bucket.indices]]
            if live.size >= sampler.sketch_min_bucket:
                expected_keys.add(key)
                fresh = sampler._sketcher.sketch_keys(int(i) for i in live)
                assert sketches[key]._rows == fresh._rows, (table_index, key)
        assert set(sketches) == expected_keys, table_index


class TestEquivalenceProperty:
    @pytest.mark.parametrize("schedule_seed", [0, 1, 2, 3])
    def test_random_schedules_match_full_rebuild_exactly(self, schedule_seed):
        """Property test: across randomized insert/delete/compaction
        schedules, incremental maintenance and a from-scratch rebuild over
        the live members agree sketch-row for sketch-row."""
        rng = np.random.default_rng(100 + schedule_seed)
        engine = build_engine(random_sets(rng, 40), seed=schedule_seed)
        tables = engine.tables
        assert_sketches_match_full_rebuild(engine)

        for _ in range(12):
            operation = rng.integers(0, 4)
            if operation == 0:
                engine.insert_many(random_sets(rng, int(rng.integers(1, 6))))
            elif operation == 1:
                live = np.flatnonzero(tables.alive)
                doomed = rng.choice(live, size=min(3, live.size - 5), replace=False)
                for index in doomed:
                    engine.delete(int(index))
            elif operation == 2:
                # Mixed batch: deletes and inserts coalesced into one sync.
                live = np.flatnonzero(tables.alive)
                engine.delete(int(rng.choice(live)))
                engine.insert_many(random_sets(rng, 2))
            else:
                # Direct compaction between syncs; the swept keys ride the
                # delta as compaction events.
                tables.compact()
                engine._tables_dirty = True
            engine._sync()
            assert_sketches_match_full_rebuild(engine)

    def test_estimates_match_freshly_rebuilt_sampler(self):
        """End to end: after churn, the served colliding-count estimates
        equal those of sketches rebuilt from scratch over the live members."""
        rng = np.random.default_rng(7)
        dataset = random_sets(rng, 50)
        engine = build_engine(dataset, seed=9)
        engine.insert_many(random_sets(rng, 10))
        for index in [1, 4, 8, 15, 23]:
            engine.delete(index)
        engine._sync()
        queries = dataset[:10] + random_sets(rng, 3)
        maintained = [engine.sampler.estimate_colliding_count(q) for q in queries]
        # Force the full-rebuild path over the same sketcher state: refresh
        # every bucket's sketch from its live members.
        sampler = engine.sampler
        for table_index, table in enumerate(sampler.tables._tables):
            for key in list(table):
                sampler._refresh_bucket_sketch(
                    table, sampler._bucket_sketches[table_index], key
                )
        sampler._estimate_cache.clear()
        rebuilt = [sampler.estimate_colliding_count(q) for q in queries]
        assert maintained == rebuilt


class TestIncrementalBehaviour:
    def test_insert_only_batch_merges_instead_of_rebuilding(self):
        """Insert-only churn must leave untouched buckets' sketches alone
        (same objects — no full rebuild) and keep the sketcher (and so the
        hash functions) stable."""
        rng = np.random.default_rng(11)
        engine = build_engine(random_sets(rng, 60), seed=13)
        sampler = engine.sampler
        sketcher_before = sampler._sketcher
        before = [dict(table_sketches) for table_sketches in sampler._bucket_sketches]

        inserted = engine.insert_many(random_sets(rng, 5))
        engine._sync()

        assert sampler._sketcher is sketcher_before
        touched = untouched = 0
        for table_index, table in enumerate(sampler.tables._tables):
            for key, sketch in sampler._bucket_sketches[table_index].items():
                old = before[table_index].get(key)
                if old is None:
                    continue
                members = set(table[key].indices.tolist())
                if members & set(inserted):
                    touched += 1
                else:
                    untouched += 1
                    assert sketch is old  # untouched bucket: sketch not rebuilt
        assert untouched > 0
        assert_sketches_match_full_rebuild(engine)

    def test_sketcher_resized_when_index_outgrows_universe(self):
        """Regression: unbounded insert-only growth must eventually re-draw
        the sketcher — hashing ever-larger slot indices into the fit-time
        range would make the sketches under-count via hash collisions."""
        rng = np.random.default_rng(19)
        engine = build_engine(random_sets(rng, 20), seed=16)
        sampler = engine.sampler
        small_sketcher = sampler._sketcher
        assert small_sketcher.universe_size == 20

        engine.insert_many(random_sets(rng, 30))  # 50 slots: within headroom
        engine._sync()
        assert sampler._sketcher is small_sketcher

        engine.insert_many(random_sets(rng, 61))  # 111 slots: > 4 * 20
        engine._sync()
        assert sampler._sketcher is not small_sketcher
        assert sampler._sketcher.universe_size == 111
        assert_sketches_match_full_rebuild(engine)

    def test_legacy_sketcher_without_universe_size_triggers_rebuild(self):
        """Regression: sketchers unpickled from pre-v2 snapshots lack the
        ``universe_size`` attribute; the incremental path must route them
        into a full rebuild instead of raising AttributeError."""
        rng = np.random.default_rng(43)
        engine = build_engine(random_sets(rng, 30), seed=45)
        sampler = engine.sampler
        legacy = sampler._sketcher
        del legacy.universe_size
        engine.insert_many(random_sets(rng, 2))
        engine._sync()  # must not raise
        assert sampler._sketcher is not legacy
        assert sampler._sketcher.universe_size == engine.tables.num_points
        assert_sketches_match_full_rebuild(engine)

    def test_second_attached_sampler_rebuilds_after_missed_delta(self):
        """Regression: with two samplers on one table set, the consumer that
        misses the (single-drain) delta must detect the epoch mismatch and
        rebuild rather than silently keep pre-mutation sketches."""
        rng = np.random.default_rng(47)
        dataset = random_sets(rng, 40)
        tables = DynamicLSHTables(MinHashFamily(), l=8, seed=49).fit(dataset)

        def attach_fresh(seed):
            sampler = IndependentFairSampler(
                MinHashFamily(),
                radius=0.5,
                far_radius=0.05,
                num_hashes=1,
                num_tables=8,
                sketch_min_bucket=4,
                seed=seed,
            )
            return sampler.attach(tables, tables.dataset)

        first, second = attach_fresh(1), attach_fresh(2)
        tables.insert_many(random_sets(rng, 6))
        tables.delete(3)
        first.notify_update()   # takes the batch-1 record
        tables.insert_many(random_sets(rng, 5))
        tables.delete(7)
        # B drains a NON-empty delta, but it only covers batch 2 — the
        # start-epoch gap must force a full rebuild, not a partial merge.
        second.notify_update()
        # A's record, in turn, went to B; A must detect its own gap too.
        first.notify_update()
        for sampler in (first, second):
            for table_index, table in enumerate(tables._tables):
                sketches = sampler._bucket_sketches[table_index]
                for key, bucket in table.items():
                    live = bucket.indices[tables.alive[bucket.indices]]
                    if live.size >= sampler.sketch_min_bucket:
                        fresh = sampler._sketcher.sketch_keys(int(i) for i in live)
                        assert sketches[key]._rows == fresh._rows

    def test_drainless_churn_overflows_delta_and_bounds_memory(self):
        """Regression: standalone tables (no consumer ever draining) must not
        accumulate an unbounded mutation record or pin deleted points."""
        rng = np.random.default_rng(53)
        tables = DynamicLSHTables(MinHashFamily(), l=4, seed=51).fit(random_sets(rng, 40))
        sampler = IndependentFairSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1,
            num_tables=4, sketch_min_bucket=4, seed=55,
        ).attach(tables, tables.dataset)
        for round_index in range(60):
            new = tables.insert_many(random_sets(rng, 12))
            for index in new[:11]:
                tables.delete(index)
        delta = tables.peek_delta()
        assert delta.overflowed
        assert len(delta.inserted) + len(delta.deleted) <= 2 * tables.num_live + 1024
        assert len(tables._unresolved_deletes) <= 2 * tables.num_live + 1024
        # The attached sampler consuming the overflowed record must rebuild.
        sketcher = sampler._sketcher
        sampler.notify_update()
        assert sampler._sketcher is not sketcher  # overflow forced a rebuild
        # The rebuild re-anchored the sampler (discarding the compaction
        # residue it caused): the next small batch is incremental again.
        tables.insert(frozenset({4, 5, 6}))
        sketcher = sampler._sketcher
        sampler.notify_update()
        assert sampler._sketcher is sketcher

    def test_attach_discards_stale_record_and_stays_incremental(self):
        """attach() rebuilds from the live tables, so a pre-existing
        undrained record is redundant: it must be discarded (not trigger a
        second full rebuild on the first sync)."""
        rng = np.random.default_rng(59)
        tables = DynamicLSHTables(MinHashFamily(), l=6, seed=57).fit(random_sets(rng, 40))
        tables.insert_many(random_sets(rng, 5))
        tables.delete(2)
        assert not tables.peek_delta().is_empty
        sampler = IndependentFairSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1,
            num_tables=6, sketch_min_bucket=4, seed=61,
        ).attach(tables, tables.dataset)
        assert tables.peek_delta().is_empty
        tables.insert_many(random_sets(rng, 3))
        sketcher = sampler._sketcher
        sampler.notify_update()
        assert sampler._sketcher is sketcher  # first sync stayed incremental

    def test_empty_delta_sync_is_a_no_op(self):
        rng = np.random.default_rng(12)
        engine = build_engine(random_sets(rng, 40), seed=14)
        sampler = engine.sampler
        before = [dict(s) for s in sampler._bucket_sketches]
        engine._tables_dirty = True
        engine._sync()
        for table_index, table_sketches in enumerate(sampler._bucket_sketches):
            assert table_sketches == before[table_index]

    def test_delta_is_drained_once(self):
        rng = np.random.default_rng(13)
        engine = build_engine(random_sets(rng, 30), seed=15)
        tables = engine.tables
        tables.insert(frozenset({1, 2, 3}))
        delta = tables.drain_delta()
        assert not delta.is_empty
        assert tables.drain_delta().is_empty

    def test_stale_sketch_dropped_when_bucket_shrinks_below_cutoff(self):
        """Regression: a bucket that shrinks below ``sketch_min_bucket``
        after deletions must lose its stored sketch — keeping it would
        over-count the emptied bucket forever."""
        rng = np.random.default_rng(17)
        marker = frozenset(range(9001, 9009))  # far from the random universe
        dataset = random_sets(rng, 30) + [marker] * 6
        engine = build_engine(dataset, seed=19, sketch_min_bucket=4)
        sampler = engine.sampler
        keys = sampler.tables.query_keys(marker)
        sketched_tables = [
            t for t, key in enumerate(keys) if key in sampler._bucket_sketches[t]
        ]
        assert sketched_tables  # the 6-copy bucket is sketched somewhere

        for index in [30, 31, 32, 33]:  # shrink the marker bucket to 2 live
            engine.delete(index)
        engine._sync()

        for t, key in enumerate(keys):
            assert key not in sampler._bucket_sketches[t]
        # The exact small-bucket path now answers: two live colliding copies.
        assert sampler.estimate_colliding_count(marker) == 2.0
        assert_sketches_match_full_rebuild(engine)

    def test_attach_with_pending_tombstones_excludes_dead_members(self):
        """Regression: attaching a fresh sampler to churned tables whose
        delta was already drained (so no future batch will name the dead
        buckets) must not bake tombstoned members into the initial
        sketches."""
        rng = np.random.default_rng(31)
        marker = frozenset(range(9001, 9009))
        dataset = random_sets(rng, 30) + [marker] * 6
        tables = DynamicLSHTables(
            MinHashFamily(), l=8, seed=33, max_tombstone_fraction=0.9
        ).fit(dataset)
        for index in [30, 31, 32, 33]:
            tables.delete(index)
        tables.drain_delta()  # a previous consumer already took the record

        sampler = IndependentFairSampler(
            MinHashFamily(),
            radius=0.5,
            far_radius=0.05,
            num_hashes=1,
            num_tables=8,
            sketch_min_bucket=4,
            seed=33,
        )
        sampler.attach(tables, tables.dataset)
        assert sampler.estimate_colliding_count(marker) == 2.0
        for table_index, sketches in enumerate(sampler._bucket_sketches):
            for key, sketch in sketches.items():
                live = tables._tables[table_index][key].indices
                live = live[tables.alive[live]]
                fresh = sampler._sketcher.sketch_keys(int(i) for i in live)
                assert sketch._rows == fresh._rows

    def test_bucket_promoted_when_inserts_cross_cutoff(self):
        rng = np.random.default_rng(18)
        marker = frozenset(range(9001, 9009))
        dataset = random_sets(rng, 30) + [marker] * 2
        engine = build_engine(dataset, seed=21, sketch_min_bucket=4)
        sampler = engine.sampler
        keys = sampler.tables.query_keys(marker)
        assert all(key not in sampler._bucket_sketches[t] for t, key in enumerate(keys))

        engine.insert_many([marker] * 3)
        engine._sync()

        assert any(key in sampler._bucket_sketches[t] for t, key in enumerate(keys))
        assert sampler.estimate_colliding_count(marker) == 5.0
        assert_sketches_match_full_rebuild(engine)


class TestDeltaRoundTrip:
    def test_unconsumed_delta_survives_snapshot(self, tmp_path):
        """Mutating the tables *directly* (bypassing the engine) leaves an
        unconsumed delta; a snapshot must carry it so the restored sampler's
        first sync still sees exactly what changed."""
        rng = np.random.default_rng(23)
        engine = build_engine(random_sets(rng, 40), seed=25)
        tables = engine.tables
        tables.insert_many(random_sets(rng, 4))
        tables.delete(2)
        assert not tables.peek_delta().is_empty

        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        loaded_delta = loaded.tables.peek_delta()
        assert loaded_delta.inserted == tables.peek_delta().inserted
        assert loaded_delta.deleted == tables.peek_delta().deleted

        loaded._tables_dirty = True
        loaded._sync()
        assert loaded.tables.peek_delta().is_empty
        assert_sketches_match_full_rebuild(loaded)

    def test_version_1_snapshots_without_delta_still_load(self, tmp_path):
        """Format v2 only added the pending delta; v1 artifacts (no
        ``pending_delta`` key) must keep loading, with an empty delta."""
        import json
        import pickle

        rng = np.random.default_rng(41)
        engine = build_engine(random_sets(rng, 30), seed=43)
        path = save_engine(engine, tmp_path / "snap")

        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with open(path / "objects.pkl", "rb") as handle:
            objects = pickle.load(handle)
        del objects["pending_delta"]
        with open(path / "objects.pkl", "wb") as handle:
            pickle.dump(objects, handle)

        loaded = load_engine(path)
        assert loaded.tables.peek_delta().is_empty
        q = loaded.sampler.dataset[0]
        assert loaded.sample_batch([q] * 3) == engine.sample_batch([q] * 3)

    def test_restored_engine_keeps_incremental_maintenance(self, tmp_path):
        rng = np.random.default_rng(29)
        engine = build_engine(random_sets(rng, 40), seed=27)
        engine.insert_many(random_sets(rng, 3))
        engine._sync()
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")

        sketcher = loaded.sampler._sketcher
        loaded.insert_many(random_sets(rng, 4))
        loaded.delete(0)
        loaded._sync()
        assert loaded.sampler._sketcher is sketcher  # no full rebuild happened
        assert_sketches_match_full_rebuild(loaded)


class TestMutationDelta:
    def test_empty_shape_and_flags(self):
        delta = MutationDelta.empty(3)
        assert delta.num_tables == 3
        assert delta.is_empty
        assert delta.rebuild_keys(0) == set()

    def test_records_inserts_deletes_and_compaction(self):
        tables = DynamicLSHTables(MinHashFamily(), l=4, seed=3).fit(
            [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({8, 9})]
        )
        new = tables.insert(frozenset({1, 2, 5}))
        tables.delete(new)
        delta = tables.peek_delta()
        assert delta.inserted == [new]
        assert delta.deleted == [new]
        for table_index in range(4):
            inserted_keys = {
                key
                for key, members in delta.inserted_members[table_index].items()
                if new in members
            }
            assert inserted_keys  # the insert names its bucket in every table
            assert inserted_keys <= delta.rebuild_keys(table_index)
        tables.compact()
        assert any(delta.compacted_keys)
        drained = tables.drain_delta()
        assert drained is delta
        assert tables.peek_delta().is_empty

"""Tests for the approximate-neighborhood sampler and its Section 6.2 failure mode."""

import pytest

from repro.core import ApproximateNeighborhoodSampler
from repro.data import clustered_neighborhood_instance
from repro.exceptions import NotFittedError
from repro.lsh import MinHashFamily
from repro.lsh.params import select_parameters


def make_sampler(dataset, radius=0.5, relaxed=0.25, seed=0, num_tables=60):
    return ApproximateNeighborhoodSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=relaxed,
        num_hashes=1,
        num_tables=num_tables,
        seed=seed,
    ).fit(dataset)


class TestBasics:
    def test_returns_point_within_relaxed_radius(self, planted_sets, jaccard):
        sampler = make_sampler(planted_sets["dataset"], radius=0.5, relaxed=0.3)
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.found
        assert jaccard.value(planted_sets["dataset"][result.index], planted_sets["query"]) >= 0.3

    def test_may_return_points_outside_exact_neighborhood(self):
        """The relaxed sampler can legitimately return (c, r)-near points."""
        near = frozenset(range(1, 11))
        borderline = frozenset(range(1, 7))  # similarity 0.6 < r=0.8 but >= cr=0.5
        dataset = [near, borderline]
        sampler = make_sampler(dataset, radius=0.8, relaxed=0.5, seed=1)
        outputs = {sampler.sample(frozenset(range(1, 11))) for _ in range(200)}
        assert 1 in outputs

    def test_returns_none_without_candidates(self):
        dataset = [frozenset({900 + i}) for i in range(5)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2})) is None

    def test_not_fitted_raises(self):
        sampler = ApproximateNeighborhoodSampler(
            MinHashFamily(), radius=0.5, far_radius=0.25, num_hashes=1, num_tables=5
        )
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_candidate_set_only_contains_relaxed_near_points(self, planted_sets, jaccard):
        sampler = make_sampler(planted_sets["dataset"], radius=0.5, relaxed=0.3, seed=2)
        for index in sampler.candidate_set(planted_sets["query"]):
            value = jaccard.value(planted_sets["dataset"][int(index)], planted_sets["query"])
            assert value >= 0.3


class TestClusteredNeighborhoodUnfairness:
    """Reproduces the qualitative claim of Section 6.2 (Figure 2) on a reduced instance."""

    @pytest.fixture(scope="class")
    def instance(self):
        # The full instance (cluster of ~10^4 subsets) is what makes the
        # concatenation length large enough for "X collides" to usually
        # happen without the cluster flooding the buckets.
        return clustered_neighborhood_instance(min_subset_size=15)

    @pytest.fixture(scope="class")
    def sampling_counts(self, instance):
        # Full MinHash buckets: see the note in repro.experiments.q2_approximate —
        # the exclusivity between "X collides" and "the cluster collides" is what
        # produces the paper's effect, and the 1-bit reduction dilutes it.
        family = MinHashFamily()
        params = select_parameters(
            family, near_threshold=0.9, far_threshold=0.1, n=len(instance.dataset),
            recall=0.95, max_expected_far_collisions=5.0,
        )
        counts = {"X": 0, "Y": 0, "Z": 0, "cluster": 0, "none": 0}
        # Whether the cluster floods the buckets is fixed per construction, so
        # the sampling probabilities are averaged over many constructions.
        repetitions = 50
        trials = 14
        for trial in range(trials):
            sampler = ApproximateNeighborhoodSampler(
                family,
                radius=instance.r,
                far_radius=instance.cr,
                num_hashes=params.k,
                num_tables=params.l,
                seed=trial,
            ).fit(instance.dataset)
            for _ in range(repetitions):
                index = sampler.sample(instance.query)
                if index is None:
                    counts["none"] += 1
                elif index == instance.index_x:
                    counts["X"] += 1
                elif index == instance.index_y:
                    counts["Y"] += 1
                elif index == instance.index_z:
                    counts["Z"] += 1
                else:
                    counts["cluster"] += 1
        counts["total"] = trials * repetitions
        return counts

    def test_x_reported_much_more_often_than_y(self, sampling_counts):
        """X (similarity 0.5, isolated) dominates Y (similarity 0.6, clustered)."""
        assert sampling_counts["X"] > 3 * max(1, sampling_counts["Y"])

    def test_cluster_absorbs_most_of_the_mass(self, sampling_counts):
        assert sampling_counts["cluster"] > sampling_counts["X"]

    def test_x_overrepresented_relative_to_uniform_over_relaxed_neighborhood(
        self, sampling_counts, instance
    ):
        """Uniform sampling over all points within cr would give each point a
        1/(|M|+3) share; the isolated X receives far more than that, which is
        exactly the unfairness the paper demonstrates."""
        uniform_share = 1.0 / (len(instance.cluster_indices) + 3)
        x_share = sampling_counts["X"] / sampling_counts["total"]
        assert x_share > 5 * uniform_share

"""Snapshot round-trips of degenerate serving states (formats v3 and v4).

Production snapshots are taken whenever an operator asks, not when the index
is in a photogenic state.  Three degenerate moments are pinned here for both
the unsharded (v3) and sharded (v4) formats:

* **zero live points** — everything deleted and swept; the artifact must
  load, answer ``⊥`` and accept fresh inserts;
* **all-tombstoned buckets** — deletes pending, compaction not yet run, so
  bucket arrays still reference dead slots that queries must keep hiding
  after the round-trip;
* **mid-undrained delta** — the tables mutated directly (no engine sync), so
  an unconsumed :class:`MutationDelta` must survive the round-trip and reach
  the restored sampler's next ``notify_update``.

Damaged artifacts are pinned too: a snapshot with missing, truncated or
bit-rotted files must raise the typed
:class:`~repro.exceptions.SnapshotCorruptError` (never a raw ``KeyError`` /
``UnpicklingError`` / ``JSONDecodeError``), for both formats — recovery
(:meth:`FairNN.recover`) relies on the typed signal to fall back to an
older checkpoint.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import IndependentFairSampler, PermutationFairSampler
from repro.engine import BatchQueryEngine, ShardedEngine, load_engine, save_engine
from repro.exceptions import InvalidParameterError, SnapshotCorruptError
from repro.lsh import MinHashFamily
from repro.testing import flip_byte, tear_tail

PARAMS = {"radius": 0.35, "far_radius": 0.1, "num_hashes": 2, "num_tables": 6}


def _dataset(seed=2, n=40):
    rng = np.random.default_rng(seed)
    return [
        frozenset(int(x) for x in rng.choice(300, size=rng.integers(8, 20)))
        for _ in range(n)
    ]


def _build(dataset, sharded, sampler_cls=PermutationFairSampler, seed=9):
    sampler = sampler_cls(MinHashFamily(), seed=seed, **PARAMS)
    if sharded:
        return ShardedEngine.build(sampler, dataset, n_shards=3)
    return BatchQueryEngine.build(sampler, dataset)


def _assert_identical_runs(left, right, queries):
    for a, b in zip(left.run(queries), right.run(queries)):
        assert a.indices == b.indices
        assert a.value == b.value
        assert a.stats == b.stats


@pytest.mark.parametrize("sharded", [False, True])
class TestDegenerateSnapshots:
    def test_zero_live_points_round_trip(self, sharded, tmp_path):
        dataset = _dataset()
        engine = _build(dataset, sharded)
        for index in range(len(dataset)):
            engine.delete(index)
        engine.tables.compact()
        assert engine.num_live_points == 0

        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        assert clone.num_live_points == 0
        assert type(clone) is type(engine)
        queries = dataset[:5]
        for response in clone.run(queries):
            assert not response.found
        _assert_identical_runs(engine, clone, queries)
        # A dead artifact is still a serviceable index: inserts revive it.
        revived = clone.insert_many(dataset[:3])
        assert len(revived) == 3
        assert clone.run([dataset[0]])[0].found

    def test_all_tombstoned_bucket_pending_round_trip(self, sharded, tmp_path):
        """Delete every member of the query's neighborhood but keep the
        sweep pending: bucket arrays still hold the dead references."""
        dataset = _dataset()
        engine = _build(dataset, sharded)
        query = dataset[0]
        colliding = [int(i) for i in engine.tables.query_candidates(query)]
        assert colliding
        # A large max_tombstone_fraction would be cleaner, but deleting less
        # than the trigger keeps the sweep pending on the default settings.
        doomed = colliding[: max(1, int(0.2 * engine.tables.num_live))]
        for index in doomed:
            engine.delete(index)
        assert engine.tables.pending_tombstones > 0

        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        assert clone.tables.pending_tombstones == engine.tables.pending_tombstones
        for index in doomed:
            assert index not in clone.tables.query_candidates(query).tolist()
        _assert_identical_runs(engine, clone, dataset[:8])
        # Compaction after the round-trip still sweeps cleanly.
        clone.tables.compact()
        engine.tables.compact()
        assert clone.tables.pending_tombstones == 0
        _assert_identical_runs(engine, clone, dataset[:8])

    def test_mid_undrained_delta_round_trip(self, sharded, tmp_path):
        """Mutations applied directly to the tables (engine not synced) must
        survive as a pending delta and reach the restored sampler."""
        dataset = _dataset()
        engine = _build(dataset, sharded, sampler_cls=IndependentFairSampler)
        engine.run(dataset[:3])  # engine fully synced at this point
        tables = engine.tables
        tables.insert_many(dataset[:4])
        tables.delete(1)
        assert not tables.peek_delta().is_empty

        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        restored = clone.tables.peek_delta()
        assert not restored.is_empty
        assert list(restored.deleted) == [1]
        assert len(restored.inserted) == 4
        # The restored sampler consumes the delta incrementally (epoch
        # re-anchored) and both sides answer identically afterwards.
        clone.sampler.notify_update()
        engine.sampler.notify_update()
        engine._tables_dirty = False
        clone._tables_dirty = False
        _assert_identical_runs(engine, clone, dataset[:8])

    def test_empty_mutation_history_round_trip(self, sharded, tmp_path):
        dataset = _dataset()
        engine = _build(dataset, sharded)
        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        assert clone.tables.peek_delta().is_empty
        _assert_identical_runs(engine, clone, dataset[:10])


@pytest.mark.parametrize("sharded", [False, True], ids=["v3", "v4"])
class TestCorruptSnapshots:
    """Every flavour of on-disk damage surfaces as SnapshotCorruptError."""

    def _snapshot(self, tmp_path, sharded):
        engine = _build(_dataset(), sharded)
        save_engine(engine, tmp_path / "snap")
        return tmp_path / "snap"

    @pytest.mark.parametrize("victim", ["manifest.json", "arrays.npz", "objects.pkl"])
    def test_missing_file(self, sharded, tmp_path, victim):
        snap = self._snapshot(tmp_path, sharded)
        (snap / victim).unlink()
        with pytest.raises(SnapshotCorruptError):
            load_engine(snap)

    @pytest.mark.parametrize("victim", ["arrays.npz", "objects.pkl"])
    def test_truncated_file(self, sharded, tmp_path, victim):
        snap = self._snapshot(tmp_path, sharded)
        size = (snap / victim).stat().st_size
        tear_tail(snap / victim, size // 2)
        with pytest.raises(SnapshotCorruptError):
            load_engine(snap)

    def test_unparseable_manifest(self, sharded, tmp_path):
        snap = self._snapshot(tmp_path, sharded)
        (snap / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotCorruptError):
            load_engine(snap)

    def test_manifest_missing_keys(self, sharded, tmp_path):
        snap = self._snapshot(tmp_path, sharded)
        (snap / "manifest.json").write_text(json.dumps({"format_version": 3}))
        with pytest.raises(SnapshotCorruptError):
            load_engine(snap)

    def test_bit_rot_in_objects(self, sharded, tmp_path):
        snap = self._snapshot(tmp_path, sharded)
        # The pickle opcode stream starts at the front; rot it there so
        # unpickling fails structurally rather than by luck.
        flip_byte(snap / "objects.pkl", 1)
        with pytest.raises(SnapshotCorruptError):
            load_engine(snap)

    def test_error_is_typed_and_chained(self, sharded, tmp_path):
        snap = self._snapshot(tmp_path, sharded)
        (snap / "arrays.npz").unlink()
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_engine(snap)
        assert excinfo.value.__cause__ is not None
        assert str(snap) in str(excinfo.value)

    def test_unsupported_version_stays_invalid_parameter(self, sharded, tmp_path):
        """A *well-formed* snapshot from the future is a usage error, not
        corruption — recovery must not silently fall back past it."""
        snap = self._snapshot(tmp_path, sharded)
        manifest = json.loads((snap / "manifest.json").read_text())
        manifest["format_version"] = 999
        (snap / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(InvalidParameterError):
            load_engine(snap)

    def test_intact_snapshot_still_loads(self, sharded, tmp_path):
        engine = _build(_dataset(), sharded)
        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        _assert_identical_runs(engine, clone, _dataset()[:6])

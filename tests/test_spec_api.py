"""The declarative layer: registries, specs, the FairNN facade, snapshots.

Four guarantees are pinned down here:

1. **Registry completeness** — every concrete sampler, measure and base LSH
   family class is registered (so the whole library is reachable from
   specs), and every registered name builds a working instance.
2. **Spec round-trip** — ``Spec.from_dict(spec.to_dict()) == spec`` and the
   JSON forms agree, for all four spec types, with validated errors on
   malformed input.
3. **Bitwise-reproducible seeding** — a spec-built sampler answers seeded
   queries byte-identically to the directly constructed equivalent.
4. **Snapshot compatibility** — format v3 snapshots persist the spec and
   serving name; pre-existing v2 snapshots (no spec keys) still load with
   identical query responses.
"""

from __future__ import annotations

import inspect
import json
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro import registry
from repro.api import FairNN
from repro.core.base import NeighborSampler
from repro.core.weighted import WeightedFairSampler
from repro.distances.base import Measure
from repro.engine import BatchQueryEngine, load_engine, save_engine
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.lsh.family import ConcatenatedFamily, LSHFamily
from repro.spec import DistanceSpec, EngineSpec, LSHSpec, SamplerSpec, spec_from_dict

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Canonical buildable spec per registered sampler, plus the dataset flavour
#: ("sets" or "vectors") its measure needs.  Kept in sync with the registry
#: by test_every_registered_sampler_is_buildable.
SET_PARAMS = {"radius": 0.4, "far_radius": 0.1, "num_hashes": 2, "num_tables": 4}
CANONICAL_SPECS = {
    "exact": (SamplerSpec("exact", {"radius": 0.4}, distance=DistanceSpec("jaccard")), "sets"),
    "standard_lsh": (SamplerSpec("standard_lsh", SET_PARAMS, lsh=LSHSpec("minhash")), "sets"),
    "collect_all": (SamplerSpec("collect_all", SET_PARAMS, lsh=LSHSpec("minhash")), "sets"),
    "approximate": (
        SamplerSpec("approximate", {**SET_PARAMS, "far_radius": 0.2}, lsh=LSHSpec("minhash")),
        "sets",
    ),
    "permutation": (SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash")), "sets"),
    "rank_perturbation": (
        SamplerSpec("rank_perturbation", SET_PARAMS, lsh=LSHSpec("minhash")),
        "sets",
    ),
    "independent": (SamplerSpec("independent", SET_PARAMS, lsh=LSHSpec("minhash")), "sets"),
    "filter": (SamplerSpec("filter", {"alpha": 0.8, "beta": 0.2, "num_structures": 4}), "vectors"),
    "gaussian_filter": (SamplerSpec("gaussian_filter", {"alpha": 0.8, "beta": 0.2}), "vectors"),
}


def _concrete_subclasses(base):
    seen = set()
    stack = list(base.__subclasses__())
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
    return {cls for cls in seen if not inspect.isabstract(cls)}


# ----------------------------------------------------------------------
# 1. Registry completeness
# ----------------------------------------------------------------------
class TestRegistryCompleteness:
    def test_every_concrete_measure_is_registered(self):
        registered = {cls for _, cls in registry.DISTANCES.items()}
        assert _concrete_subclasses(Measure) == registered

    def test_every_concrete_base_family_is_registered(self):
        registered = {cls for _, cls in registry.LSH_FAMILIES.items()}
        concrete = {
            cls
            for cls in _concrete_subclasses(LSHFamily)
            # AND-composition is derived (applied by the samplers), and the
            # batch-hasher helpers are internal plumbing, not families a
            # spec would name.
            if cls is not ConcatenatedFamily and not cls.__name__.startswith("_")
        }
        assert concrete == registered

    def test_every_concrete_sampler_is_registered(self):
        registered = {cls for _, cls in registry.SAMPLERS.items()}
        concrete = {
            cls
            for cls in _concrete_subclasses(NeighborSampler)
            # WeightedFairSampler wraps another sampler with an arbitrary
            # callable, so it has no declarative (JSON) description.
            if cls is not WeightedFairSampler
        }
        assert concrete == registered

    def test_canonical_spec_table_covers_registry(self):
        assert set(CANONICAL_SPECS) == set(registry.sampler_names())

    @pytest.mark.parametrize("name", sorted(CANONICAL_SPECS))
    def test_every_registered_sampler_is_buildable(
        self, name, small_set_dataset, planted_unit_vectors
    ):
        spec, flavour = CANONICAL_SPECS[name]
        dataset = (
            small_set_dataset if flavour == "sets" else planted_unit_vectors["points"]
        )
        query = (
            small_set_dataset[0] if flavour == "sets" else planted_unit_vectors["query"]
        )
        sampler = spec.build(seed=0).fit(dataset)
        index = sampler.sample(query)
        assert index is None or 0 <= int(index) < len(dataset)

    def test_duplicate_registration_of_different_class_fails(self):
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.SAMPLERS.register("permutation", WeightedFairSampler)

    def test_reregistration_of_same_class_is_idempotent(self):
        cls = registry.get_sampler("permutation")
        assert registry.SAMPLERS.register("permutation", cls) is cls

    def test_name_of_walks_the_mro(self):
        base = registry.get_sampler("permutation")
        sub = type("MyPermutation", (base,), {})
        assert registry.SAMPLERS.name_of(sub) == "permutation"
        assert registry.SAMPLERS.name_of(int) is None

    def test_unknown_names_raise_with_known_names_listed(self):
        with pytest.raises(InvalidParameterError, match="permutation"):
            registry.get_sampler("nope")
        with pytest.raises(InvalidParameterError, match="jaccard"):
            registry.get_distance("nope")
        with pytest.raises(InvalidParameterError, match="minhash"):
            registry.get_lsh_family("nope")


# ----------------------------------------------------------------------
# 2. Spec round-trip and validation
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            DistanceSpec("jaccard"),
            LSHSpec("pstable", {"dim": 8, "width": 4.0}),
            SamplerSpec("exact", {"radius": 0.3}, distance=DistanceSpec("jaccard"), seed=3),
            SamplerSpec(
                "independent",
                {"radius": 0.4, "far_radius": 0.1, "sketch_min_bucket": 8},
                lsh=LSHSpec("onebit_minhash"),
                seed=11,
            ),
            EngineSpec(
                samplers={
                    "fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=0),
                    "baseline": SamplerSpec(
                        "standard_lsh", SET_PARAMS, lsh=LSHSpec("minhash"), seed=1
                    ),
                },
                primary="fair",
                dynamic=False,
                max_tombstone_fraction=0.5,
            ),
        ],
        ids=lambda s: type(s).__name__,
    )
    def test_dict_and_json_round_trip(self, spec):
        cls = type(spec)
        assert cls.from_dict(spec.to_dict()) == spec
        assert cls.from_json(spec.to_json()) == spec
        assert spec_from_dict(spec.to_dict()) == spec
        json.loads(spec.to_json())  # genuinely JSON

    def test_engine_spec_defaults_primary_to_first_entry(self):
        spec = EngineSpec(
            samplers={"a": CANONICAL_SPECS["permutation"][0], "b": CANONICAL_SPECS["exact"][0]}
        )
        assert spec.primary == "a"
        assert spec.primary_spec.sampler == "permutation"

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            SamplerSpec.from_dict({"sampler": "exact", "oops": 1})
        with pytest.raises(InvalidParameterError, match="unknown"):
            DistanceSpec.from_dict({"name": "jaccard", "typo": {}})

    def test_params_must_be_json_serializable_identifiers(self):
        with pytest.raises(InvalidParameterError, match="JSON"):
            SamplerSpec("exact", {"radius": np.arange(3)})
        with pytest.raises(InvalidParameterError, match="identifier"):
            LSHSpec("minhash", {"not an identifier": 1})

    def test_seed_goes_through_the_seed_field(self):
        with pytest.raises(InvalidParameterError, match="seed"):
            SamplerSpec("exact", {"radius": 0.3, "seed": 4})

    def test_build_validates_inputs_kind(self):
        with pytest.raises(InvalidParameterError, match="LSH family"):
            SamplerSpec("permutation", SET_PARAMS).build()
        with pytest.raises(InvalidParameterError, match="measure"):
            SamplerSpec("exact", {"radius": 0.3}).build()
        with pytest.raises(InvalidParameterError, match="self-contained"):
            SamplerSpec(
                "filter", {"alpha": 0.8, "beta": 0.2}, lsh=LSHSpec("minhash")
            ).build()
        with pytest.raises(InvalidParameterError, match="unknown sampler"):
            SamplerSpec("no_such_sampler", {}).build()

    def test_engine_spec_requires_known_primary_and_samplers(self):
        fair = CANONICAL_SPECS["permutation"][0]
        with pytest.raises(InvalidParameterError, match="primary"):
            EngineSpec(samplers={"a": fair}, primary="b")
        with pytest.raises(InvalidParameterError, match="non-empty"):
            EngineSpec(samplers={})

    def test_engine_spec_wal_fsync_round_trips_and_validates(self):
        fair = CANONICAL_SPECS["permutation"][0]
        spec = EngineSpec(samplers={"a": fair}, wal_fsync="always")
        assert EngineSpec.from_dict(spec.to_dict()) == spec
        # Snapshots written before the WAL existed have no wal_fsync key.
        legacy = {k: v for k, v in spec.to_dict().items() if k != "wal_fsync"}
        assert EngineSpec.from_dict(legacy).wal_fsync == "interval"
        with pytest.raises(InvalidParameterError, match="fsync"):
            EngineSpec(samplers={"a": fair}, wal_fsync="sometimes")

    def test_spec_from_dict_dispatch(self):
        assert isinstance(spec_from_dict({"name": "jaccard"}), DistanceSpec)
        assert isinstance(spec_from_dict({"family": "minhash"}), LSHSpec)
        with pytest.raises(InvalidParameterError, match="cannot infer"):
            spec_from_dict({"what": 1})


# ----------------------------------------------------------------------
# 3. Bitwise-reproducible seeding (spec-built == hand-built)
# ----------------------------------------------------------------------
class TestSpecBuildEquivalence:
    @pytest.mark.parametrize("name", sorted(CANONICAL_SPECS))
    def test_spec_built_equals_hand_built_bytewise(
        self, name, small_set_dataset, planted_unit_vectors
    ):
        """``spec.from_dict(spec.to_dict()).build().fit(ds)`` answers seeded
        queries byte-identically to the directly constructed sampler."""
        spec, flavour = CANONICAL_SPECS[name]
        spec = type(spec).from_dict(spec.to_dict())  # through the JSON schema
        if flavour == "sets":
            dataset = small_set_dataset
            queries = [small_set_dataset[i] for i in range(8)]
        else:
            dataset = planted_unit_vectors["points"]
            queries = [planted_unit_vectors["query"]] + [row for row in dataset[:7]]

        cls = registry.get_sampler(name)
        kwargs = dict(spec.params)
        if spec.lsh is not None:
            hand_built = cls(spec.lsh.build(), **kwargs, seed=123)
        elif spec.distance is not None:
            hand_built = cls(spec.distance.build(), **kwargs, seed=123)
        else:
            hand_built = cls(**kwargs, seed=123)
        spec_built = spec.build(seed=123)

        assert type(spec_built) is cls
        hand_built.fit(dataset)
        spec_built.fit(dataset)
        for query in queries:
            for _ in range(3):  # repeated draws exercise the query RNG stream
                a = hand_built.sample_detailed(query)
                b = spec_built.sample_detailed(query)
                assert (a.index, a.value) == (b.index, b.value)
                assert a.stats.candidates_examined == b.stats.candidates_examined
                assert a.stats.distance_evaluations == b.stats.distance_evaluations


# ----------------------------------------------------------------------
# 4. FairNN facade
# ----------------------------------------------------------------------
@pytest.fixture()
def engine_spec():
    return EngineSpec(
        samplers={
            "fair": SamplerSpec(
                "permutation",
                {"radius": 0.5, "far_radius": 0.1, "num_hashes": 2, "num_tables": 6},
                lsh=LSHSpec("minhash"),
                seed=0,
            ),
            "independent": SamplerSpec(
                "independent",
                {"radius": 0.5, "far_radius": 0.1, "num_hashes": 2, "num_tables": 6},
                lsh=LSHSpec("minhash"),
                seed=1,
            ),
            "exact": SamplerSpec("exact", {"radius": 0.5}, distance=DistanceSpec("jaccard"), seed=2),
        },
        primary="fair",
    )


class TestFairNNFacade:
    def test_from_spec_accepts_all_forms(self, engine_spec):
        assert FairNN.from_spec(engine_spec).spec == engine_spec
        assert FairNN.from_spec(engine_spec.to_dict()).spec == engine_spec
        assert FairNN.from_spec(engine_spec.to_json()).spec == engine_spec
        single = engine_spec.samplers["fair"]
        facade = FairNN.from_spec(single, name="only")
        assert facade.sampler_names == ["only"] and facade.primary == "only"
        with pytest.raises(InvalidParameterError, match="FairNN"):
            FairNN.from_spec(DistanceSpec("jaccard"))

    def test_static_fit_matches_hand_built_sampler(self, planted_sets):
        dataset = planted_sets["dataset"]
        spec = SamplerSpec(
            "permutation",
            {"radius": planted_sets["radius"], "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
            lsh=LSHSpec("minhash"),
            seed=5,
        )
        nn = FairNN.from_spec(spec).fit(dataset)
        hand = spec.build().fit(dataset)
        for _ in range(20):
            assert nn.sample(planted_sets["query"]) == hand.sample(planted_sets["query"])

    def test_requires_fit_before_queries(self, engine_spec):
        nn = FairNN.from_spec(engine_spec)
        with pytest.raises(NotFittedError):
            nn.sample(frozenset({1}))
        with pytest.raises(NotFittedError):
            nn.serve()

    def test_named_samplers_share_one_table_set(self, planted_sets):
        dataset = planted_sets["dataset"]
        spec = EngineSpec(
            samplers={
                "fair": SamplerSpec(
                    "permutation",
                    {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
                    lsh=LSHSpec("minhash"),
                    seed=0,
                ),
                "baseline": SamplerSpec(
                    "standard_lsh",
                    {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
                    lsh=LSHSpec("minhash"),
                    seed=1,
                ),
            },
            primary="fair",
        )
        nn = FairNN.from_spec(spec).serve(dataset)
        fair = nn.samplers["fair"]
        baseline = nn.samplers["baseline"]
        assert fair.tables is baseline.tables is nn.tables
        query = planted_sets["query"]
        near = planted_sets["near_indices"]
        for name in ("fair", "baseline"):
            index = nn.sample(query, sampler=name)
            assert index in near
        response = nn.run([query], sampler="baseline")[0]
        assert response.sampler == "baseline"

    def test_mixed_family_specs_rejected(self):
        fair = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"))
        other = SamplerSpec("standard_lsh", SET_PARAMS, lsh=LSHSpec("onebit_minhash"))
        with pytest.raises(InvalidParameterError, match="different LSH families"):
            FairNN.from_spec(EngineSpec(samplers={"a": fair, "b": other})).fit(
                [frozenset({1, 2}), frozenset({2, 3})]
            )

    def test_serve_single_sampler_matches_engine_build(self, small_set_dataset):
        spec = SamplerSpec(
            "permutation",
            {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
            lsh=LSHSpec("minhash"),
            seed=0,
        )
        nn = FairNN.from_spec(spec).serve(small_set_dataset)
        reference = BatchQueryEngine.build(spec.build(), small_set_dataset)
        queries = list(small_set_dataset[:25])
        assert nn.engine().sample_batch(queries) == reference.sample_batch(queries)

    def test_churn_notifies_every_named_sampler(self, small_set_dataset, engine_spec):
        samplers = dict(engine_spec.samplers)
        del samplers["exact"]  # non-LSH samplers cannot track mutations
        spec = EngineSpec(samplers=samplers, primary="fair")
        nn = FairNN.from_spec(spec).serve(small_set_dataset)
        new_point = frozenset(range(2000, 2030))
        index = nn.insert(new_point)
        nn.delete(0)
        stats = nn.stats()
        assert set(stats) == {"fair", "independent"}
        assert all(s.inserts == 1 and s.deletes == 1 for s in stats.values())
        # The inserted point is its own near neighbor (similarity 1.0) and
        # must be reachable through every LSH-backed sampler after the
        # mutation syncs.
        for name in ("fair", "independent"):
            assert nn.sample(new_point, sampler=name) == index

    def test_mutation_rejected_when_non_lsh_sampler_attached(
        self, small_set_dataset, engine_spec
    ):
        """The exact baseline cannot track index mutations — mutating would
        silently serve deleted points from it, so the facade refuses."""
        nn = FairNN.from_spec(engine_spec).serve(small_set_dataset)
        with pytest.raises(InvalidParameterError, match="exact"):
            nn.insert(frozenset({1, 2, 3}))
        with pytest.raises(InvalidParameterError, match="not LSH-backed"):
            nn.delete(0)

    def test_neighborhood_is_exact_and_liveness_aware(self, planted_sets):
        dataset = planted_sets["dataset"]
        spec = SamplerSpec(
            "permutation",
            {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
            lsh=LSHSpec("minhash"),
            seed=0,
        )
        nn = FairNN.from_spec(spec).serve(dataset)
        near = set(int(i) for i in nn.neighborhood(planted_sets["query"]))
        assert near == planted_sets["near_indices"]
        victim = next(iter(planted_sets["near_indices"]))
        nn.delete(victim)
        assert set(int(i) for i in nn.neighborhood(planted_sets["query"])) == near - {victim}

    def test_static_facade_rejects_mutation(self, planted_sets, engine_spec):
        nn = FairNN.from_spec(engine_spec).fit(planted_sets["dataset"])
        with pytest.raises(InvalidParameterError, match="dynamic"):
            nn.insert(frozenset({1, 2, 3}))

    def test_add_sampler_adopts_first_lsh_tables_as_shared(self, planted_sets):
        """On an all-non-LSH facade, the first added LSH sampler's tables
        become the shared set later additions attach to."""
        nn = FairNN.from_spec(
            SamplerSpec("exact", {"radius": 0.5}, distance=DistanceSpec("jaccard"), seed=0),
            name="exact",
        ).fit(planted_sets["dataset"])
        assert nn.tables is None
        lsh_params = {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6}
        nn.add_sampler(
            "fair", SamplerSpec("permutation", lsh_params, lsh=LSHSpec("minhash"), seed=1)
        )
        assert nn.tables is nn.samplers["fair"].tables
        nn.add_sampler(
            "baseline", SamplerSpec("standard_lsh", lsh_params, lsh=LSHSpec("minhash"), seed=2)
        )
        assert nn.samplers["baseline"].tables is nn.tables  # shared, not private

    def test_add_sampler_after_serve(self, planted_sets):
        spec = SamplerSpec(
            "permutation",
            {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
            lsh=LSHSpec("minhash"),
            seed=0,
        )
        nn = FairNN.from_spec(spec, name="fair").serve(planted_sets["dataset"])
        nn.add_sampler(
            "collect",
            SamplerSpec(
                "collect_all",
                {"radius": 0.5, "far_radius": 0.2, "num_hashes": 2, "num_tables": 6},
                lsh=LSHSpec("minhash"),
                seed=3,
            ),
        )
        assert nn.samplers["collect"].tables is nn.tables
        assert nn.sample(planted_sets["query"], sampler="collect") in planted_sets["near_indices"]
        with pytest.raises(InvalidParameterError, match="already in use"):
            nn.add_sampler("collect", spec)

    def test_response_sampler_name_defaults_to_registry_key(self, planted_sets):
        sampler = CANONICAL_SPECS["permutation"][0].build(seed=0).fit(planted_sets["dataset"])
        engine = BatchQueryEngine(sampler)
        assert engine.sampler_name == "permutation"
        response = engine.run([planted_sets["query"]])[0]
        assert response.sampler == "permutation"


# ----------------------------------------------------------------------
# 5. Snapshot format v3 (+ v2 compatibility)
# ----------------------------------------------------------------------
class TestSnapshotSpecPersistence:
    def _serve(self, dataset):
        spec = SamplerSpec(
            "permutation",
            {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
            lsh=LSHSpec("minhash"),
            seed=0,
        )
        return FairNN.from_spec(spec, name="fair").serve(dataset)

    def test_v3_snapshot_carries_spec_and_name(self, small_set_dataset, tmp_path):
        nn = self._serve(small_set_dataset)
        nn.save(tmp_path / "snap")
        manifest = json.loads((tmp_path / "snap" / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        assert manifest["sampler_name"] == "fair"
        assert manifest["spec_kind"] == "engine"
        assert EngineSpec.from_dict(manifest["spec"]) == nn.spec

        clone = FairNN.load(tmp_path / "snap")
        assert clone.spec == nn.spec
        queries = list(small_set_dataset[:30])
        assert clone.engine().sample_batch(queries) == nn.engine().sample_batch(queries)

    def test_engine_snapshot_with_sampler_spec(self, small_set_dataset, tmp_path):
        spec = SamplerSpec(
            "independent",
            {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
            lsh=LSHSpec("minhash"),
            seed=4,
        )
        engine = BatchQueryEngine.build(spec.build(), small_set_dataset)
        engine.spec = spec
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        assert loaded.spec == spec
        assert loaded.sampler_name == "independent"
        queries = list(small_set_dataset[:20])
        assert loaded.sample_batch(queries) == engine.sample_batch(queries)

    def test_facade_load_preserves_static_tables_flag(self, small_set_dataset, tmp_path):
        """Loading an engine snapshot that carries only a SamplerSpec must
        synthesize an EngineSpec whose dynamic flag matches the artifact."""
        spec = SamplerSpec(
            "permutation",
            {"radius": 0.2, "far_radius": 0.1, "recall": 0.95},
            lsh=LSHSpec("minhash"),
            seed=0,
        )
        engine = BatchQueryEngine.build(spec.build(), small_set_dataset, dynamic=False)
        engine.spec = spec
        save_engine(engine, tmp_path / "snap")
        clone = FairNN.load(tmp_path / "snap")
        assert clone.is_dynamic is False
        assert clone.spec.dynamic is False

    def test_pre_existing_v2_snapshot_still_loads(self, small_set_dataset, tmp_path):
        """A v2 snapshot (no spec/sampler_name keys) loads with identical
        query responses; only the facade loader (which needs the spec)
        refuses it."""
        nn = self._serve(small_set_dataset)
        nn.save(tmp_path / "snap")
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        # Rewrite the manifest exactly as save_engine@v2 produced it: the v3
        # keys did not exist then.
        manifest["format_version"] = 2
        for key in ("spec", "spec_kind", "sampler_name"):
            del manifest[key]
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

        loaded = load_engine(tmp_path / "snap")
        assert loaded.spec is None
        assert loaded.sampler_name == "permutation"  # derived from the class
        queries = list(small_set_dataset[:30])
        assert loaded.sample_batch(queries) == nn.engine().sample_batch(queries)
        with pytest.raises(InvalidParameterError, match="pre-v3"):
            FairNN.load(tmp_path / "snap")


# ----------------------------------------------------------------------
# 6. Experiment configs emit specs; shared validation helpers
# ----------------------------------------------------------------------
class TestExperimentConfigSpecs:
    def test_q1_sampler_specs_build_the_audited_classes(self):
        from repro.experiments.config import Q1Config

        config = Q1Config()
        specs = config.sampler_specs(num_hashes=3, num_tables=7)
        assert set(specs) == {"standard_lsh", "fair_lsh_collect", "fair_nnis"}
        for spec in specs.values():
            assert spec.lsh == config.lsh_spec()
            assert spec.params["num_hashes"] == 3 and spec.params["num_tables"] == 7
            assert spec.seed == config.seed
        assert type(specs["fair_nnis"].build()).__name__ == "IndependentFairSampler"
        assert specs["standard_lsh"].params["shuffle_tables"] is True

    def test_q2_sampler_spec_offsets_seed_per_trial(self):
        from repro.experiments.config import Q2Config

        config = Q2Config()
        first = config.sampler_spec(2, 5, trial=0)
        second = config.sampler_spec(2, 5, trial=3)
        assert first.seed == config.seed and second.seed == config.seed + 3
        assert type(first.build()).__name__ == "ApproximateNeighborhoodSampler"

    def test_q3_distance_spec(self):
        from repro.experiments.config import Q3Config

        assert type(Q3Config().distance_spec().build()).__name__ == "JaccardSimilarity"

    @pytest.mark.parametrize(
        "bad",
        [
            {"dataset": "imdb"},
            {"radius": 1.5},
            {"repetitions": 0},
            {"num_queries": 0},
            {"seed": "nope"},
        ],
        ids=lambda d: next(iter(d)),
    )
    def test_shared_validation_helpers_reject_bad_q1(self, bad):
        from repro.experiments.config import Q1Config

        config = Q1Config(**bad)
        with pytest.raises(InvalidParameterError):
            config.validate()


# ----------------------------------------------------------------------
# 7. Public API surface stays in sync with the checked-in file
# ----------------------------------------------------------------------
class TestApiSurface:
    def test_surface_file_is_current(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_api_surface.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_all_exports_resolve_and_hide_privates(self):
        for name in repro.__all__:
            assert not name.startswith("_") or name == "__version__"
            assert hasattr(repro, name), f"__all__ names missing symbol {name}"

"""Shared fixtures for the test suite.

The statistical tests (uniformity of the fair samplers, bias of standard LSH)
use small datasets with explicitly chosen LSH parameters so that each test
builds its index in milliseconds; seeds are fixed so the suite is
deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.sets import generate_lastfm_like
from repro.data.synthetic import planted_neighborhood, planted_inner_product_neighborhood
from repro.distances.jaccard import JaccardSimilarity
from repro.lsh.minhash import MinHashFamily, OneBitMinHashFamily


@pytest.fixture(scope="session")
def small_set_dataset():
    """A small Last.FM-like set dataset (120 users) shared across tests."""
    return generate_lastfm_like(num_users=120, seed=11)


@pytest.fixture(scope="session")
def jaccard():
    return JaccardSimilarity()


@pytest.fixture(scope="session")
def minhash_family():
    return MinHashFamily()


@pytest.fixture(scope="session")
def onebit_family():
    return OneBitMinHashFamily()


@pytest.fixture(scope="session")
def planted_sets():
    """A tiny hand-built set dataset with a known neighborhood.

    The query ``{1..10}`` has exactly five near neighbors at Jaccard >= 0.5
    (indices 0-4); the remaining points are far.
    """
    base = frozenset(range(1, 11))
    near = [
        frozenset(range(1, 11)),              # similarity 1.0
        frozenset(range(1, 10)),              # 0.9
        frozenset(range(1, 9)),               # 0.8
        frozenset(list(range(1, 9)) + [20]),  # 8/11 = 0.727
        frozenset(range(2, 11)),              # 0.9
    ]
    far = [frozenset(range(100 + 10 * i, 110 + 10 * i)) for i in range(20)]
    dataset = near + far
    return {"dataset": dataset, "query": base, "near_indices": set(range(5)), "radius": 0.5}


@pytest.fixture(scope="session")
def planted_vectors():
    """Euclidean planted neighborhood: 15 near points, 200 background points."""
    points, query, neighbors = planted_neighborhood(
        n_background=200, n_neighbors=15, dim=12, radius=1.0, seed=5
    )
    return {"points": points, "query": query, "near_indices": set(int(i) for i in neighbors)}


@pytest.fixture(scope="session")
def planted_unit_vectors():
    """Inner-product planted neighborhood on the unit sphere."""
    points, query, neighbors = planted_inner_product_neighborhood(
        n_background=300, n_neighbors=12, dim=20, alpha=0.8, beta_max=0.2, seed=9
    )
    return {"points": points, "query": query, "near_indices": set(int(i) for i in neighbors)}


@pytest.fixture
def rng():
    return np.random.default_rng(0)

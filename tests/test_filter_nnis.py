"""Tests for the Section 5.2 filter-based alpha-NNIS sampler."""

import numpy as np
import pytest

from repro.core import FilterFairSampler
from repro.exceptions import EmptyDatasetError, InvalidParameterError, NotFittedError
from repro.fairness.metrics import total_variation_from_uniform


def make_sampler(points, alpha=0.8, beta=0.3, seed=0, num_structures=6, **kwargs):
    return FilterFairSampler(
        alpha=alpha, beta=beta, num_structures=num_structures, epsilon=0.05, seed=seed, **kwargs
    ).fit(points)


class TestConstruction:
    def test_invalid_thresholds(self):
        with pytest.raises(InvalidParameterError):
            FilterFairSampler(alpha=0.2, beta=0.5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            FilterFairSampler(alpha=0.8, beta=0.3).fit(np.empty((0, 3)))

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            FilterFairSampler(alpha=0.8, beta=0.3).sample(np.ones(3))

    def test_number_of_structures(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], num_structures=5)
        assert sampler.num_structures == 5

    def test_default_structure_count_scales_with_n(self, planted_unit_vectors):
        sampler = FilterFairSampler(alpha=0.8, beta=0.3, seed=0).fit(planted_unit_vectors["points"])
        assert sampler.num_structures >= 3

    def test_nearly_linear_space(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], num_structures=4)
        total = sum(s.total_stored_references() for s in sampler.structures)
        assert total == 4 * len(planted_unit_vectors["points"])


class TestQuery:
    def test_returns_near_point(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], seed=1)
        index = sampler.sample(planted_unit_vectors["query"])
        assert index in planted_unit_vectors["near_indices"]

    def test_returned_value_at_least_alpha(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], seed=2)
        result = sampler.sample_detailed(planted_unit_vectors["query"])
        assert result.found
        assert result.value >= sampler.alpha - 1e-9

    def test_returns_none_when_no_near_point(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(80, 12))
        points[:, 0] = 0.0
        points /= np.linalg.norm(points, axis=1, keepdims=True)
        query = np.zeros(12)
        query[0] = 1.0
        sampler = FilterFairSampler(alpha=0.9, beta=0.5, num_structures=4, seed=4).fit(points)
        assert sampler.sample(query) is None

    def test_occurrence_counts_bounded_by_structures(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], seed=5, num_structures=4)
        gathered = sampler._gather_buckets(np.asarray(planted_unit_vectors["query"], dtype=float))
        counts = sampler._occurrence_counts(gathered)
        assert counts and max(counts.values()) <= 4


class TestUniformityAndIndependence:
    def test_repeated_query_is_uniform_over_near_neighbors(self, planted_unit_vectors):
        """Theorem 4: every point of B(q, alpha) is reported equally often."""
        sampler = make_sampler(planted_unit_vectors["points"], seed=6, num_structures=8)
        reachable = planted_unit_vectors["near_indices"]
        counts = {i: 0 for i in reachable}
        repetitions = 1500
        failures = 0
        for _ in range(repetitions):
            index = sampler.sample(planted_unit_vectors["query"])
            if index is None:
                failures += 1
            else:
                counts[index] += 1
        assert failures < 0.05 * repetitions
        assert total_variation_from_uniform(list(counts.values())) < 0.15

    def test_outputs_vary_between_repetitions(self, planted_unit_vectors):
        sampler = make_sampler(planted_unit_vectors["points"], seed=7)
        outputs = [sampler.sample(planted_unit_vectors["query"]) for _ in range(40)]
        assert len(set(outputs)) > 1

"""Unit contract of the write-ahead log and the chaos-injection harness.

The WAL (:mod:`repro.engine.wal`) is the durability spine of the serving
stack, so its mechanics are pinned file-format-first:

* append/replay round-trips, segment rotation and naming, scan reports;
* **torn tail** (a final record cut short by a crash) is truncated on open
  and its sequence number reused — never an error;
* **mid-log damage** (bit rot before valid data, bad magic, a missing
  segment) raises :class:`~repro.exceptions.WALCorruptError` — replaying
  past it could apply a divergent history;
* a failed append (disk full) raises
  :class:`~repro.exceptions.WALWriteError`, consumes no sequence number,
  and the partial write it may have left is repaired before the next
  append lands;
* fsync policies: ``always`` syncs per append, ``interval`` by an
  injectable clock, ``off`` only flushes;
* ``truncate_through`` removes exactly the whole segments a checkpoint
  covers.

The :class:`~repro.testing.FaultInjector` used to manufacture these
failures is itself under test here (arm/after/times semantics).
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.engine.wal import FSYNC_POLICIES, WALRecord, WriteAheadLog, _MAGIC
from repro.exceptions import InvalidParameterError, WALCorruptError, WALWriteError
from repro.testing import FaultInjector, flip_byte, raise_disk_full, tear_tail


def _payloads(n):
    return [{"op": "insert", "points": [i], "key": None} for i in range(n)]


def _fill(directory, n, **kwargs):
    wal = WriteAheadLog.open(directory, **kwargs)
    for payload in _payloads(n):
        wal.append(payload)
    wal.close()
    return wal


def _replayed(directory, after_seq=-1):
    wal = WriteAheadLog.open(directory)
    try:
        return list(wal.replay(after_seq=after_seq))
    finally:
        wal.close()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Round trips, format, rotation
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_append_replay_round_trip(self, tmp_path):
        _fill(tmp_path / "wal", 5)
        records = _replayed(tmp_path / "wal")
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        assert records == [WALRecord(seq=i, payload=p) for i, p in enumerate(_payloads(5))]

    def test_replay_after_seq_skips_prefix(self, tmp_path):
        _fill(tmp_path / "wal", 6)
        assert [r.seq for r in _replayed(tmp_path / "wal", after_seq=3)] == [4, 5]

    def test_reopen_continues_sequence(self, tmp_path):
        _fill(tmp_path / "wal", 3)
        wal = WriteAheadLog.open(tmp_path / "wal")
        assert wal.next_seq == 3
        assert wal.last_seq == 2
        wal.append({"op": "delete", "index": 0, "key": None})
        wal.close()
        assert [r.seq for r in _replayed(tmp_path / "wal")] == [0, 1, 2, 3]

    def test_segment_magic_and_naming(self, tmp_path):
        _fill(tmp_path / "wal", 2)
        (segment,) = sorted((tmp_path / "wal").iterdir())
        assert segment.name == f"segment-{0:020d}.wal"
        assert segment.read_bytes().startswith(_MAGIC)

    def test_rotation_splits_segments_and_replays_across(self, tmp_path):
        _fill(tmp_path / "wal", 10, segment_max_bytes=64)
        segments = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert len(segments) > 1
        # Segment names are the first sequence number they hold.
        assert segments[0] == f"segment-{0:020d}.wal"
        assert [r.seq for r in _replayed(tmp_path / "wal")] == list(range(10))

    def test_scan_report(self, tmp_path):
        _fill(tmp_path / "wal", 7, segment_max_bytes=64)
        wal = WriteAheadLog(tmp_path / "wal")
        report = wal.scan()
        assert report.records == 7
        assert report.last_seq == 6
        assert report.torn_tail is None
        assert len(report.segments) > 1

    def test_empty_wal(self, tmp_path):
        wal = WriteAheadLog.open(tmp_path / "wal")
        assert wal.next_seq == 0
        assert wal.last_seq == -1
        assert list(wal.replay()) == []
        wal.close()

    def test_append_counters(self, tmp_path):
        wal = WriteAheadLog.open(tmp_path / "wal")
        wal.append({"op": "insert", "points": [1], "key": None})
        wal.append({"op": "insert", "points": [2], "key": None})
        assert wal.appended_records == 2
        assert wal.appended_bytes > 0
        wal.close()

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(tmp_path / "wal", fsync="sometimes")
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(tmp_path / "wal", fsync_interval=0.0)
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(tmp_path / "wal", segment_max_bytes=4)


# ----------------------------------------------------------------------
# Torn tails: expected crash residue, repaired on open
# ----------------------------------------------------------------------
class TestTornTail:
    @pytest.mark.parametrize("drop_bytes", [1, 3, 9])
    def test_torn_tail_truncated_and_seq_reused(self, tmp_path, drop_bytes):
        _fill(tmp_path / "wal", 4)
        (segment,) = (tmp_path / "wal").iterdir()
        tear_tail(segment, drop_bytes)

        wal = WriteAheadLog(tmp_path / "wal")
        report = wal.scan()
        assert report.torn_tail is not None
        assert report.last_seq == 2  # record 3 is the torn one

        wal = WriteAheadLog.open(tmp_path / "wal")
        assert wal.next_seq == 3  # the torn record's seq is reused
        wal.append({"op": "insert", "points": ["replacement"], "key": None})
        wal.close()
        records = _replayed(tmp_path / "wal")
        assert [r.seq for r in records] == [0, 1, 2, 3]
        assert records[-1].payload["points"] == ["replacement"]

    def test_torn_header_only_record(self, tmp_path):
        _fill(tmp_path / "wal", 2)
        (segment,) = (tmp_path / "wal").iterdir()
        # Leave just 4 bytes of the final record's 16-byte header.
        blob = pickle.dumps(_payloads(2)[1], protocol=pickle.HIGHEST_PROTOCOL)
        tear_tail(segment, drop_bytes=len(blob) + struct.calcsize(">QII") - 4)
        wal = WriteAheadLog.open(tmp_path / "wal")
        assert wal.next_seq == 1
        wal.close()

    def test_replay_tolerates_torn_tail_without_repair(self, tmp_path):
        """A read-only replay (no open()) stops cleanly before the tear."""
        _fill(tmp_path / "wal", 3)
        (segment,) = (tmp_path / "wal").iterdir()
        tear_tail(segment, 2)
        wal = WriteAheadLog(tmp_path / "wal")
        assert [r.seq for r in wal.replay()] == [0, 1]

    def test_torn_first_record_of_fresh_segment(self, tmp_path):
        """Tear everything back to the magic: zero records, seq 0 reused."""
        _fill(tmp_path / "wal", 1)
        (segment,) = (tmp_path / "wal").iterdir()
        tear_tail(segment, segment.stat().st_size - len(_MAGIC))
        wal = WriteAheadLog.open(tmp_path / "wal")
        assert wal.next_seq == 0
        wal.close()


# ----------------------------------------------------------------------
# Mid-log damage: typed corruption, never silent
# ----------------------------------------------------------------------
class TestCorruption:
    def test_bit_flip_before_valid_data_is_fatal(self, tmp_path):
        _fill(tmp_path / "wal", 4)
        (segment,) = (tmp_path / "wal").iterdir()
        # Flip a byte inside the *first* record's payload: damage followed
        # by more data is not a torn tail.
        flip_byte(segment, len(_MAGIC) + struct.calcsize(">QII") + 2)
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WALCorruptError, match="not a torn tail"):
            wal.scan()
        with pytest.raises(WALCorruptError):
            list(wal.replay())

    def test_bad_magic_is_fatal(self, tmp_path):
        _fill(tmp_path / "wal", 2)
        (segment,) = (tmp_path / "wal").iterdir()
        flip_byte(segment, 0)
        with pytest.raises(WALCorruptError, match="magic"):
            WriteAheadLog(tmp_path / "wal").scan()

    def test_missing_segment_is_fatal(self, tmp_path):
        _fill(tmp_path / "wal", 10, segment_max_bytes=64)
        segments = sorted((tmp_path / "wal").iterdir())
        assert len(segments) >= 3
        segments[1].unlink()
        with pytest.raises(WALCorruptError, match="missing or renamed"):
            WriteAheadLog(tmp_path / "wal").scan()

    def test_corrupt_error_carries_location(self, tmp_path):
        _fill(tmp_path / "wal", 3)
        (segment,) = (tmp_path / "wal").iterdir()
        flip_byte(segment, len(_MAGIC) + 1)
        with pytest.raises(WALCorruptError) as excinfo:
            WriteAheadLog(tmp_path / "wal").scan()
        assert excinfo.value.path == str(segment)
        assert excinfo.value.offset == len(_MAGIC)

    def test_torn_tail_on_non_final_segment_is_fatal(self, tmp_path):
        _fill(tmp_path / "wal", 10, segment_max_bytes=64)
        segments = sorted((tmp_path / "wal").iterdir())
        tear_tail(segments[0], 2)
        with pytest.raises(WALCorruptError):
            WriteAheadLog(tmp_path / "wal").scan()


# ----------------------------------------------------------------------
# Write failures: disk full mid-append
# ----------------------------------------------------------------------
class TestWriteFailure:
    def test_disk_full_raises_wal_write_error_and_repairs(self, tmp_path):
        faults = FaultInjector()
        wal = WriteAheadLog.open(tmp_path / "wal", fault_injector=faults)
        wal.append(_payloads(1)[0])
        faults.arm("wal.flush", raise_disk_full)  # header+payload written, flush fails
        with pytest.raises(WALWriteError):
            wal.append({"op": "insert", "points": ["lost"], "key": None})
        # The failed append consumed no sequence number...
        assert wal.next_seq == 1
        # ...and the next append repairs the torn bytes the failure left.
        wal.append({"op": "insert", "points": ["kept"], "key": None})
        wal.close()
        records = _replayed(tmp_path / "wal")
        assert [r.payload["points"] for r in records] == [[0], ["kept"]]

    def test_append_on_closed_wal_raises(self, tmp_path):
        wal = WriteAheadLog.open(tmp_path / "wal")
        wal.close()
        with pytest.raises(WALWriteError, match="closed"):
            wal.append(_payloads(1)[0])


# ----------------------------------------------------------------------
# Fsync policies
# ----------------------------------------------------------------------
class TestFsyncPolicies:
    def test_policy_tuple(self):
        assert FSYNC_POLICIES == ("always", "interval", "off")

    def _syncs_for(self, tmp_path, n, **kwargs):
        faults = FaultInjector()
        faults.arm("wal.fsync", lambda: None, times=None)
        wal = WriteAheadLog.open(tmp_path / "wal", fault_injector=faults, **kwargs)
        for payload in _payloads(n):
            wal.append(payload)
        appended = faults.fired("wal.fsync")
        wal.close()
        return appended

    def test_always_syncs_every_append(self, tmp_path):
        assert self._syncs_for(tmp_path, 5, fsync="always") == 5

    def test_off_never_syncs_on_append(self, tmp_path):
        assert self._syncs_for(tmp_path, 5, fsync="off") == 0

    def test_interval_syncs_by_clock(self, tmp_path):
        clock = FakeClock()
        faults = FaultInjector()
        faults.arm("wal.fsync", lambda: None, times=None)
        wal = WriteAheadLog.open(
            tmp_path / "wal",
            fsync="interval",
            fsync_interval=10.0,
            fault_injector=faults,
            _clock=clock,
        )
        wal.append(_payloads(1)[0])
        assert faults.fired("wal.fsync") == 0  # within the interval
        clock.now += 11.0
        wal.append(_payloads(1)[0])
        assert faults.fired("wal.fsync") == 1  # interval elapsed
        wal.append(_payloads(1)[0])
        assert faults.fired("wal.fsync") == 1  # timer re-anchored
        wal.close()


# ----------------------------------------------------------------------
# Truncation after checkpoints
# ----------------------------------------------------------------------
class TestTruncation:
    def test_truncate_through_removes_whole_segments(self, tmp_path):
        _fill(tmp_path / "wal", 10, segment_max_bytes=64)
        before = len(sorted((tmp_path / "wal").iterdir()))
        wal = WriteAheadLog.open(tmp_path / "wal", segment_max_bytes=64)
        removed = wal.truncate_through(6)
        wal.close()
        assert removed > 0
        # Everything after seq 6 must still replay.
        assert [r.seq for r in _replayed(tmp_path / "wal", after_seq=6)] == [7, 8, 9]
        assert len(sorted((tmp_path / "wal").iterdir())) == before - removed

    def test_truncate_keeps_straddling_segment(self, tmp_path):
        # ~3 records per segment, so the first segment straddles seq 0.
        _fill(tmp_path / "wal", 10, segment_max_bytes=200)
        wal = WriteAheadLog.open(tmp_path / "wal", segment_max_bytes=200)
        first = sorted(p.name for p in (tmp_path / "wal").iterdir())[0]
        assert first == f"segment-{0:020d}.wal"
        wal.truncate_through(0)  # first segment holds seqs beyond 0: kept
        wal.close()
        assert [r.seq for r in _replayed(tmp_path / "wal")] == list(range(10))

    def test_truncate_everything_then_append_continues(self, tmp_path):
        _fill(tmp_path / "wal", 6, segment_max_bytes=64)
        wal = WriteAheadLog.open(tmp_path / "wal", segment_max_bytes=64)
        wal.truncate_through(5)
        assert wal.next_seq == 6
        wal.append({"op": "insert", "points": ["post"], "key": None})
        wal.close()
        assert [r.seq for r in _replayed(tmp_path / "wal")] == [6]


# ----------------------------------------------------------------------
# The fault injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_unarmed_site_is_noop(self):
        FaultInjector().fire("anything")

    def test_after_skips_then_fires_times(self):
        hits = []
        faults = FaultInjector()
        faults.arm("site", lambda: hits.append(1), after=2, times=2)
        for _ in range(6):
            faults.fire("site")
        assert len(hits) == 2
        assert faults.fired("site") == 2

    def test_times_none_is_unlimited(self):
        faults = FaultInjector()
        faults.arm("site", lambda: None, times=None)
        for _ in range(7):
            faults.fire("site")
        assert faults.fired("site") == 7

    def test_disarm(self):
        faults = FaultInjector()
        faults.arm("site", raise_disk_full)
        faults.disarm("site")
        faults.fire("site")  # no raise

    def test_armed_action_raises_through(self):
        faults = FaultInjector()
        faults.arm("site", raise_disk_full)
        with pytest.raises(OSError):
            faults.fire("site")

    def test_invalid_arm_parameters(self):
        faults = FaultInjector()
        with pytest.raises(InvalidParameterError):
            faults.arm("site", "not-callable")
        with pytest.raises(InvalidParameterError):
            faults.arm("site", lambda: None, after=-1)
        with pytest.raises(InvalidParameterError):
            faults.arm("site", lambda: None, times=0)


class TestFileHelpers:
    def test_tear_tail_and_flip_byte(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"abcdef")
        assert tear_tail(path, 2) == 4
        assert path.read_bytes() == b"abcd"
        flip_byte(path, 0)
        assert path.read_bytes()[0] == ord("a") ^ 0xFF
        flip_byte(path, -1)  # negative offsets index from the end
        assert path.read_bytes()[-1] == ord("d") ^ 0xFF

"""Tests for the weighted fair sampler (the paper's future-work extension)."""

import pytest

from repro.core import (
    ExactUniformSampler,
    IndependentFairSampler,
    WeightedFairSampler,
    exponential_similarity_weight,
    inverse_distance_weight,
)
from repro.distances import JaccardSimilarity
from repro.exceptions import InvalidParameterError
from repro.lsh import MinHashFamily


def make_base(planted_sets, seed=0):
    return IndependentFairSampler(
        MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
        num_hashes=1, num_tables=50, seed=seed,
    )


class TestConstruction:
    def test_invalid_max_weight(self, planted_sets):
        with pytest.raises(InvalidParameterError):
            WeightedFairSampler(make_base(planted_sets), weight=lambda v: v, max_weight=0.0)

    def test_invalid_max_attempts(self, planted_sets):
        with pytest.raises(InvalidParameterError):
            WeightedFairSampler(
                make_base(planted_sets), weight=lambda v: v, max_weight=1.0, max_attempts=0
            )

    def test_fit_fits_base(self, planted_sets):
        sampler = WeightedFairSampler(
            make_base(planted_sets), weight=lambda v: v, max_weight=1.0, seed=1
        ).fit(planted_sets["dataset"])
        assert sampler.num_points == len(planted_sets["dataset"])

    def test_adopts_prefitted_base(self, planted_sets):
        base = make_base(planted_sets).fit(planted_sets["dataset"])
        sampler = WeightedFairSampler(base, weight=lambda v: 1.0, max_weight=1.0, seed=2)
        assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

    def test_negative_weight_rejected_at_query_time(self, planted_sets):
        sampler = WeightedFairSampler(
            make_base(planted_sets), weight=lambda v: -1.0, max_weight=1.0, seed=3
        ).fit(planted_sets["dataset"])
        with pytest.raises(InvalidParameterError):
            sampler.sample(planted_sets["query"])


class TestDistribution:
    def test_constant_weight_stays_uniform(self, planted_sets):
        from repro.fairness.metrics import total_variation_from_uniform

        sampler = WeightedFairSampler(
            make_base(planted_sets, seed=4), weight=lambda v: 1.0, max_weight=1.0, seed=4
        ).fit(planted_sets["dataset"])
        counts = {i: 0 for i in planted_sets["near_indices"]}
        for _ in range(1200):
            index = sampler.sample(planted_sets["query"])
            if index is not None:
                counts[index] += 1
        assert total_variation_from_uniform(list(counts.values())) < 0.12

    def test_exponential_weight_prefers_similar_points(self, planted_sets, jaccard):
        weight = exponential_similarity_weight(scale=8.0)
        sampler = WeightedFairSampler(
            make_base(planted_sets, seed=5), weight=weight, max_weight=weight(1.0), seed=5
        ).fit(planted_sets["dataset"])
        counts = {i: 0 for i in planted_sets["near_indices"]}
        for _ in range(1500):
            index = sampler.sample(planted_sets["query"])
            if index is not None:
                counts[index] += 1
        similarities = {
            i: jaccard.value(planted_sets["dataset"][i], planted_sets["query"])
            for i in planted_sets["near_indices"]
        }
        most_similar = max(similarities, key=similarities.get)
        least_similar = min(similarities, key=similarities.get)
        assert counts[most_similar] > counts[least_similar]

    def test_empirical_distribution_tracks_weights(self, planted_sets, jaccard):
        """Sampling frequencies are proportional to the weights (chi-square style check)."""
        weight = exponential_similarity_weight(scale=4.0)
        base = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=6)
        sampler = WeightedFairSampler(
            base, weight=weight, max_weight=weight(1.0), seed=6
        ).fit(planted_sets["dataset"])
        repetitions = 4000
        counts = {i: 0 for i in planted_sets["near_indices"]}
        for _ in range(repetitions):
            index = sampler.sample(planted_sets["query"])
            if index is not None:
                counts[index] += 1
        weights = {
            i: weight(jaccard.value(planted_sets["dataset"][i], planted_sets["query"]))
            for i in planted_sets["near_indices"]
        }
        total_weight = sum(weights.values())
        total_count = sum(counts.values())
        for index in planted_sets["near_indices"]:
            expected = weights[index] / total_weight
            observed = counts[index] / total_count
            assert observed == pytest.approx(expected, abs=0.06)

    def test_returns_none_without_neighbors(self, planted_sets):
        sampler = WeightedFairSampler(
            make_base(planted_sets, seed=7), weight=lambda v: 1.0, max_weight=1.0, seed=7
        ).fit(planted_sets["dataset"])
        assert sampler.sample(frozenset({9999})) is None


class TestWeightHelpers:
    def test_exponential_weight_monotone(self):
        weight = exponential_similarity_weight(2.0)
        assert weight(0.9) > weight(0.5) > weight(0.1)

    def test_exponential_weight_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            exponential_similarity_weight(-1.0)

    def test_inverse_distance_weight_monotone(self):
        weight = inverse_distance_weight(epsilon=0.01)
        assert weight(0.1) > weight(1.0) > weight(10.0)

    def test_inverse_distance_weight_invalid_epsilon(self):
        with pytest.raises(InvalidParameterError):
            inverse_distance_weight(0.0)

"""Fault-injection harness for the process-parallel shard workers.

The crash-recovery contract of :class:`~repro.engine.procpool.
ProcessShardedEngine` is pinned here end to end:

* a worker killed **mid-batch** (SIGKILL via an injectable
  :class:`~repro.engine.procpool.FaultPlan`) surfaces as a typed
  :class:`~repro.exceptions.WorkerCrashedError` — never a hang — carrying
  the failed shard and restart count;
* the supervisor restarts the worker from its shard baseline and **replays**
  the logged mutations, so the very next run of the same batch is
  byte-identical to unsharded serving;
* hung workers (the ``"hang"`` fault mode) are detected by the reply
  timeout and handled exactly like crashes;
* crashes during mutation replication never fail the mutation — the parent
  is authoritative — and are absorbed by restart + replay;
* the HTTP layer maps :class:`WorkerCrashedError` to a retryable ``503``;
* ``close()`` stays idempotent under concurrent callers for both sharded
  engine flavours (the snapshot-swap drain vs facade-teardown race).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import FairNN, FairNNClient, FairNNServer
from repro.engine import BatchQueryEngine, ShardedEngine
from repro.engine.procpool import FaultPlan, ProcessShardedEngine
from repro.exceptions import WorkerCrashedError
from repro.server.client import ServerHTTPError
from repro.spec import EngineSpec, LSHSpec, SamplerSpec

from test_sharded import (
    SET_PARAMS,
    _assert_identical,
    _make_sampler,
    _workload,
)

SEED = 7


def _engine_spec(executor="process", n_shards=2):
    return EngineSpec(
        samplers={
            "permutation": SamplerSpec(
                "permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=SEED
            )
        },
        n_shards=n_shards,
        executor=executor,
    )


def _build_pair(dataset, n_shards=2, **kwargs):
    """An unsharded reference engine and a process-executor twin."""
    reference = BatchQueryEngine.build(_make_sampler("permutation"), dataset)
    engine = ProcessShardedEngine.build(
        _make_sampler("permutation"), dataset, n_shards=n_shards, **kwargs
    )
    return reference, engine


class TestWorkerKilledMidBatch:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_typed_error_restart_and_identical_recovery(self, n_shards):
        rng = np.random.default_rng(42)
        dataset, queries, inserts, doomed = _workload(rng)
        reference, engine = _build_pair(dataset, n_shards=n_shards)
        try:
            # Churn before the crash so the restart has mutations to replay.
            reference.insert_many(inserts)
            engine.insert_many(inserts)
            for index in doomed[:5]:
                reference.delete(index)
                engine.delete(index)
            expected = reference.run(queries)

            engine.inject_fault(FaultPlan(shard_index=0, kill_after_queries=1))
            with pytest.raises(WorkerCrashedError) as excinfo:
                engine.run(queries)
            assert excinfo.value.shard_index == 0
            assert excinfo.value.restarts == 1

            # The supervisor already restarted + replayed: the same batch now
            # answers byte-identically, and again on a second run.
            _assert_identical(expected, engine.run(queries))
            _assert_identical(expected, engine.run(queries))
            counters = engine.stats_dict()["counters"]
            assert counters["worker_restarts"] == 1
            assert counters["mutations_replayed"] > 0
        finally:
            reference_close = getattr(reference, "close", None)
            if reference_close:
                reference_close()
            engine.close()

    def test_fault_plans_are_one_shot(self):
        rng = np.random.default_rng(43)
        dataset, queries, _, _ = _workload(rng)
        reference, engine = _build_pair(dataset)
        try:
            expected = reference.run(queries)
            engine.inject_fault(FaultPlan(shard_index=1, kill_after_queries=1))
            with pytest.raises(WorkerCrashedError):
                engine.run(queries)
            # The restarted worker must not be re-armed: every later batch
            # serves normally.
            for _ in range(3):
                _assert_identical(expected, engine.run(queries))
            assert engine.stats_dict()["counters"]["worker_restarts"] == 1
        finally:
            engine.close()

    def test_all_workers_killed_reports_aggregate(self):
        rng = np.random.default_rng(44)
        dataset, queries, _, _ = _workload(rng)
        reference, engine = _build_pair(dataset)
        try:
            expected = reference.run(queries)
            engine.inject_fault(FaultPlan(kill_after_queries=1))  # every shard
            with pytest.raises(WorkerCrashedError) as excinfo:
                engine.run(queries)
            assert excinfo.value.shard_index is None  # several died
            assert excinfo.value.restarts == 2
            _assert_identical(expected, engine.run(queries))
        finally:
            engine.close()


class TestHungWorker:
    def test_hang_is_detected_by_timeout_and_recovered(self):
        rng = np.random.default_rng(45)
        dataset, queries, _, _ = _workload(rng)
        reference, engine = _build_pair(dataset, reply_timeout=1.5)
        try:
            expected = reference.run(queries)
            engine.inject_fault(FaultPlan(shard_index=0, kill_after_queries=1, mode="hang"))
            with pytest.raises(WorkerCrashedError):
                engine.run(queries)  # must fail fast, not hang the suite
            _assert_identical(expected, engine.run(queries))
        finally:
            engine.close()


class TestCrashDuringMutation:
    def test_mutation_never_fails_and_replica_recovers(self):
        rng = np.random.default_rng(46)
        dataset, queries, inserts, _ = _workload(rng)
        reference, engine = _build_pair(dataset)
        try:
            engine.inject_fault(FaultPlan(shard_index=0, kill_after_mutations=1, mode="exit"))
            # The insert must succeed: the parent tables are authoritative and
            # the replica's copy is recovered by restart + replay.
            engine.insert_many(inserts)
            reference.insert_many(inserts)
            expected = reference.run(queries)
            try:
                first = engine.run(queries)
            except WorkerCrashedError:
                # The corpse may only be noticed at the next exchange; the
                # batch after the restart must be exact either way.
                first = engine.run(queries)
            _assert_identical(expected, first)
            counters = engine.stats_dict()["counters"]
            assert counters["worker_restarts"] == 1
            assert counters["mutations_replayed"] > 0
        finally:
            engine.close()


class TestSupervisorHealth:
    def test_health_check_restarts_dead_workers(self):
        rng = np.random.default_rng(47)
        dataset, queries, _, _ = _workload(rng)
        reference, engine = _build_pair(dataset)
        try:
            pid_before = engine.supervisor.worker_pids()[1]
            engine.inject_fault(
                FaultPlan(shard_index=1, kill_after_mutations=1, mode="kill")
            )
            # Two inserts so round-robin placement reaches shard 1 whatever
            # parity the dataset length left the cursor at.
            engine.insert_many([frozenset({1, 2, 3}), frozenset({4, 5, 6})])
            reference.insert_many([frozenset({1, 2, 3}), frozenset({4, 5, 6})])
            health = engine.supervisor.health_check()
            assert health[1] is False  # found dead, then restarted
            assert engine.supervisor.health_check() == {0: True, 1: True}
            assert engine.supervisor.worker_pids()[1] != pid_before
            _assert_identical(reference.run(queries), engine.run(queries))
        finally:
            engine.close()


class TestServerMapsCrashTo503:
    def test_worker_crash_is_a_retryable_503(self, small_set_dataset):
        nn = FairNN(_engine_spec()).serve(list(small_set_dataset))
        engine = nn.engine("permutation")
        assert isinstance(engine, ProcessShardedEngine)
        with FairNNServer(nn) as server:
            # The default client would *retry* the 503 (it is sent with
            # Retry-After: 1 precisely because the supervisor has already
            # restarted the shard) and succeed transparently; observe the
            # raw status with retries off.
            client = FairNNClient(server.url, retries=0)
            queries = list(small_set_dataset)[:3]
            baseline = client.sample_batch(queries)
            engine.inject_fault(FaultPlan(shard_index=0, kill_after_queries=1))
            with pytest.raises(ServerHTTPError) as excinfo:
                client.sample_batch(queries)
            assert excinfo.value.status == 503
            assert "died mid-batch" in str(excinfo.value)
            # Retrying the exact request succeeds against the restarted fleet.
            assert client.sample_batch(queries) == baseline
            stats = client.stats()["samplers"]["permutation"]
            assert stats["executor"] == "process"
            assert stats["counters"]["worker_restarts"] == 1


class TestConcurrentCloseIdempotency:
    """close() raced from many threads runs its teardown exactly once.

    Regression for the snapshot-swap drain vs facade-teardown race: both
    paths call ``close()`` on the superseded engine, potentially at the same
    instant from different threads.
    """

    @pytest.mark.parametrize("flavour", ["thread", "process"])
    def test_racing_closers_are_safe(self, flavour):
        rng = np.random.default_rng(48)
        dataset, queries, _, _ = _workload(rng, n=60)
        if flavour == "thread":
            engine = ShardedEngine.build(_make_sampler("permutation"), dataset, n_shards=2)
        else:
            engine = ProcessShardedEngine.build(
                _make_sampler("permutation"), dataset, n_shards=2
            )
        engine.run(queries[:3])
        shutdowns = []
        original = engine._shutdown

        def _counting_shutdown():
            shutdowns.append(threading.get_ident())
            original()

        engine._shutdown = _counting_shutdown
        barrier = threading.Barrier(8)
        errors = []

        def _racer():
            barrier.wait()
            try:
                engine.close()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=_racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(shutdowns) == 1  # teardown ran exactly once
        engine.close()  # and repeated sequential closes stay no-ops

"""Crash recovery: checkpoint + WAL replay is byte-identical to never crashing.

The durability contract of ``FairNN.serve(data_dir=...)`` is pinned here end
to end, for all three executors (unsharded, thread-sharded, process-sharded):

* apply a random interleaving of insert/delete batches, kill the facade at a
  random point (simulated crash: the WAL flushes per append, so dropping the
  process loses nothing), then :meth:`FairNN.recover` — the recovered facade
  answers **byte-identically** to a reference facade that applied the same
  mutation prefix and never crashed, and keeps doing so as both sides apply
  the rest of the history;
* a **torn final WAL record** (death mid-append) is truncated on recovery:
  the recovered facade matches a reference that never saw that mutation —
  which is exactly what the crashed process applied;
* a real ``SIGKILL``-ed child process leaves a directory the parent recovers
  from (no simulation shortcuts);
* mid-history checkpoints only shorten replay, never change the answers;
* idempotency keys ride inside WAL records, so the retry-dedup window
  survives the crash;
* RNG-backed samplers (whose query stream is not journaled) still recover
  **deterministically**: two recoveries of the same directory are identical.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import FairNN
from repro.engine.requests import QueryRequest
from repro.exceptions import InvalidParameterError, SnapshotCorruptError
from repro.spec import LSHSpec, SamplerSpec
from repro.testing import tear_tail

SEED = 7
PARAMS = {"radius": 0.35, "num_hashes": 2, "num_tables": 6}


def _spec(sampler="permutation", seed=SEED):
    return SamplerSpec(sampler, dict(PARAMS), lsh=LSHSpec("minhash"), seed=seed)


def _dataset(seed=2, n=30):
    rng = np.random.default_rng(seed)
    return [
        frozenset(int(x) for x in rng.choice(300, size=rng.integers(8, 20)))
        for _ in range(n)
    ]


def _gen_ops(rng, pool, n_ops, initial_count):
    """A valid random mutation history: inserts from ``pool``, live deletes."""
    count, dead, ops = initial_count, set(), []
    for _ in range(n_ops):
        if count - len(dead) > 3 and rng.random() < 0.4:
            while True:
                index = int(rng.integers(0, count))
                if index not in dead:
                    break
            dead.add(index)
            ops.append(("delete", index))
        else:
            batch = [pool[int(i)] for i in rng.integers(0, len(pool), size=rng.integers(1, 4))]
            ops.append(("insert", batch))
            count += len(batch)
    return ops


def _apply(nn, ops):
    for op in ops:
        if op[0] == "insert":
            nn.insert_many(op[1])
        else:
            nn.delete(op[1])


def _assert_byte_identical(left, right, queries):
    requests = [QueryRequest(query=q, k=3, replacement=False) for q in queries]
    for a, b in zip(left.run(requests), right.run(requests)):
        assert a.indices == b.indices
        assert a.value == b.value
        assert a.stats == b.stats


EXECUTOR_KWARGS = {
    "unsharded": {},
    "thread": {"shards": 2},
    "process": {"shards": 2, "executor": "process"},
}

#: (executor, history seed) — the process executor gets fewer seeds because
#: each case spawns six worker processes (3 facades x 2 shards).
CASES = [
    ("unsharded", 0),
    ("unsharded", 1),
    ("unsharded", 2),
    ("thread", 0),
    ("thread", 1),
    ("thread", 2),
    ("process", 0),
    ("process", 1),
]


# ----------------------------------------------------------------------
# The core property: random history x random kill point, every executor
# ----------------------------------------------------------------------
class TestRandomKillPoint:
    @pytest.mark.parametrize("executor,seed", CASES)
    def test_recovery_is_byte_identical(self, executor, seed, tmp_path):
        rng = np.random.default_rng(100 + seed)
        dataset = _dataset(seed=seed)
        pool = _dataset(seed=1000 + seed, n=20)
        ops = _gen_ops(rng, pool, n_ops=12, initial_count=len(dataset))
        kill = int(rng.integers(1, len(ops) + 1))
        checkpoint_at = int(rng.integers(0, kill))
        queries = dataset[:5] + pool[:3]
        kwargs = EXECUTOR_KWARGS[executor]

        nn = FairNN.from_spec(_spec()).serve(
            dataset, data_dir=tmp_path / "d", fsync="off", **kwargs
        )
        try:
            _apply(nn, ops[:checkpoint_at])
            nn.checkpoint()
            _apply(nn, ops[checkpoint_at:kill])
        finally:
            # Simulated kill: per-append flush means a dead process loses
            # nothing the OS already holds; close() only releases resources.
            nn.close()

        recovered = FairNN.recover(tmp_path / "d")
        reference = FairNN.from_spec(_spec()).serve(dataset, **kwargs)
        try:
            _apply(reference, ops[:kill])
            _assert_byte_identical(recovered, reference, queries)
            # The recovered facade is a full serving facade: applying the
            # rest of the history keeps it in lockstep.
            _apply(recovered, ops[kill:])
            _apply(reference, ops[kill:])
            _assert_byte_identical(recovered, reference, queries)
        finally:
            recovered.close()
            reference.close()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_property_random_interleavings(self, data):
        """Hypothesis sweep over histories, kill points and checkpoints."""
        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_ops = data.draw(st.integers(1, 14), label="n_ops")
        rng = np.random.default_rng(seed)
        dataset = _dataset(seed=seed % 97)
        pool = _dataset(seed=5000 + seed % 97, n=15)
        ops = _gen_ops(rng, pool, n_ops=n_ops, initial_count=len(dataset))
        kill = data.draw(st.integers(1, len(ops)), label="kill")
        checkpoint_at = data.draw(st.integers(0, kill), label="checkpoint_at")
        queries = dataset[:4] + pool[:2]

        tmp = Path(tempfile.mkdtemp(prefix="crash-recovery-"))
        recovered = reference = None
        try:
            nn = FairNN.from_spec(_spec()).serve(
                dataset, data_dir=tmp / "d", fsync="off"
            )
            try:
                _apply(nn, ops[:checkpoint_at])
                nn.checkpoint()
                _apply(nn, ops[checkpoint_at:kill])
            finally:
                nn.close()
            recovered = FairNN.recover(tmp / "d")
            reference = FairNN.from_spec(_spec()).serve(dataset)
            _apply(reference, ops[:kill])
            _assert_byte_identical(recovered, reference, queries)
        finally:
            if recovered is not None:
                recovered.close()
            if reference is not None:
                reference.close()
            shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Torn final record: the crash residue the WAL exists for
# ----------------------------------------------------------------------
class TestTornFinalRecord:
    @pytest.mark.parametrize("executor", sorted(EXECUTOR_KWARGS))
    def test_torn_tail_recovers_to_previous_mutation(self, executor, tmp_path):
        rng = np.random.default_rng(9)
        dataset = _dataset(seed=4)
        pool = _dataset(seed=1004, n=20)
        ops = _gen_ops(rng, pool, n_ops=10, initial_count=len(dataset))
        queries = dataset[:5] + pool[:3]
        kwargs = EXECUTOR_KWARGS[executor]

        nn = FairNN.from_spec(_spec()).serve(
            dataset, data_dir=tmp_path / "d", fsync="off", **kwargs
        )
        try:
            _apply(nn, ops)
        finally:
            nn.close()
        # Die mid-append of the final record: shear a few bytes off the tail.
        last_segment = sorted((tmp_path / "d" / "wal").iterdir())[-1]
        tear_tail(last_segment, 5)

        recovered = FairNN.recover(tmp_path / "d")
        reference = FairNN.from_spec(_spec()).serve(dataset, **kwargs)
        try:
            _apply(reference, ops[:-1])  # the torn mutation never applied
            _assert_byte_identical(recovered, reference, queries)
            # The repaired WAL accepts new mutations (the torn record's
            # sequence number is reused) and stays in lockstep.
            _apply(recovered, ops[-1:])
            _apply(reference, ops[-1:])
            _assert_byte_identical(recovered, reference, queries)
        finally:
            recovered.close()
            reference.close()


# ----------------------------------------------------------------------
# A real SIGKILL, not a simulation
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import json, os, signal, sys
from repro import FairNN
from repro.spec import LSHSpec, SamplerSpec

with open(sys.argv[2]) as handle:
    job = json.load(handle)
dataset = [frozenset(point) for point in job["dataset"]]
spec = SamplerSpec(
    "permutation", job["params"], lsh=LSHSpec("minhash"), seed=job["seed"]
)
nn = FairNN.from_spec(spec).serve(dataset, data_dir=sys.argv[1], fsync="off")
for op in job["ops"]:
    if op[0] == "insert":
        nn.insert_many([frozenset(point) for point in op[1]])
    else:
        nn.delete(op[1])
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestRealSigkill:
    def test_parent_recovers_sigkilled_child(self, tmp_path):
        rng = np.random.default_rng(21)
        dataset = _dataset(seed=5)
        pool = _dataset(seed=1005, n=15)
        ops = _gen_ops(rng, pool, n_ops=8, initial_count=len(dataset))
        job = {
            "dataset": [sorted(point) for point in dataset],
            "ops": [
                [op[0], [sorted(p) for p in op[1]]] if op[0] == "insert" else list(op)
                for op in ops
            ],
            "params": PARAMS,
            "seed": SEED,
        }
        job_path = tmp_path / "job.json"
        job_path.write_text(json.dumps(job))

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, str(tmp_path / "d"), str(job_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr

        recovered = FairNN.recover(tmp_path / "d")
        reference = FairNN.from_spec(_spec()).serve(dataset)
        try:
            _apply(reference, ops)
            _assert_byte_identical(recovered, reference, dataset[:5] + pool[:3])
        finally:
            recovered.close()
            reference.close()


# ----------------------------------------------------------------------
# Durable-facade surface: guard rails, idempotency, checkpoints
# ----------------------------------------------------------------------
class TestDurableFacade:
    def test_serve_requires_fresh_directory(self, tmp_path):
        dataset = _dataset()
        nn = FairNN.from_spec(_spec()).serve(dataset, data_dir=tmp_path / "d")
        nn.close()
        with pytest.raises(InvalidParameterError, match="recover"):
            FairNN.from_spec(_spec()).serve(dataset, data_dir=tmp_path / "d")

    def test_serve_data_dir_requires_dynamic_tables(self, tmp_path):
        spec = dataclasses.replace(
            repro.EngineSpec(samplers={"permutation": _spec()}), dynamic=False
        )
        with pytest.raises(InvalidParameterError, match="dynamic"):
            FairNN.from_spec(spec).serve(_dataset(), data_dir=tmp_path / "d")

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises((InvalidParameterError, SnapshotCorruptError)):
            FairNN.recover(tmp_path / "nothing-here")

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="fsync"):
            FairNN.from_spec(_spec()).serve(
                _dataset(), data_dir=tmp_path / "d", fsync="sometimes"
            )

    def test_idempotency_window_survives_recovery(self, tmp_path):
        dataset = _dataset()
        extra = _dataset(seed=77, n=3)
        nn = FairNN.from_spec(_spec()).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        try:
            first = nn.insert_many(extra, idempotency_key="retry-me")
            assert nn.insert_many(extra, idempotency_key="retry-me") == first
        finally:
            nn.close()
        recovered = FairNN.recover(tmp_path / "d")
        try:
            # The ack was lost in the crash; the client retries the same key
            # and gets the original slots, not a second insert.
            assert recovered.insert_many(extra, idempotency_key="retry-me") == first
            assert recovered.num_live_points == len(dataset) + len(extra)
        finally:
            recovered.close()

    def test_delete_idempotency_key(self, tmp_path):
        nn = FairNN.from_spec(_spec()).serve(
            _dataset(), data_dir=tmp_path / "d", fsync="off"
        )
        try:
            before = nn.num_live_points
            nn.delete(3, idempotency_key="del-3")
            nn.delete(3, idempotency_key="del-3")  # deduped, no AlreadyDeleted
            assert nn.num_live_points == before - 1
        finally:
            nn.close()

    def test_doomed_delete_is_never_journaled(self, tmp_path):
        dataset = _dataset()
        nn = FairNN.from_spec(_spec()).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        try:
            journaled = nn.wal.appended_records
            with pytest.raises(repro.SlotOutOfRangeError):
                nn.delete(10_000)
            nn.delete(0)
            with pytest.raises(repro.AlreadyDeletedError):
                nn.delete(0)
            assert nn.wal.appended_records == journaled + 1  # only the valid one
        finally:
            nn.close()

    def test_checkpoint_truncates_and_rotates(self, tmp_path):
        dataset = _dataset()
        pool = _dataset(seed=42, n=10)
        nn = FairNN.from_spec(_spec()).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        try:
            _apply(nn, _gen_ops(np.random.default_rng(0), pool, 6, len(dataset)))
            nn.checkpoint()
            nn.insert_many(pool[:4])
            nn.checkpoint()
            report = nn.durability()
            assert report["durable"] is True
            assert report["wal_fsync"] == "off"
            # Only the newest two checkpoints are kept.
            assert len(report["checkpoints"]) == 2
            live = nn.num_live_points
        finally:
            nn.close()
        recovered = FairNN.recover(tmp_path / "d")
        try:
            assert recovered.num_live_points == live
        finally:
            recovered.close()

    def test_durability_reporting_without_data_dir(self):
        nn = FairNN.from_spec(_spec()).serve(_dataset())
        try:
            assert nn.durability()["durable"] is False
            assert nn.wal is None
            assert nn.data_dir is None
        finally:
            nn.close()


# ----------------------------------------------------------------------
# RNG-backed samplers: determinism of recovery itself
# ----------------------------------------------------------------------
class TestRNGSamplerRecovery:
    def test_two_recoveries_are_identical(self, tmp_path):
        """The query RNG is not journaled, so an RNG-backed sampler cannot
        promise byte-identity with an uninterrupted twin that also served
        queries — but recovery itself must be deterministic: recovering the
        same directory twice yields facades in the exact same state."""
        dataset = _dataset(seed=6)
        pool = _dataset(seed=1006, n=10)
        ops = _gen_ops(np.random.default_rng(3), pool, 8, len(dataset))
        nn = FairNN.from_spec(_spec(sampler="independent")).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        try:
            _apply(nn, ops[:5])
            nn.checkpoint()
            _apply(nn, ops[5:])
            nn.run(dataset[:4])  # consumes query RNG; not journaled, on purpose
        finally:
            nn.close()

        queries = dataset[:6] + pool[:2]
        first = FairNN.recover(tmp_path / "d")
        try:
            first_answers = [r.indices for r in first.run(
                [QueryRequest(query=q, k=3, replacement=True) for q in queries]
            )]
        finally:
            first.close()
        second = FairNN.recover(tmp_path / "d")
        try:
            second_answers = [r.indices for r in second.run(
                [QueryRequest(query=q, k=3, replacement=True) for q in queries]
            )]
        finally:
            second.close()
        assert first_answers == second_answers

    def test_rng_sampler_matches_reference_when_queries_follow_recovery(
        self, tmp_path
    ):
        """With no pre-crash queries, even an RNG-backed sampler recovers
        byte-identically: mutations are replayed from the journal and the
        query RNG stream starts from the persisted state."""
        dataset = _dataset(seed=8)
        pool = _dataset(seed=1008, n=10)
        ops = _gen_ops(np.random.default_rng(4), pool, 8, len(dataset))
        nn = FairNN.from_spec(_spec(sampler="independent")).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        try:
            _apply(nn, ops)
        finally:
            nn.close()
        recovered = FairNN.recover(tmp_path / "d")
        reference = FairNN.from_spec(_spec(sampler="independent")).serve(dataset)
        try:
            _apply(reference, ops)
            _assert_byte_identical(recovered, reference, dataset[:5])
        finally:
            recovered.close()
            reference.close()

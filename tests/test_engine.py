"""Tests for the online serving engine (repro.engine).

Covers the dynamic table layer (inserts, tombstone deletes, amortized
compaction), the batched query engine (parity with per-query execution,
primed-key cache, request validation), sampler attach/notify plumbing,
snapshot round-trips, and — the load-bearing one — the fairness acceptance
test: after heavy churn through the dynamic index, with no refit, a fair
sampler must still pass the same uniformity audit the static structure
passes in ``test_fair_nns.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndependentFairSampler, PermutationFairSampler, StandardLSHSampler
from repro.engine import (
    RANK_DOMAIN,
    BatchQueryEngine,
    DynamicLSHTables,
    EngineStats,
    QueryRequest,
    load_engine,
    save_engine,
)
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.fairness.metrics import total_variation_from_uniform
from repro.lsh import LSHTables, MinHashFamily


def make_engine(dataset, seed=0, num_tables=40, sampler_cls=PermutationFairSampler, **kwargs):
    sampler = sampler_cls(
        MinHashFamily(),
        radius=0.5,
        far_radius=0.05,
        num_hashes=1,
        num_tables=num_tables,
        seed=seed,
    )
    return BatchQueryEngine.build(sampler, dataset, seed=seed, **kwargs)


NEW_NEAR = [frozenset(range(1, 8)), frozenset(list(range(2, 10)) + [33])]
NEW_FAR = [frozenset(range(500 + 10 * i, 510 + 10 * i)) for i in range(6)]


def churn(engine, planted_sets):
    """Delete 30% of the points (2 near, 6 far) and insert replacements.

    Returns the post-churn near-neighbor index set of the planted query.
    """
    for index in [3, 4, 7, 9, 11, 13, 15, 17]:
        engine.delete(index)
    inserted = [engine.insert(point) for point in NEW_NEAR + NEW_FAR]
    return {0, 1, 2, inserted[0], inserted[1]}


class TestDynamicTables:
    def test_insert_returns_stable_indices_and_is_queryable(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=30, seed=0).fit(planted_sets["dataset"])
        new_point = frozenset(range(1, 8))
        index = tables.insert(new_point)
        assert index == len(planted_sets["dataset"])
        assert index in tables.query_candidates(new_point).tolist()
        assert tables.num_points == index + 1
        assert len(tables.dataset) == index + 1

    def test_buckets_stay_rank_sorted_under_inserts(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=20, seed=1).fit(planted_sets["dataset"])
        for i in range(10):
            tables.insert(frozenset(range(i, i + 6)))
        for table in tables._tables:
            for bucket in table.values():
                assert np.all(np.diff(bucket.ranks) >= 0)

    def test_dynamic_ranks_are_drawn_from_the_large_domain(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=5, seed=2).fit(planted_sets["dataset"])
        assert tables.rank_domain == RANK_DOMAIN
        assert tables.ranks.min() >= 0
        assert tables.ranks.max() < RANK_DOMAIN
        # Static tables keep the permutation-sized domain.
        static = LSHTables(MinHashFamily(), l=5, seed=2).fit(planted_sets["dataset"])
        assert static.rank_domain == len(planted_sets["dataset"])

    def test_delete_hides_point_immediately(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=30, seed=3).fit(planted_sets["dataset"])
        query = planted_sets["query"]
        assert 0 in tables.query_candidates(query).tolist()
        tables.delete(0)
        assert 0 not in tables.query_candidates(query).tolist()
        assert tables.num_live == len(planted_sets["dataset"]) - 1

    def test_delete_validates_index(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=5, seed=4).fit(planted_sets["dataset"])
        with pytest.raises(InvalidParameterError):
            tables.delete(len(planted_sets["dataset"]))
        tables.delete(0)
        with pytest.raises(InvalidParameterError):
            tables.delete(0)

    def test_compaction_triggers_and_preserves_candidates(self, planted_sets):
        tables = DynamicLSHTables(
            MinHashFamily(), l=30, seed=5, max_tombstone_fraction=0.2
        ).fit(planted_sets["dataset"])
        query = planted_sets["query"]
        before = set(tables.query_candidates(query).tolist())
        doomed = [5, 6, 8, 10, 12, 14]  # far points only
        for index in doomed:
            tables.delete(index)
        assert tables.rebuilds_triggered >= 1
        # Deletes after the automatic sweep may leave a few pending again.
        assert tables.pending_tombstones < len(doomed)
        after = set(tables.query_candidates(query).tolist())
        assert after == before - set(doomed)
        tables.compact()
        assert tables.pending_tombstones == 0
        for table in tables._tables:
            for bucket in table.values():
                assert len(bucket) > 0
                assert tables.alive[bucket.indices].all()

    def test_compaction_releases_deleted_points(self, planted_sets):
        tables = DynamicLSHTables(
            MinHashFamily(), l=20, seed=7, max_tombstone_fraction=0.9
        ).fit(planted_sets["dataset"])
        tables.delete(5)
        assert tables.dataset[5] is not None  # tombstoned, not yet swept
        tables.compact()
        assert tables.dataset[5] is None  # swept: memory released, slot kept
        assert len(tables.dataset) == len(planted_sets["dataset"])

    def test_single_point_inserts_grow_rank_buffer_amortized(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=10, seed=8).fit(planted_sets["dataset"])
        for i in range(50):
            tables.insert(frozenset({1000 + i, 2000 + i, 3000 + i}))
        assert tables.ranks.shape == (len(planted_sets["dataset"]) + 50,)
        assert tables._ranks_buf.size >= tables.ranks.size
        # The view and the buffer prefix must stay the same memory.
        assert np.shares_memory(tables.ranks, tables._ranks_buf)

    def test_mutation_before_fit_rejected(self):
        tables = DynamicLSHTables(MinHashFamily(), l=3, seed=6)
        with pytest.raises(Exception):
            tables.insert(frozenset({1}))
        with pytest.raises(Exception):
            tables.delete(0)

    def test_invalid_tombstone_fraction_rejected(self):
        with pytest.raises(InvalidParameterError):
            DynamicLSHTables(MinHashFamily(), l=3, max_tombstone_fraction=0.0)

    def test_rankless_tables_reject_explicit_ranks(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=3, seed=9, use_ranks=False)
        with pytest.raises(InvalidParameterError):
            tables.fit(planted_sets["dataset"], ranks=np.arange(len(planted_sets["dataset"])))

    def test_compaction_sweeps_only_pending_tombstones(self, planted_sets):
        """Long-lived indexes: each sweep's work is bounded by the tombstones
        created since the previous sweep, and earlier churn cycles leave no
        per-sweep residue beyond the released slots."""
        tables = DynamicLSHTables(
            MinHashFamily(), l=10, seed=10, max_tombstone_fraction=0.9
        ).fit(planted_sets["dataset"])
        tables.delete(5)
        tables.compact()
        swept_first = tables.rebuilds_triggered
        tables.delete(6)
        assert tables.pending_tombstones == 1  # only the new tombstone
        tables.compact()
        assert tables.rebuilds_triggered == swept_first + 1
        assert tables.dataset[5] is None and tables.dataset[6] is None
        # A compact with nothing pending is a no-op.
        tables.compact()
        assert tables.rebuilds_triggered == swept_first + 1


class TestAttach:
    def test_attach_requires_ranks_for_fair_samplers(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=10, seed=0, use_ranks=False)
        tables.fit(planted_sets["dataset"])
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.5, num_hashes=1, num_tables=10
        )
        with pytest.raises(InvalidParameterError):
            sampler.attach(tables, tables.dataset)

    def test_attach_empty_dataset_rejected(self, planted_sets):
        tables = DynamicLSHTables(MinHashFamily(), l=10, seed=0).fit(planted_sets["dataset"])
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.5, num_hashes=1, num_tables=10
        )
        with pytest.raises(Exception):
            sampler.attach(tables, [])

    def test_static_build_matches_offline_fit_exactly(self, planted_sets):
        """build(dynamic=False) must reproduce fit()'s structure bit-for-bit."""
        kwargs = dict(radius=0.5, far_radius=0.05, num_hashes=1, num_tables=40, seed=9)
        fitted = PermutationFairSampler(MinHashFamily(), **kwargs).fit(planted_sets["dataset"])
        attached = BatchQueryEngine.build(
            PermutationFairSampler(MinHashFamily(), **kwargs),
            planted_sets["dataset"],
            dynamic=False,
        ).sampler
        assert np.array_equal(fitted.ranks, attached.ranks)
        for query in planted_sets["dataset"][:5] + [planted_sets["query"]]:
            assert fitted.sample(query) == attached.sample(query)

    def test_params_reflect_attached_tables(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], num_tables=25)
        assert engine.sampler.params.l == 25
        assert engine.sampler.params.k == 1
        assert engine.sampler.num_tables == 25

    def test_attach_does_not_disable_later_auto_selection(self, planted_sets, small_set_dataset):
        """attach() must not freeze the tables' (K, L) into the sampler: a
        later plain fit() on a different dataset re-selects parameters."""
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.3, far_radius=0.1, recall=0.9, seed=40
        )
        tables = DynamicLSHTables(MinHashFamily(), l=3, seed=40).fit(planted_sets["dataset"])
        sampler.attach(tables, tables.dataset)
        assert sampler.params.l == 3
        sampler.fit(small_set_dataset)
        assert sampler.params.recall >= 0.9  # auto-selection ran for the new n
        assert sampler.params.l != 3

    def test_rank_perturbation_sampler_rejects_dynamic_tables(self, planted_sets):
        from repro.core import RankPerturbationSampler

        sampler = RankPerturbationSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1, num_tables=10, seed=41
        )
        with pytest.raises(InvalidParameterError):
            BatchQueryEngine.build(sampler, planted_sets["dataset"], seed=41)
        # The permutation-rank (static) path still works.
        engine = BatchQueryEngine.build(
            RankPerturbationSampler(
                MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1, num_tables=40, seed=41
            ),
            planted_sets["dataset"],
            dynamic=False,
        )
        assert engine.run([planted_sets["query"]])[0].found


class TestBatchQueryEngine:
    def test_requires_fitted_sampler(self):
        with pytest.raises(NotFittedError):
            BatchQueryEngine(PermutationFairSampler(MinHashFamily(), radius=0.5))

    def test_batched_and_per_query_results_agree(self, planted_sets):
        """Priming the key cache must not change any answer."""
        queries = list(planted_sets["dataset"]) + [planted_sets["query"]]
        batched = make_engine(planted_sets["dataset"], seed=12)
        single = make_engine(planted_sets["dataset"], seed=12)
        single.batch_hashing = False
        a = batched.sample_batch(queries)
        b = single.sample_batch(queries)
        assert a == b
        assert batched.stats.key_cache_hits > 0
        assert single.stats.key_cache_hits == 0

    def test_candidate_view_fast_path_matches_per_bucket_scan(self, planted_sets):
        """The engine's view-based fast path must be answer-identical to the
        sampler's own per-bucket scan, query by query."""
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1, num_tables=40, seed=18
        ).fit(planted_sets["dataset"])
        queries = list(planted_sets["dataset"]) + [planted_sets["query"], frozenset({555})]
        for query in queries:
            direct = sampler.sample_detailed(query)
            fast = sampler.sample_detailed_from_candidates(
                query, sampler.tables.colliding_view(query)
            )
            assert fast.index == direct.index
            assert fast.value == direct.value

    def test_attach_resets_independent_sampler_query_caches(self, planted_sets):
        """Re-pointing a warmed Section 4 sampler at new tables must not let
        it serve estimates or candidate views from the previous dataset."""
        query = planted_sets["query"]
        sampler = IndependentFairSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1, num_tables=40, seed=19
        ).fit(planted_sets["dataset"])
        assert sampler.estimate_colliding_count(query) > 0  # warms the caches
        unrelated = [frozenset(range(900 + 7 * i, 905 + 7 * i)) for i in range(12)]
        tables = DynamicLSHTables(MinHashFamily(), l=40, seed=19).fit(unrelated)
        sampler.attach(tables, tables.dataset)
        assert sampler.estimate_colliding_count(query) == 0.0
        assert sampler.sample(query) is None

    def test_responses_are_ordered_and_structured(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=13)
        requests = [
            QueryRequest(planted_sets["query"], k=3, replacement=False),
            planted_sets["query"],
            frozenset({777, 778}),
        ]
        responses = engine.run(requests)
        assert [r.request_index for r in responses] == [0, 1, 2]
        assert len(responses[0].indices) == 3
        assert set(responses[0].indices) <= planted_sets["near_indices"]
        assert responses[1].found and responses[1].value is not None
        assert not responses[2].found and responses[2].index is None

    def test_request_validation(self):
        with pytest.raises(InvalidParameterError):
            QueryRequest(frozenset({1}), k=0)
        with pytest.raises(InvalidParameterError):
            QueryRequest(frozenset({1}), k=2, exclude_index=3)

    def test_exclude_index_respected(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=14)
        response = engine.run([QueryRequest(planted_sets["dataset"][0], exclude_index=0)])[0]
        assert response.index != 0

    def test_static_engine_rejects_mutation(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=15, dynamic=False)
        assert not engine.is_dynamic
        with pytest.raises(InvalidParameterError):
            engine.insert(frozenset({1, 2}))
        with pytest.raises(InvalidParameterError):
            engine.delete(0)

    def test_stats_accumulate(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=16)
        engine.run([planted_sets["query"]] * 3)
        engine.run([planted_sets["query"]])
        stats = engine.stats
        assert stats.queries_served == 4
        assert stats.batches_served == 2
        assert stats.candidates_scanned >= 1
        assert stats.distance_evaluations >= 1
        assert EngineStats.from_dict(stats.as_dict()) == stats

    def test_live_point_count_tracks_churn(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=17)
        n = len(planted_sets["dataset"])
        assert engine.num_live_points == n
        engine.delete(0)
        engine.insert(frozenset({1, 2, 3}))
        engine.insert(frozenset({4, 5, 6}))
        assert engine.num_live_points == n + 1


class TestChurnedFairness:
    def test_sampler_over_churned_engine_answers_from_live_neighborhood(self, planted_sets):
        engine = make_engine(planted_sets["dataset"], seed=20)
        survivors = churn(engine, planted_sets)
        for _ in range(10):
            response = engine.run([planted_sets["query"]])[0]
            assert response.index in survivors

    def test_uniformity_audit_after_churn(self, planted_sets):
        """Acceptance criterion: delete 30% of the points, insert as many new
        ones through the dynamic index — *no refit* — and the Section 3
        sampler must still be uniform over the live neighborhood, by the same
        audit ``test_fair_nns.py`` applies to the static structure."""
        trials = 300
        counts = None
        for seed in range(trials):
            engine = make_engine(planted_sets["dataset"], seed=seed)
            survivors = churn(engine, planted_sets)
            if counts is None:
                counts = {index: 0 for index in sorted(survivors)}
            index = engine.run([planted_sets["query"]])[0].index
            assert index in counts
            counts[index] += 1
        tv = total_variation_from_uniform(list(counts.values()))
        assert tv < 0.12
        assert min(counts.values()) > 0.4 * trials / len(counts)

    def test_independent_sampler_survives_churn(self, planted_sets):
        """The Section 4 sampler re-syncs sketches through the update hook and
        keeps answering from the live neighborhood."""
        engine = make_engine(
            planted_sets["dataset"], seed=21, sampler_cls=IndependentFairSampler
        )
        survivors = churn(engine, planted_sets)
        outputs = set()
        for _ in range(30):
            response = engine.run([planted_sets["query"]])[0]
            assert response.index in survivors
            outputs.add(response.index)
        assert len(outputs) > 1  # query-time randomness still alive

    def test_independent_sampler_estimate_excludes_tombstones(self, planted_sets):
        """Deleting a query's whole neighborhood must drop the colliding-count
        estimate to ~0 after the next sync, so the rejection loop exits
        immediately instead of burning its full round budget.  Incremental
        sketch maintenance must achieve this without forcing a compaction
        sweep — tombstones may legitimately stay pending in the bucket
        arrays; the sketches and estimates just must not count them."""
        engine = make_engine(
            planted_sets["dataset"], seed=23, sampler_cls=IndependentFairSampler
        )
        for index in sorted(planted_sets["near_indices"]):
            engine.delete(index)
        response = engine.run([planted_sets["query"]])[0]
        assert not response.found
        assert response.stats.rounds == 0
        assert engine.sampler.estimate_colliding_count(planted_sets["query"]) == 0.0

    def test_standard_lsh_serves_from_rankless_dynamic_tables(self, planted_sets):
        sampler = StandardLSHSampler(
            MinHashFamily(), radius=0.5, far_radius=0.05, num_hashes=1, num_tables=30, seed=22
        )
        engine = BatchQueryEngine.build(sampler, planted_sets["dataset"], seed=22)
        engine.delete(0)
        new_index = engine.insert(frozenset(range(1, 8)))
        response = engine.run([planted_sets["query"]])[0]
        assert response.found
        assert response.index != 0
        assert response.index in planted_sets["near_indices"] | {new_index}


class TestSnapshot:
    def test_round_trip_samples_are_bit_identical(self, planted_sets, tmp_path):
        engine = make_engine(planted_sets["dataset"], seed=30)
        churn(engine, planted_sets)
        engine.run([planted_sets["query"]])
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        queries = [planted_sets["query"]] + list(NEW_NEAR)
        for _ in range(5):
            assert loaded.sample_batch(queries) == engine.sample_batch(queries)

    def test_round_trip_preserves_structure_and_stats(self, planted_sets, tmp_path):
        engine = make_engine(planted_sets["dataset"], seed=31)
        churn(engine, planted_sets)
        engine.run([planted_sets["query"]] * 4)
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        assert loaded.is_dynamic
        assert loaded.num_live_points == engine.num_live_points
        assert loaded.stats.queries_served == engine.stats.queries_served
        assert loaded.stats.inserts == engine.stats.inserts
        tables, loaded_tables = engine.tables, loaded.tables
        assert np.array_equal(tables.ranks, loaded_tables.ranks)
        assert np.array_equal(tables.alive, loaded_tables.alive)
        for table_a, table_b in zip(tables._tables, loaded_tables._tables):
            assert set(table_a.keys()) == set(table_b.keys())
            for key in table_a:
                assert table_a[key].indices.tolist() == table_b[key].indices.tolist()

    def test_loaded_engine_accepts_further_mutation(self, planted_sets, tmp_path):
        engine = make_engine(planted_sets["dataset"], seed=32)
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        new_index = loaded.insert(frozenset(range(1, 11)))
        loaded.delete(0)
        response = loaded.run([QueryRequest(planted_sets["query"])])[0]
        assert response.found
        assert response.index != 0
        assert new_index in loaded.tables.query_candidates(planted_sets["query"]).tolist()

    def test_independent_sampler_round_trip_is_bit_identical(self, planted_sets, tmp_path):
        engine = make_engine(
            planted_sets["dataset"], seed=33, sampler_cls=IndependentFairSampler
        )
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        # Both engines continue from the same query-RNG state: the full
        # rejection-sampling trajectory must coincide draw for draw.
        for _ in range(10):
            assert (
                loaded.run([planted_sets["query"]])[0].index
                == engine.run([planted_sets["query"]])[0].index
            )

    def test_save_flushes_pending_mutations(self, planted_sets, tmp_path):
        """Saving right after a delete (before any query) must not snapshot
        the sampler's pre-mutation derived state: the loaded clone would
        otherwise serve tombstoned points forever."""
        engine = make_engine(
            planted_sets["dataset"], seed=36, sampler_cls=IndependentFairSampler
        )
        first = engine.run([planted_sets["query"]])[0]  # warms the view caches
        assert first.found
        engine.delete(first.index)
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        for candidate in (engine, loaded):
            for _ in range(20):
                assert candidate.run([planted_sets["query"]])[0].index != first.index

    def test_round_trip_preserves_engine_flags(self, planted_sets, tmp_path):
        engine = make_engine(planted_sets["dataset"], seed=37)
        engine.coalesce_duplicates = False
        engine.batch_hashing = False
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        assert loaded.coalesce_duplicates is False
        assert loaded.batch_hashing is False

    def test_static_engine_round_trips(self, planted_sets, tmp_path):
        engine = make_engine(planted_sets["dataset"], seed=34, dynamic=False)
        save_engine(engine, tmp_path / "snap")
        loaded = load_engine(tmp_path / "snap")
        assert not loaded.is_dynamic
        assert loaded.sample_batch([planted_sets["query"]]) == engine.sample_batch(
            [planted_sets["query"]]
        )

    def test_version_mismatch_rejected(self, planted_sets, tmp_path):
        import json

        engine = make_engine(planted_sets["dataset"], seed=35)
        path = save_engine(engine, tmp_path / "snap")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(InvalidParameterError):
            load_engine(path)

"""Tests for the small shared utilities: RNG handling, type helpers, exceptions."""

import numpy as np
import pytest

from repro.exceptions import (
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
    ReproError,
    UnsupportedDataTypeError,
)
from repro.rng import ensure_rng, random_permutation_ranks, spawn_rngs
from repro.types import as_set_dataset, as_set_point, dataset_size, is_set_data


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(1, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_deterministic_from_seed(self):
        a = [r.integers(0, 10**6) for r in spawn_rngs(5, 2)]
        b = [r.integers(0, 10**6) for r in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(3), 2)
        assert len(rngs) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestPermutationRanks:
    def test_is_permutation(self):
        ranks = random_permutation_ranks(np.random.default_rng(0), 20)
        assert sorted(ranks.tolist()) == list(range(20))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_permutation_ranks(np.random.default_rng(0), -1)


class TestTypeHelpers:
    def test_is_set_data(self):
        assert is_set_data([frozenset({1})])
        assert is_set_data([])
        assert not is_set_data(np.zeros((3, 2)))

    def test_as_set_point(self):
        assert as_set_point([1, 2, 2]) == frozenset({1, 2})
        existing = frozenset({3})
        assert as_set_point(existing) is existing

    def test_as_set_dataset(self):
        converted = as_set_dataset([[1, 2], (3,)])
        assert converted == [frozenset({1, 2}), frozenset({3})]

    def test_dataset_size(self):
        assert dataset_size(np.zeros((4, 2))) == 4
        assert dataset_size([frozenset()]) == 1


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [NotFittedError, EmptyDatasetError, InvalidParameterError, UnsupportedDataTypeError],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

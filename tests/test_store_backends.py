"""Pluggable storage backends: byte-identity, caching and fault behaviour.

The ``repro.store`` subsystem promises that the storage tier is invisible to
the sampling algorithms: a format-5 snapshot loaded through the in-RAM,
memory-mapped or remote backend must produce **byte-identical**
``QueryResponse`` streams — same indices, same measure values, same work
counters — for every registered sampler, both freshly loaded and after
online churn (inserts land in the resident overlay, deletes tombstone the
base tier).  This file pins that promise, plus the operational surface
around it:

* the remote tier's LRU block cache counts hits/misses/evictions/bytes
  deterministically (one hit *or* miss per unique block per gather) and
  batches all missing blocks of a gather into one fetch round-trip;
* torn and unreachable block servers surface as the typed
  :class:`~repro.exceptions.BlockFetchError`, never a raw struct error;
* missing or truncated per-array ``.npy`` payloads of a v5 snapshot raise
  :class:`~repro.exceptions.SnapshotCorruptError` with ``.path`` set;
* ``StoreSpec`` round-trips through JSON standalone and on ``EngineSpec``;
* ``FairNN.serve(store="memmap")`` demotes the built index out-of-core and
  checkpoints in format 5; the HTTP ``/v1/stats`` surface exposes the
  store block.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api import FairNN
from repro.engine import BatchQueryEngine, load_engine, save_engine
from repro.engine.requests import QueryRequest
from repro.exceptions import BlockFetchError, InvalidParameterError, SnapshotCorruptError
from repro.server import BlockServer, FairNNClient, FairNNServer
from repro.spec import EngineSpec, LSHSpec, SamplerSpec
from repro.store import (
    HTTPBlockClient,
    LocalBlockClient,
    MemmapDenseStore,
    MemmapSetStore,
    RemoteDenseStore,
    RemoteSetStore,
    StoreBackedPoints,
    StoreSpec,
)
from repro.store.blocks import block_count
from repro.testing import FaultInjector, tear_tail

from test_spec_api import CANONICAL_SPECS

SEED = 7

#: Remote loads in the identity tests use a deliberately tiny cache so the
#: eviction path runs inside them too.
REMOTE_SPEC = {"backend": "remote", "cache_blocks": 8, "block_size": 16}

#: A dense-vector LSH workload (the canonical specs cover dense only through
#: the filter samplers; churn and corruption need a dense *table* engine).
DENSE_LSH_SPEC = SamplerSpec(
    "independent",
    {"radius": 0.7, "far_radius": 0.2, "num_hashes": 4, "num_tables": 6},
    lsh=LSHSpec("hyperplane", {"dim": 20}),
)


def _flavour_data(name, small_set_dataset, planted_unit_vectors):
    if name == "independent_dense":
        spec, flavour = DENSE_LSH_SPEC, "vectors"
    else:
        spec, flavour = CANONICAL_SPECS[name]
    spec = dataclasses.replace(spec, seed=SEED)
    if flavour == "sets":
        dataset = list(small_set_dataset)
        queries = dataset[:4] + [frozenset(set(dataset[0]) | {99991})]
    else:
        dataset = planted_unit_vectors["points"]
        queries = [dataset[i] for i in range(4)] + [planted_unit_vectors["query"]]
    return spec, dataset, queries


def _assert_identical_runs(engines, queries):
    requests = [QueryRequest(query=q) for q in queries]
    reference = engines[0].run(requests)
    for other in engines[1:]:
        for a, b in zip(reference, other.run(requests)):
            assert a.indices == b.indices
            assert a.value == b.value
            assert a.stats == b.stats


def _load_three_ways(snapshot, loader):
    """The same snapshot through all three backends, remote via a local
    (in-process) block client so no HTTP server is needed."""
    return [
        loader(snapshot),
        loader(snapshot, store="memmap"),
        loader(snapshot, store=REMOTE_SPEC, block_client=LocalBlockClient(snapshot)),
    ]


#: Samplers with no LSH table layer cannot be snapshotted (pre-existing
#: constraint); their backend-independence is pinned by fitting directly
#: over store-backed containers instead of through a snapshot round-trip.
TABLELESS = ("exact", "filter", "gaussian_filter")
SNAPSHOTTABLE = tuple(n for n in sorted(CANONICAL_SPECS) if n not in TABLELESS)


def _store_containers(dataset, flavour, tmp_path):
    """The same dataset as a plain list, a memmap-backed container and a
    remote-backed container (in-process block client)."""
    if flavour == "vectors":
        matrix = np.ascontiguousarray(np.asarray(dataset, dtype=np.float64))
        np.save(tmp_path / "dataset__dense.npy", matrix)
        mapped = MemmapDenseStore(tmp_path / "dataset__dense.npy")
        remote = RemoteDenseStore(
            LocalBlockClient({"dataset__dense": matrix}), cache_blocks=8, block_size=16
        )
    else:
        indptr = np.cumsum([0] + [len(s) for s in dataset]).astype(np.int64)
        items = np.concatenate(
            [np.sort(np.fromiter(s, dtype=np.int64)) for s in dataset]
        )
        np.save(tmp_path / "dataset__indptr.npy", indptr)
        np.save(tmp_path / "dataset__items.npy", items)
        mapped = MemmapSetStore(
            tmp_path / "dataset__indptr.npy", tmp_path / "dataset__items.npy"
        )
        remote = RemoteSetStore(
            LocalBlockClient({"dataset__indptr": indptr, "dataset__items": items}),
            cache_blocks=8,
            block_size=16,
        )
    return [list(dataset), StoreBackedPoints(mapped), StoreBackedPoints(remote)]


# ----------------------------------------------------------------------
# Byte-identity across backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SNAPSHOTTABLE)
class TestBackendIdentity:
    def test_fresh_load_identical_per_sampler(
        self, name, small_set_dataset, planted_unit_vectors, tmp_path
    ):
        """Every snapshottable sampler answers identically on all backends."""
        spec, dataset, queries = _flavour_data(name, small_set_dataset, planted_unit_vectors)
        nn = FairNN.from_spec(spec).fit(dataset)
        nn.save(tmp_path / "snap", format_version=5)

        clones = _load_three_ways(tmp_path / "snap", FairNN.load)
        backends = [clone.capacity()["store_backend"] for clone in clones]
        assert backends == ["inram", "memmap", "remote"]
        _assert_identical_runs([clone.engine(clone.primary) for clone in clones], queries)


@pytest.mark.parametrize("name", TABLELESS)
class TestTablelessBackendIdentity:
    def test_fit_over_store_backed_containers(
        self, name, small_set_dataset, planted_unit_vectors, tmp_path
    ):
        """Tableless samplers gather through the same store protocol: a fit
        over memmap- or remote-backed containers answers identically to a
        fit over the plain list."""
        spec, flavour = CANONICAL_SPECS[name]
        spec = dataclasses.replace(spec, seed=SEED)
        _, dataset, queries = _flavour_data(name, small_set_dataset, planted_unit_vectors)
        outputs = []
        for container in _store_containers(dataset, flavour, tmp_path):
            sampler = spec.build().fit(container)
            outputs.append(
                [
                    [sampler.sample(q) for q in queries],
                    [sampler.sample_k(q, k=5) for q in queries],
                ]
            )
        assert outputs[0] == outputs[1] == outputs[2]


@pytest.mark.parametrize("flavour_name", ["permutation", "independent_dense"])
class TestChurnedBackendIdentity:
    def test_post_churn_identity_and_overlay_promotion(
        self, flavour_name, small_set_dataset, planted_unit_vectors, tmp_path
    ):
        """Inserts/deletes/compaction on out-of-core engines stay identical
        to the in-RAM twin; inserts are promoted into the resident overlay."""
        spec, dataset, queries = _flavour_data(
            flavour_name, small_set_dataset, planted_unit_vectors
        )
        engine = BatchQueryEngine.build(spec.build(), dataset[:60])
        save_engine(engine, tmp_path / "snap", format_version=5)

        clones = _load_three_ways(tmp_path / "snap", load_engine)
        fresh = list(dataset[60:70])
        for clone in clones:
            clone.insert_many(fresh)
            clone.delete(3)
            clone.delete(11)
            clone.tables.compact()
        # The queries hit both tiers: snapshot base rows and overlay rows.
        _assert_identical_runs(clones, queries + fresh[:3])

        for clone, backend in zip(clones[1:], ["memmap", "remote"]):
            store = clone.tables.point_store
            assert store.backend == backend
            assert store.stats_dict()["overlay_rows"] == len(fresh)
        # Mutated out-of-core engines re-snapshot in format 5 (auto-upgrade)
        # and the re-loaded artifact still matches.
        save_engine(clones[1], tmp_path / "resnap")
        manifest = json.loads((tmp_path / "resnap" / "manifest.json").read_text())
        assert manifest["format_version"] == 5
        _assert_identical_runs(
            [clones[0], load_engine(tmp_path / "resnap")], queries + fresh[:3]
        )


# ----------------------------------------------------------------------
# Remote tier: deterministic LRU cache accounting (perf-guard style)
# ----------------------------------------------------------------------
class TestBlockCacheAccounting:
    def _dense_store(self, rows=16, dim=2, cache_blocks=2, block_size=4):
        matrix = np.arange(rows * dim, dtype=np.float64).reshape(rows, dim)
        client = LocalBlockClient({"dataset__dense": matrix})
        store = RemoteDenseStore(client, cache_blocks=cache_blocks, block_size=block_size)
        return matrix, client, store

    def test_dense_gather_counters_are_exact(self):
        """Each unique block a gather needs scores exactly one hit or one
        miss; evictions and bytes fetched follow from LRU + block geometry."""
        matrix, client, store = self._dense_store()
        block_bytes = 4 * 2 * 8  # block_size * dim * float64

        assert np.array_equal(store.gather([0, 5]), matrix[[0, 5]])  # blocks 0,1: miss both
        assert np.array_equal(store.gather([1, 4]), matrix[[1, 4]])  # blocks 0,1: hit both
        assert np.array_equal(store.gather([8, 12]), matrix[[8, 12]])  # blocks 2,3: miss, evict 0,1
        assert np.array_equal(store.gather([0]), matrix[[0]])  # block 0: miss again, evict 2

        stats = store.cache_stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 5
        assert stats["evictions"] == 3
        assert stats["bytes_fetched"] == 5 * block_bytes
        assert stats["cached_blocks"] == 2
        # All missing blocks of one gather travel in ONE round-trip.
        assert client.fetch_calls == 3  # the all-hit gather made none

    def test_set_gather_batches_missing_blocks_into_one_fetch(self):
        sets = [frozenset(range(i, i + 4)) for i in range(12)]
        indptr = np.cumsum([0] + [len(s) for s in sets]).astype(np.int64)
        items = np.concatenate([np.sort(np.fromiter(s, dtype=np.int64)) for s in sets])
        client = LocalBlockClient({"dataset__indptr": indptr, "dataset__items": items})
        store = RemoteSetStore(client, cache_blocks=64, block_size=8)
        calls_before = client.fetch_calls

        lengths, flat = store.gather(list(range(12)))
        assert client.fetch_calls == calls_before + 1  # one batched items fetch
        assert np.array_equal(lengths, np.diff(indptr))
        assert np.array_equal(flat, items)
        stats = store.cache_stats()
        assert stats["misses"] == block_count(len(items), 8)
        assert stats["hits"] == 0

        store.gather([2, 3])  # fully cached now
        assert client.fetch_calls == calls_before + 1
        assert store.cache_stats()["hits"] == 1  # one unique block needed

    def test_torn_fetch_raises_typed_error(self):
        _, client, store = self._dense_store()
        client.tear_next_fetch(keep_bytes=10)
        with pytest.raises(BlockFetchError, match="torn"):
            store.gather([0, 1])

    def test_unreachable_fetch_site_raises_typed_error(self):
        injector = FaultInjector()
        matrix = np.ones((8, 2))
        client = LocalBlockClient({"dataset__dense": matrix}, fault_injector=injector)
        store = RemoteDenseStore(client, cache_blocks=4, block_size=4)
        injector.arm("blocks.fetch", _raise_connection_error)
        with pytest.raises(BlockFetchError):
            store.gather([0])
        injector.disarm("blocks.fetch")
        assert np.array_equal(store.gather([0]), matrix[[0]])  # recovers after the fault

    def test_unreachable_meta_site_raises_typed_error(self):
        injector = FaultInjector()
        injector.arm("blocks.meta", _raise_connection_error)
        client = LocalBlockClient({"dataset__dense": np.ones((8, 2))}, fault_injector=injector)
        with pytest.raises(BlockFetchError):
            RemoteDenseStore(client, cache_blocks=4, block_size=4)

    def test_http_client_unreachable_server(self):
        client = HTTPBlockClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(BlockFetchError, match="unreachable"):
            client.meta()


def _raise_connection_error():
    raise ConnectionError("block server is gone")


# ----------------------------------------------------------------------
# v5 snapshot corruption
# ----------------------------------------------------------------------
class TestV5Corruption:
    def _snapshot(self, tmp_path, planted_unit_vectors):
        spec, dataset, queries = _flavour_data(
            "independent_dense", None, planted_unit_vectors
        )
        engine = BatchQueryEngine.build(spec.build(), dataset[:50])
        save_engine(engine, tmp_path / "snap", format_version=5)
        return tmp_path / "snap"

    def test_missing_array_file_raises_with_path(self, tmp_path, planted_unit_vectors):
        snap = self._snapshot(tmp_path, planted_unit_vectors)
        victim = snap / "arrays" / "dataset__dense.npy"
        victim.unlink()
        for store in (None, "memmap"):
            with pytest.raises(SnapshotCorruptError) as info:
                load_engine(snap, store=store)
            assert str(info.value.path) == str(victim)

    def test_truncated_array_file_raises_with_path(self, tmp_path, planted_unit_vectors):
        snap = self._snapshot(tmp_path, planted_unit_vectors)
        victim = snap / "arrays" / "dataset__dense.npy"
        tear_tail(victim, drop_bytes=64)
        for store in (None, "memmap"):
            with pytest.raises(SnapshotCorruptError) as info:
                load_engine(snap, store=store)
            assert str(info.value.path) == str(victim)

    def test_out_of_core_request_on_legacy_snapshot(self, tmp_path, planted_unit_vectors):
        spec, dataset, _ = _flavour_data("independent_dense", None, planted_unit_vectors)
        engine = BatchQueryEngine.build(spec.build(), dataset[:50])
        save_engine(engine, tmp_path / "legacy")  # in-RAM engine → legacy v3
        manifest = json.loads((tmp_path / "legacy" / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        with pytest.raises(InvalidParameterError, match="format-5"):
            load_engine(tmp_path / "legacy", store="memmap")


# ----------------------------------------------------------------------
# StoreSpec round-trips and validation
# ----------------------------------------------------------------------
class TestStoreSpec:
    def test_json_round_trip(self):
        spec = StoreSpec(
            backend="remote", cache_blocks=32, block_size=128, endpoint="http://h:1"
        )
        assert StoreSpec.from_json(spec.to_json()) == spec
        assert StoreSpec.coerce("memmap") == StoreSpec(backend="memmap")
        assert StoreSpec.coerce(None) == StoreSpec()
        assert StoreSpec.coerce({"backend": "inram"}) == StoreSpec()

    def test_engine_spec_round_trip(self, tmp_path):
        base = dataclasses.replace(CANONICAL_SPECS["permutation"][0], seed=SEED)
        spec = EngineSpec(samplers={"p": base}, primary="p", store=StoreSpec("memmap"))
        restored = EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.store == StoreSpec("memmap")
        assert restored == spec
        # Coercion sugar on the field itself.
        assert EngineSpec(samplers={"p": base}, primary="p", store="memmap").store == StoreSpec(
            "memmap"
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StoreSpec(backend="tape")
        with pytest.raises(InvalidParameterError):
            StoreSpec(cache_blocks=0)
        with pytest.raises(InvalidParameterError):
            StoreSpec(backend="inram", endpoint="http://h:1")  # endpoint is remote-only
        with pytest.raises(InvalidParameterError):
            StoreSpec(backend="remote", endpoint="ftp://h:1")


# ----------------------------------------------------------------------
# Facade + serving surface
# ----------------------------------------------------------------------
class TestServingIntegration:
    def test_serve_memmap_demotes_and_checkpoints_v5(self, small_set_dataset, tmp_path):
        spec = dataclasses.replace(CANONICAL_SPECS["permutation"][0], seed=SEED)
        dataset = list(small_set_dataset)

        twin = FairNN.from_spec(spec).serve(dataset)
        nn = FairNN.from_spec(spec).serve(
            dataset, store="memmap", data_dir=str(tmp_path / "dd")
        )
        assert nn.capacity()["store_backend"] == "memmap"
        assert twin.capacity()["store_backend"] == "inram"

        for facade in (twin, nn):
            facade.insert_many(dataset[:5])
            facade.delete(2)
        queries = dataset[:6]
        _assert_identical_runs([twin.engine(twin.primary), nn.engine(nn.primary)], queries)
        # The initial checkpoint of an out-of-core facade is format 5.
        checkpoints = sorted((tmp_path / "dd" / "snapshots").iterdir())
        manifest = json.loads((checkpoints[0] / "manifest.json").read_text())
        assert manifest["format_version"] == 5
        nn.close()
        twin.close()

    def test_serve_remote_is_refused(self, small_set_dataset):
        spec = dataclasses.replace(CANONICAL_SPECS["permutation"][0], seed=SEED)
        nn = FairNN.from_spec(spec)
        with pytest.raises(InvalidParameterError, match="remote"):
            nn.serve(list(small_set_dataset), store={"backend": "remote", "endpoint": "http://h:1"})

    def test_http_stats_exposes_store_block(self, small_set_dataset, tmp_path):
        spec = dataclasses.replace(CANONICAL_SPECS["permutation"][0], seed=SEED)
        dataset = list(small_set_dataset)
        nn = FairNN.from_spec(spec).fit(dataset)
        nn.save(tmp_path / "snap", format_version=5)

        with BlockServer.from_snapshot(tmp_path / "snap") as blocks:
            served = FairNN.load(
                tmp_path / "snap",
                store={"backend": "remote", "endpoint": blocks.url, "block_size": 32},
            )
            served.sample(dataset[0])
            with FairNNServer(served) as server:
                stats = FairNNClient(server.url).stats()
            block = stats["samplers"][served.primary]["store"]
            assert block["backend"] == "remote"
            assert block["cache"]["misses"] > 0
            counters = stats["samplers"][served.primary]["counters"]
            assert counters["store_cache_misses"] == block["cache"]["misses"]
            assert counters["store_bytes_fetched"] == block["cache"]["bytes_fetched"]


class TestDeprecatedShim:
    def test_repro_data_store_warns_and_reexports(self):
        """The pre-subsystem module path still works, under a deprecation.

        ``repro.data.store`` predates the storage subsystem; it must keep
        re-exporting the exact objects now living in ``repro.store`` (not
        copies — callers' isinstance checks must keep passing) while telling
        importers to move.
        """
        import importlib
        import sys

        import repro.store

        sys.modules.pop("repro.data.store", None)
        with pytest.warns(DeprecationWarning, match="repro.store"):
            shim = importlib.import_module("repro.data.store")
        for name in ("DatasetStore", "DenseStore", "SetStore", "SharedStoreExport", "make_store"):
            assert getattr(shim, name) is getattr(repro.store, name)
        # Already-imported: no second warning (module cache), still usable.
        assert importlib.import_module("repro.data.store") is shim

"""Tests for brute-force ball queries and the Q3 cost-ratio helper."""

import numpy as np

from repro.distances import EuclideanDistance, JaccardSimilarity
from repro.distances.ball import ball_indices, ball_size, cost_ratio, neighborhood_sizes


class TestBallQueries:
    def test_ball_indices_euclidean(self):
        data = np.array([[0.0], [1.0], [2.0], [10.0]])
        indices = ball_indices(data, np.array([0.0]), 2.0, EuclideanDistance())
        assert set(indices.tolist()) == {0, 1, 2}

    def test_ball_size_matches_indices(self):
        data = np.array([[0.0], [1.0], [5.0]])
        measure = EuclideanDistance()
        assert ball_size(data, np.array([0.0]), 1.5, measure) == 2

    def test_ball_indices_jaccard(self):
        dataset = [frozenset({1, 2, 3}), frozenset({1, 2}), frozenset({7, 8})]
        indices = ball_indices(dataset, frozenset({1, 2, 3}), 0.6, JaccardSimilarity())
        assert set(indices.tolist()) == {0, 1}

    def test_empty_ball(self):
        data = np.array([[10.0], [20.0]])
        assert ball_size(data, np.array([0.0]), 1.0, EuclideanDistance()) == 0

    def test_planted_neighborhood_counts(self, planted_vectors):
        count = ball_size(
            planted_vectors["points"], planted_vectors["query"], 1.0, EuclideanDistance()
        )
        assert count == len(planted_vectors["near_indices"])


class TestNeighborhoodSizes:
    def test_counts_per_threshold(self):
        data = np.array([[0.0], [1.0], [2.0], [3.0]])
        queries = [np.array([0.0]), np.array([3.0])]
        counts = neighborhood_sizes(data, queries, [0.5, 1.5, 2.5], EuclideanDistance())
        np.testing.assert_array_equal(counts[0.5], [1, 1])
        np.testing.assert_array_equal(counts[1.5], [2, 2])
        np.testing.assert_array_equal(counts[2.5], [3, 3])

    def test_monotone_in_threshold(self, small_set_dataset, jaccard):
        queries = small_set_dataset[:5]
        counts = neighborhood_sizes(small_set_dataset, queries, [0.3, 0.2, 0.1], jaccard)
        # Lower Jaccard threshold -> larger neighborhood.
        assert np.all(counts[0.1] >= counts[0.2])
        assert np.all(counts[0.2] >= counts[0.3])


class TestCostRatio:
    def test_ratio_at_least_one(self, small_set_dataset, jaccard):
        queries = small_set_dataset[:10]
        ratios = cost_ratio(small_set_dataset, queries, r=0.2, relaxed=0.1, measure=jaccard)
        assert np.all(ratios >= 1.0)

    def test_skips_empty_neighborhoods(self):
        data = np.array([[0.0], [100.0]])
        queries = [np.array([50.0])]  # nothing within r
        ratios = cost_ratio(data, queries, r=1.0, relaxed=2.0, measure=EuclideanDistance())
        assert ratios.size == 0

    def test_known_ratio(self):
        data = np.array([[0.0], [0.5], [1.5], [1.8]])
        queries = [np.array([0.0])]
        ratios = cost_ratio(data, queries, r=1.0, relaxed=2.0, measure=EuclideanDistance())
        assert ratios.tolist() == [2.0]

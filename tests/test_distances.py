"""Unit tests for the distance and similarity measures."""

import math

import numpy as np
import pytest

from repro.distances import (
    AngularDistance,
    CosineSimilarity,
    EuclideanDistance,
    HammingDistance,
    InnerProductSimilarity,
    JaccardSimilarity,
)
from repro.distances.base import MeasureKind
from repro.distances.inner_product import normalize_rows
from repro.exceptions import DimensionMismatchError, UnsupportedDataTypeError


class TestEuclidean:
    def test_simple_distance(self):
        assert EuclideanDistance().value([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_zero_distance_to_self(self):
        point = np.array([1.5, -2.0, 3.0])
        assert EuclideanDistance().value(point, point) == 0.0

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(30, 6))
        query = rng.normal(size=6)
        measure = EuclideanDistance()
        expected = [measure.value(row, query) for row in data]
        np.testing.assert_allclose(measure.values_to_query(data, query), expected)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            EuclideanDistance().value([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_dataset_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            EuclideanDistance().values_to_query(np.zeros((4, 3)), np.zeros(5))

    def test_kind_is_distance(self):
        assert EuclideanDistance().kind is MeasureKind.DISTANCE

    def test_within_uses_upper_threshold(self):
        measure = EuclideanDistance()
        assert measure.within(0.5, 1.0)
        assert not measure.within(1.5, 1.0)


class TestHamming:
    def test_counts_differing_coordinates(self):
        assert HammingDistance().value([0, 1, 1, 0], [1, 1, 0, 0]) == 2

    def test_identical_vectors(self):
        assert HammingDistance().value([1, 0, 1], [1, 0, 1]) == 0

    def test_vectorized(self):
        data = np.array([[0, 0, 0], [1, 1, 1], [1, 0, 1]])
        query = np.array([1, 0, 1])
        np.testing.assert_array_equal(
            HammingDistance().values_to_query(data, query), [2.0, 1.0, 0.0]
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            HammingDistance().value([0, 1], [0, 1, 1])


class TestJaccard:
    def test_known_value(self):
        a = frozenset({1, 2, 3, 4})
        b = frozenset({3, 4, 5, 6})
        assert JaccardSimilarity().value(a, b) == pytest.approx(2 / 6)

    def test_identical_sets(self):
        s = frozenset({1, 2, 3})
        assert JaccardSimilarity().value(s, s) == 1.0

    def test_disjoint_sets(self):
        assert JaccardSimilarity().value(frozenset({1}), frozenset({2})) == 0.0

    def test_empty_sets_are_identical(self):
        assert JaccardSimilarity().value(frozenset(), frozenset()) == 1.0

    def test_empty_vs_non_empty(self):
        assert JaccardSimilarity().value(frozenset(), frozenset({1})) == 0.0

    def test_accepts_plain_iterables(self):
        assert JaccardSimilarity().value([1, 2], (2, 3)) == pytest.approx(1 / 3)

    def test_kind_is_similarity(self):
        assert JaccardSimilarity().kind is MeasureKind.SIMILARITY

    def test_within_uses_lower_threshold(self):
        measure = JaccardSimilarity()
        assert measure.within(0.5, 0.3)
        assert not measure.within(0.2, 0.3)

    def test_rejects_scalar(self):
        with pytest.raises(UnsupportedDataTypeError):
            JaccardSimilarity().value(5, frozenset({1}))

    def test_values_to_query(self):
        dataset = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({9})]
        query = frozenset({1, 2, 3})
        values = JaccardSimilarity().values_to_query(dataset, query)
        np.testing.assert_allclose(values, [2 / 3, 1.0, 0.0])


class TestInnerProduct:
    def test_value(self):
        assert InnerProductSimilarity().value([1.0, 2.0], [3.0, -1.0]) == pytest.approx(1.0)

    def test_vectorized(self):
        data = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        query = np.array([2.0, 3.0])
        np.testing.assert_allclose(
            InnerProductSimilarity().values_to_query(data, query), [2.0, 3.0, 5.0]
        )

    def test_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            InnerProductSimilarity().value([1.0], [1.0, 2.0])

    def test_normalize_rows_unit_norm(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(10, 4))
        normalized = normalize_rows(vectors)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), np.ones(10))

    def test_normalize_rows_keeps_zero_rows(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]])
        normalized = normalize_rows(vectors)
        np.testing.assert_allclose(normalized[0], [0.0, 0.0])
        np.testing.assert_allclose(np.linalg.norm(normalized[1]), 1.0)

    def test_unit_sphere_identity(self):
        """On unit vectors, ||p - q||^2 = 2 - 2 <p, q> (used by Section 5)."""
        rng = np.random.default_rng(2)
        p = normalize_rows(rng.normal(size=(1, 5)))[0]
        q = normalize_rows(rng.normal(size=(1, 5)))[0]
        lhs = np.linalg.norm(p - q) ** 2
        rhs = 2 - 2 * InnerProductSimilarity().value(p, q)
        assert lhs == pytest.approx(rhs)


class TestCosineAndAngular:
    def test_cosine_of_parallel_vectors(self):
        assert CosineSimilarity().value([1.0, 0.0], [2.0, 0.0]) == pytest.approx(1.0)

    def test_cosine_of_orthogonal_vectors(self):
        assert CosineSimilarity().value([1.0, 0.0], [0.0, 5.0]) == pytest.approx(0.0)

    def test_angular_distance_right_angle(self):
        assert AngularDistance().value([1.0, 0.0], [0.0, 1.0]) == pytest.approx(math.pi / 2)

    def test_angular_distance_opposite(self):
        assert AngularDistance().value([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(math.pi)

    def test_cosine_zero_vector(self):
        assert CosineSimilarity().value([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(20, 4))
        query = rng.normal(size=4)
        measure = CosineSimilarity()
        expected = [measure.value(row, query) for row in data]
        np.testing.assert_allclose(measure.values_to_query(data, query), expected, atol=1e-12)

    def test_cosine_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            CosineSimilarity().value([1.0, 0.0, 0.0], [1.0, 0.0])

"""Tests for the brute-force exact uniform sampler (the ground-truth baseline)."""

import numpy as np
import pytest

from repro.core import ExactUniformSampler
from repro.distances import EuclideanDistance, JaccardSimilarity
from repro.exceptions import EmptyDatasetError, InvalidParameterError, NotFittedError
from repro.fairness.metrics import total_variation_from_uniform


class TestBasics:
    def test_returns_near_point(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=0)
        sampler.fit(planted_sets["dataset"])
        index = sampler.sample(planted_sets["query"])
        assert index in planted_sets["near_indices"]

    def test_returns_none_when_no_neighbor(self):
        sampler = ExactUniformSampler(EuclideanDistance(), 0.5, seed=0)
        sampler.fit(np.array([[10.0], [20.0]]))
        assert sampler.sample(np.array([0.0])) is None

    def test_not_fitted_raises(self):
        sampler = ExactUniformSampler(EuclideanDistance(), 1.0)
        with pytest.raises(NotFittedError):
            sampler.sample(np.array([0.0]))

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ExactUniformSampler(EuclideanDistance(), 1.0).fit(np.empty((0, 3)))

    def test_neighborhood_matches_ground_truth(self, planted_vectors):
        sampler = ExactUniformSampler(EuclideanDistance(), 1.0, seed=1)
        sampler.fit(planted_vectors["points"])
        neighborhood = set(sampler.neighborhood(planted_vectors["query"]).tolist())
        assert neighborhood == planted_vectors["near_indices"]

    def test_detailed_result_reports_value_and_stats(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=2)
        sampler.fit(planted_sets["dataset"])
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.found
        assert result.value >= planted_sets["radius"]
        assert result.stats.distance_evaluations == len(planted_sets["dataset"])

    def test_num_points(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), 0.5).fit(planted_sets["dataset"])
        assert sampler.num_points == len(planted_sets["dataset"])


class TestUniformity:
    def test_output_distribution_is_uniform(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=3)
        sampler.fit(planted_sets["dataset"])
        counts = {i: 0 for i in planted_sets["near_indices"]}
        repetitions = 3000
        for _ in range(repetitions):
            counts[sampler.sample(planted_sets["query"])] += 1
        tv = total_variation_from_uniform(list(counts.values()))
        assert tv < 0.06

    def test_every_neighbor_reachable(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=4)
        sampler.fit(planted_sets["dataset"])
        seen = {sampler.sample(planted_sets["query"]) for _ in range(300)}
        assert seen == planted_sets["near_indices"]


class TestKSampling:
    def test_without_replacement_distinct(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=5)
        sampler.fit(planted_sets["dataset"])
        sample = sampler.sample_k(planted_sets["query"], 4, replacement=False)
        assert len(sample) == 4
        assert len(set(sample)) == 4
        assert set(sample) <= planted_sets["near_indices"]

    def test_without_replacement_caps_at_neighborhood_size(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=6)
        sampler.fit(planted_sets["dataset"])
        sample = sampler.sample_k(planted_sets["query"], 50, replacement=False)
        assert set(sample) == planted_sets["near_indices"]

    def test_with_replacement_length(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=7)
        sampler.fit(planted_sets["dataset"])
        sample = sampler.sample_k(planted_sets["query"], 25, replacement=True)
        assert len(sample) == 25
        assert set(sample) <= planted_sets["near_indices"]

    def test_zero_k(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), 0.5, seed=8).fit(planted_sets["dataset"])
        assert sampler.sample_k(planted_sets["query"], 0) == []

    def test_negative_k_rejected(self, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), 0.5, seed=9).fit(planted_sets["dataset"])
        with pytest.raises(InvalidParameterError):
            sampler.sample_k(planted_sets["query"], -1)

    def test_empty_neighborhood_returns_empty_list(self):
        sampler = ExactUniformSampler(EuclideanDistance(), 0.1, seed=10)
        sampler.fit(np.array([[5.0], [6.0]]))
        assert sampler.sample_k(np.array([0.0]), 3) == []

"""Tests for the fairness auditing harness (the machinery behind Figure 1)."""

import pytest

from repro.core import CollectAllFairSampler, ExactUniformSampler, StandardLSHSampler
from repro.distances import JaccardSimilarity
from repro.exceptions import InvalidParameterError
from repro.fairness import FairnessAuditor
from repro.lsh import MinHashFamily


@pytest.fixture
def auditor(planted_sets):
    return FairnessAuditor(
        planted_sets["dataset"], JaccardSimilarity(), radius=planted_sets["radius"], repetitions=400
    )


class TestAuditQuery:
    def test_exact_sampler_audits_as_fair(self, auditor, planted_sets):
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=0).fit(
            planted_sets["dataset"]
        )
        audit = auditor.audit_query(sampler, planted_sets["query"])
        assert audit.neighborhood_size == len(planted_sets["near_indices"])
        assert audit.tv_from_uniform < 0.15
        assert audit.failure_rate == 0.0

    def test_standard_lsh_audits_as_unfair(self, auditor, planted_sets):
        sampler = StandardLSHSampler(
            MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
            num_hashes=1, num_tables=40, seed=0,
        ).fit(planted_sets["dataset"])
        audit = auditor.audit_query(sampler, planted_sets["query"])
        # A deterministic per-structure answer concentrates all mass on one
        # point: total variation is near its maximum 1 - 1/b.
        assert audit.tv_from_uniform > 0.5

    def test_exclude_index_removes_query_from_neighborhood(self, planted_sets):
        auditor = FairnessAuditor(
            planted_sets["dataset"], JaccardSimilarity(), radius=planted_sets["radius"], repetitions=100
        )
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=1).fit(
            planted_sets["dataset"]
        )
        audit = auditor.audit_query(sampler, planted_sets["dataset"][0], exclude_index=0)
        assert audit.neighborhood_size == len(planted_sets["near_indices"]) - 1

    def test_by_similarity_rows_cover_neighborhood(self, auditor, planted_sets):
        sampler = CollectAllFairSampler(
            MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
            num_hashes=1, num_tables=40, seed=2,
        ).fit(planted_sets["dataset"])
        audit = auditor.audit_query(sampler, planted_sets["query"])
        support = sum(count for _, _, count in audit.by_similarity.as_sorted_rows())
        assert support == audit.neighborhood_size

    def test_invalid_repetitions(self, planted_sets):
        with pytest.raises(InvalidParameterError):
            FairnessAuditor(planted_sets["dataset"], JaccardSimilarity(), 0.5, repetitions=0)


class TestAuditReport:
    def test_aggregates_over_queries(self, planted_sets):
        auditor = FairnessAuditor(
            planted_sets["dataset"], JaccardSimilarity(), radius=planted_sets["radius"], repetitions=150
        )
        sampler = ExactUniformSampler(JaccardSimilarity(), planted_sets["radius"], seed=3).fit(
            planted_sets["dataset"]
        )
        queries = [planted_sets["query"], planted_sets["dataset"][0]]
        report = auditor.audit(sampler, queries, sampler_name="exact")
        assert report.sampler_name == "exact"
        assert len(report.queries) == 2
        assert 0.0 <= report.mean_tv <= 1.0
        assert 0.0 <= report.mean_gini <= 1.0
        assert len(report.summary_rows()) == 2

    def test_empty_report_means(self):
        from repro.fairness.audit import AuditReport

        report = AuditReport(sampler_name="none", radius=0.5, repetitions=10)
        assert report.mean_tv == 0.0
        assert report.mean_gini == 0.0
        assert report.mean_failure_rate == 0.0

    def test_fair_beats_standard_on_average(self, planted_sets):
        """The headline Q1 comparison in miniature."""
        auditor = FairnessAuditor(
            planted_sets["dataset"], JaccardSimilarity(), radius=planted_sets["radius"], repetitions=250
        )
        standard = StandardLSHSampler(
            MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
            num_hashes=1, num_tables=40, seed=4,
        ).fit(planted_sets["dataset"])
        fair = CollectAllFairSampler(
            MinHashFamily(), radius=planted_sets["radius"], far_radius=0.05,
            num_hashes=1, num_tables=40, seed=4,
        ).fit(planted_sets["dataset"])
        queries = [planted_sets["query"]]
        standard_report = auditor.audit(standard, queries)
        fair_report = auditor.audit(fair, queries)
        assert fair_report.mean_tv < standard_report.mean_tv

"""Tests for the uniformity metrics and frequency bookkeeping."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.fairness import (
    OutputFrequencies,
    SimilarityBucketedFrequencies,
    chi_square_uniformity,
    empirical_probabilities,
    gini_coefficient,
    kl_divergence_from_uniform,
    total_variation_from_uniform,
)


class TestEmpiricalProbabilities:
    def test_normalizes(self):
        np.testing.assert_allclose(empirical_probabilities([1, 1, 2]), [0.25, 0.25, 0.5])

    def test_all_zero_maps_to_uniform(self):
        np.testing.assert_allclose(empirical_probabilities([0, 0, 0, 0]), [0.25] * 4)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            empirical_probabilities([1, -1])

    def test_non_1d_rejected(self):
        with pytest.raises(InvalidParameterError):
            empirical_probabilities(np.ones((2, 2)))


class TestTotalVariation:
    def test_uniform_counts_give_zero(self):
        assert total_variation_from_uniform([10, 10, 10, 10]) == 0.0

    def test_concentrated_counts_give_max(self):
        assert total_variation_from_uniform([100, 0, 0, 0]) == pytest.approx(0.75)

    def test_empty_support(self):
        assert total_variation_from_uniform([]) == 0.0

    def test_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            counts = rng.integers(0, 50, size=8)
            tv = total_variation_from_uniform(counts)
            assert 0.0 <= tv <= 1.0

    def test_more_skew_means_larger_tv(self):
        assert total_variation_from_uniform([9, 1]) > total_variation_from_uniform([6, 4])


class TestKL:
    def test_uniform_gives_zero(self):
        assert kl_divergence_from_uniform([5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_gives_log_n(self):
        assert kl_divergence_from_uniform([10, 0]) == pytest.approx(np.log(2))

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            counts = rng.integers(0, 30, size=6)
            assert kl_divergence_from_uniform(counts) >= -1e-12


class TestChiSquare:
    def test_uniform_counts_high_p_value(self):
        result = chi_square_uniformity([100, 101, 99, 100])
        assert result["p_value"] > 0.5

    def test_skewed_counts_low_p_value(self):
        result = chi_square_uniformity([500, 10, 10, 10])
        assert result["p_value"] < 0.001

    def test_degrees_of_freedom(self):
        assert chi_square_uniformity([1, 2, 3, 4, 5])["dof"] == 4

    def test_small_support(self):
        assert chi_square_uniformity([7])["p_value"] == 1.0

    def test_p_value_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        counts = [40, 55, 62, 43, 50]
        ours = chi_square_uniformity(counts)
        _, reference = scipy_stats.chisquare(counts)
        assert ours["p_value"] == pytest.approx(reference, abs=0.02)


class TestGini:
    def test_even_counts_give_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_counts_near_one(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            gini_coefficient([-1, 2])


class TestOutputFrequencies:
    def test_record_and_rates(self):
        frequencies = OutputFrequencies()
        frequencies.record_many([1, 1, 2, None, 3])
        assert frequencies.num_queries == 5
        assert frequencies.num_failures == 1
        assert frequencies.num_successes == 4
        assert frequencies.relative_frequencies()[1] == pytest.approx(0.5)

    def test_counts_for_unseen_points_are_zero(self):
        frequencies = OutputFrequencies()
        frequencies.record(7)
        np.testing.assert_array_equal(frequencies.counts_for([7, 8]), [1.0, 0.0])

    def test_empty_relative_frequencies(self):
        assert OutputFrequencies().relative_frequencies() == {}


class TestSimilarityBucketing:
    def test_groups_by_rounded_similarity(self):
        frequencies = OutputFrequencies()
        frequencies.record_many([0, 0, 1, 2])
        similarities = {0: 0.9, 1: 0.9, 2: 0.5}
        bucketed = SimilarityBucketedFrequencies.from_frequencies(
            frequencies, [0, 1, 2], similarities
        )
        rows = dict((sim, freq) for sim, freq, _ in bucketed.as_sorted_rows())
        assert rows[0.9] == pytest.approx((0.5 + 0.25) / 2)
        assert rows[0.5] == pytest.approx(0.25)

    def test_unreported_points_count_as_zero(self):
        frequencies = OutputFrequencies()
        frequencies.record(0)
        bucketed = SimilarityBucketedFrequencies.from_frequencies(
            frequencies, [0, 1], {0: 0.8, 1: 0.8}
        )
        assert bucketed.per_similarity[0.8] == pytest.approx(0.5)
        assert bucketed.support[0.8] == 2

    def test_rows_sorted_by_similarity(self):
        frequencies = OutputFrequencies()
        frequencies.record_many([0, 1, 2])
        bucketed = SimilarityBucketedFrequencies.from_frequencies(
            frequencies, [0, 1, 2], {0: 0.3, 1: 0.9, 2: 0.6}
        )
        similarities = [sim for sim, _, _ in bucketed.as_sorted_rows()]
        assert similarities == sorted(similarities)

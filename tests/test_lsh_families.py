"""Tests for the LSH families: collision probabilities and basic behaviour."""

import numpy as np
import pytest

from repro.distances import CosineSimilarity, EuclideanDistance, HammingDistance, JaccardSimilarity
from repro.exceptions import InvalidParameterError, UnsupportedDataTypeError
from repro.lsh import (
    BitSamplingFamily,
    HyperplaneFamily,
    MinHashFamily,
    OneBitMinHashFamily,
    PStableFamily,
)
from repro.lsh.family import ConcatenatedFamily


def empirical_collision_rate(family, a, b, trials, seed=0):
    rng = np.random.default_rng(seed)
    collisions = 0
    for _ in range(trials):
        h = family.sample(rng)
        if h(a) == h(b):
            collisions += 1
    return collisions / trials


class TestMinHash:
    def test_collision_probability_equals_jaccard(self):
        assert MinHashFamily().collision_probability(0.37) == pytest.approx(0.37)

    def test_collision_probability_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            MinHashFamily().collision_probability(1.5)

    def test_empirical_collision_rate_matches_similarity(self):
        a = frozenset(range(0, 20))
        b = frozenset(range(10, 30))  # Jaccard 10/30 = 1/3
        rate = empirical_collision_rate(MinHashFamily(), a, b, trials=3000, seed=1)
        assert rate == pytest.approx(1 / 3, abs=0.04)

    def test_identical_sets_always_collide(self):
        s = frozenset({3, 9, 27})
        rng = np.random.default_rng(2)
        family = MinHashFamily()
        for _ in range(50):
            h = family.sample(rng)
            assert h(s) == h(s)

    def test_empty_set_gets_sentinel(self):
        rng = np.random.default_rng(3)
        h = MinHashFamily().sample(rng)
        assert h(frozenset()) == -1

    def test_rejects_vector_input(self):
        rng = np.random.default_rng(4)
        h = MinHashFamily().sample(rng)
        with pytest.raises(UnsupportedDataTypeError):
            h(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_measure_is_jaccard(self):
        assert isinstance(MinHashFamily().measure, JaccardSimilarity)


class TestOneBitMinHash:
    def test_collision_probability_formula(self):
        assert OneBitMinHashFamily().collision_probability(0.4) == pytest.approx(0.7)

    def test_collision_probability_at_zero(self):
        assert OneBitMinHashFamily().collision_probability(0.0) == pytest.approx(0.5)

    def test_hash_values_are_bits(self):
        rng = np.random.default_rng(5)
        family = OneBitMinHashFamily()
        s = frozenset({1, 5, 9})
        for _ in range(20):
            assert family.sample(rng)(s) in (0, 1)

    def test_empirical_collision_rate(self):
        a = frozenset(range(0, 10))
        b = frozenset(range(5, 15))  # Jaccard 5/15 = 1/3 -> collision (1+1/3)/2 = 2/3
        rate = empirical_collision_rate(OneBitMinHashFamily(), a, b, trials=3000, seed=6)
        assert rate == pytest.approx(2 / 3, abs=0.04)


class TestHyperplane:
    def test_collision_probability_parallel(self):
        assert HyperplaneFamily(4).collision_probability(1.0) == pytest.approx(1.0)

    def test_collision_probability_orthogonal(self):
        assert HyperplaneFamily(4).collision_probability(0.0) == pytest.approx(0.5)

    def test_collision_probability_opposite(self):
        assert HyperplaneFamily(4).collision_probability(-1.0) == pytest.approx(0.0, abs=1e-12)

    def test_empirical_rate(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])  # orthogonal -> 0.5
        rate = empirical_collision_rate(HyperplaneFamily(3), a, b, trials=2000, seed=7)
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_hash_values_are_bits(self):
        rng = np.random.default_rng(8)
        h = HyperplaneFamily(5).sample(rng)
        assert h(np.ones(5)) in (0, 1)

    def test_invalid_dim(self):
        with pytest.raises(InvalidParameterError):
            HyperplaneFamily(0)

    def test_measure(self):
        assert isinstance(HyperplaneFamily(3).measure, CosineSimilarity)


class TestPStable:
    def test_collision_probability_decreasing(self):
        family = PStableFamily(dim=4, width=4.0)
        probs = [family.collision_probability(d) for d in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(earlier > later for earlier, later in zip(probs, probs[1:]))

    def test_collision_probability_zero_distance(self):
        assert PStableFamily(4).collision_probability(0.0) == 1.0

    def test_negative_distance_rejected(self):
        with pytest.raises(InvalidParameterError):
            PStableFamily(4).collision_probability(-1.0)

    def test_empirical_rate_close_to_theory(self):
        family = PStableFamily(dim=6, width=4.0)
        rng = np.random.default_rng(9)
        a = rng.normal(size=6)
        b = a + np.array([2.0, 0, 0, 0, 0, 0])  # distance 2
        rate = empirical_collision_rate(family, a, b, trials=2000, seed=10)
        assert rate == pytest.approx(family.collision_probability(2.0), abs=0.05)

    def test_invalid_width(self):
        with pytest.raises(InvalidParameterError):
            PStableFamily(dim=3, width=0.0)

    def test_measure(self):
        assert isinstance(PStableFamily(3).measure, EuclideanDistance)

    def test_hash_dataset_matches_scalar(self):
        rng = np.random.default_rng(11)
        h = PStableFamily(dim=4, width=2.0).sample(rng)
        data = rng.normal(size=(10, 4))
        assert h.hash_dataset(data) == [h(row) for row in data]


class TestBitSampling:
    def test_collision_probability_formula(self):
        assert BitSamplingFamily(10).collision_probability(3) == pytest.approx(0.7)

    def test_out_of_range_distance(self):
        with pytest.raises(InvalidParameterError):
            BitSamplingFamily(4).collision_probability(5)

    def test_empirical_rate(self):
        a = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        b = np.array([0, 0, 0, 0, 0, 0, 1, 1])  # Hamming distance 2 of 8 -> 0.75
        rate = empirical_collision_rate(BitSamplingFamily(8), a, b, trials=2000, seed=12)
        assert rate == pytest.approx(0.75, abs=0.04)

    def test_measure(self):
        assert isinstance(BitSamplingFamily(3).measure, HammingDistance)


class TestConcatenation:
    def test_collision_probability_is_power(self):
        family = ConcatenatedFamily(MinHashFamily(), 3)
        assert family.collision_probability(0.5) == pytest.approx(0.125)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            ConcatenatedFamily(MinHashFamily(), 0)

    def test_keys_are_tuples_of_length_k(self):
        rng = np.random.default_rng(13)
        h = ConcatenatedFamily(MinHashFamily(), 4).sample(rng)
        key = h(frozenset({1, 2, 3}))
        assert isinstance(key, tuple) and len(key) == 4

    def test_concatenate_helper(self):
        family = MinHashFamily().concatenate(2)
        assert isinstance(family, ConcatenatedFamily)
        assert family.k == 2

    def test_hash_dataset_consistent_with_call(self):
        rng = np.random.default_rng(14)
        h = ConcatenatedFamily(OneBitMinHashFamily(), 3).sample(rng)
        dataset = [frozenset({1, 2}), frozenset({3, 4, 5}), frozenset({1, 9})]
        assert h.hash_dataset(dataset) == [h(p) for p in dataset]

    def test_empirical_rate_matches_power(self):
        a = frozenset(range(0, 10))
        b = frozenset(range(0, 9))  # Jaccard 0.9
        family = ConcatenatedFamily(MinHashFamily(), 2)
        rate = empirical_collision_rate(family, a, b, trials=3000, seed=15)
        assert rate == pytest.approx(0.81, abs=0.04)


class TestBatchHashers:
    def test_minhash_batch_matches_individual_on_point(self):
        rng = np.random.default_rng(16)
        family = MinHashFamily()
        functions = [family.sample(rng) for _ in range(20)]
        hasher = family.make_batch_hasher(functions)
        point = frozenset({4, 8, 15, 16, 23, 42})
        assert hasher.keys_for_point(point) == [f(point) for f in functions]

    def test_minhash_batch_matches_individual_on_dataset(self):
        rng = np.random.default_rng(17)
        family = MinHashFamily()
        functions = [family.sample(rng) for _ in range(10)]
        hasher = family.make_batch_hasher(functions)
        dataset = [frozenset({1, 2, 3}), frozenset({2, 3, 4}), frozenset({100, 200})]
        batch = hasher.keys_for_dataset(dataset)
        for function, keys in zip(functions, batch):
            assert keys == [function(p) for p in dataset]

    def test_onebit_batch_matches_individual(self):
        rng = np.random.default_rng(18)
        family = OneBitMinHashFamily()
        functions = [family.sample(rng) for _ in range(15)]
        hasher = family.make_batch_hasher(functions)
        dataset = [frozenset({i, i + 1, i + 2}) for i in range(12)]
        batch = hasher.keys_for_dataset(dataset)
        for function, keys in zip(functions, batch):
            assert keys == [function(p) for p in dataset]

    def test_batch_handles_empty_sets(self):
        rng = np.random.default_rng(19)
        family = MinHashFamily()
        functions = [family.sample(rng) for _ in range(5)]
        hasher = family.make_batch_hasher(functions)
        dataset = [frozenset(), frozenset({1, 2}), frozenset()]
        batch = hasher.keys_for_dataset(dataset)
        for keys in batch:
            assert keys[0] == -1 and keys[2] == -1

    def test_concatenated_batch_matches_individual(self):
        rng = np.random.default_rng(20)
        family = ConcatenatedFamily(MinHashFamily(), 3)
        functions = [family.sample(rng) for _ in range(8)]
        hasher = family.make_batch_hasher(functions)
        dataset = [frozenset({1, 5, 9}), frozenset({2, 5}), frozenset({7, 8, 9, 10})]
        batch = hasher.keys_for_dataset(dataset)
        for function, keys in zip(functions, batch):
            assert keys == [function(p) for p in dataset]
        point = frozenset({5, 9, 11})
        assert hasher.keys_for_point(point) == [f(point) for f in functions]

    def test_hyperplane_family_has_no_batch_hasher(self):
        rng = np.random.default_rng(21)
        family = HyperplaneFamily(4)
        assert family.make_batch_hasher([family.sample(rng)]) is None

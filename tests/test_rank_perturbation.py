"""Tests for the Appendix A rank-perturbation sampler (single repeated query)."""

import pytest

from repro.core import RankPerturbationSampler
from repro.exceptions import NotFittedError
from repro.fairness.metrics import total_variation_from_uniform
from repro.lsh import MinHashFamily


def make_sampler(dataset, radius=0.5, seed=0, num_tables=50):
    return RankPerturbationSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=0.05,
        num_hashes=1,
        num_tables=num_tables,
        seed=seed,
    ).fit(dataset)


class TestCorrectness:
    def test_returns_near_point(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

    def test_returns_none_without_neighbors(self):
        dataset = [frozenset({300 + i}) for i in range(6)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2})) is None

    def test_not_fitted_raises(self):
        sampler = RankPerturbationSampler(MinHashFamily(), radius=0.4, num_hashes=1, num_tables=4)
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_ranks_remain_a_permutation_after_queries(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=1)
        for _ in range(30):
            sampler.sample(planted_sets["query"])
        ranks = sampler.current_ranks
        assert sorted(ranks.tolist()) == list(range(len(planted_sets["dataset"])))

    def test_dynamic_buckets_stay_sorted(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=2)
        for _ in range(20):
            sampler.sample(planted_sets["query"])
        for table in sampler._dynamic_tables:
            for bucket in table.values():
                assert bucket.ranks == sorted(bucket.ranks)

    def test_bucket_membership_is_preserved(self, planted_sets):
        """Rank swaps reorder buckets but never move points between buckets."""
        sampler = make_sampler(planted_sets["dataset"], seed=3)
        before = [
            {key: sorted(bucket.indices) for key, bucket in table.items()}
            for table in sampler._dynamic_tables
        ]
        for _ in range(25):
            sampler.sample(planted_sets["query"])
        after = [
            {key: sorted(bucket.indices) for key, bucket in table.items()}
            for table in sampler._dynamic_tables
        ]
        assert before == after


class TestIndependenceForRepeatedQuery:
    def test_repeated_query_is_uniform(self, planted_sets):
        """Theorem 5: repeating the same query yields fresh uniform samples."""
        sampler = make_sampler(planted_sets["dataset"], seed=4)
        counts = {i: 0 for i in planted_sets["near_indices"]}
        repetitions = 1500
        for _ in range(repetitions):
            index = sampler.sample(planted_sets["query"])
            assert index in counts
            counts[index] += 1
        assert total_variation_from_uniform(list(counts.values())) < 0.12
        assert min(counts.values()) > 0.4 * repetitions / len(counts)

    def test_repeated_query_visits_every_neighbor(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=5)
        seen = {sampler.sample(planted_sets["query"]) for _ in range(300)}
        assert seen == planted_sets["near_indices"]

    def test_outputs_change_between_repetitions(self, planted_sets):
        """Unlike the plain Section 3 structure, the output is not constant."""
        sampler = make_sampler(planted_sets["dataset"], seed=6)
        outputs = [sampler.sample(planted_sets["query"]) for _ in range(40)]
        assert len(set(outputs)) > 1

"""Scalar-vs-vectorized equivalence of the candidate-evaluation pipeline.

Two layers of guarantees, both required by the pipeline's contract
(``docs/performance.md``):

1. **Kernel equivalence** — for every measure, the batched
   :meth:`~repro.distances.base.Measure.values_at` kernel over a columnar
   :mod:`repro.store` matches a loop over the scalar
   :meth:`~repro.distances.base.Measure.value` to 1e-12 (and, because the
   scalar implementations share the kernels' einsum recipes, bitwise) across
   dtypes and shapes.

2. **Sampler equivalence** — every rewritten sampler, seeded identically,
   returns *byte-identical* :class:`~repro.core.result.QueryResult` objects
   (index, value, and every stats counter) whether candidates are scored
   through the vectorized kernels or through the forced scalar fallback
   (:func:`repro.core.evaluator.scalar_kernels`), including over
   :class:`~repro.engine.dynamic.DynamicLSHTables` with tombstones still
   awaiting compaction.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ApproximateNeighborhoodSampler,
    CollectAllFairSampler,
    ExactUniformSampler,
    FilterFairSampler,
    GaussianFilterIndex,
    IndependentFairSampler,
    PermutationFairSampler,
    StandardLSHSampler,
    WeightedFairSampler,
    exponential_similarity_weight,
    scalar_kernels,
)
from repro.core.evaluator import vectorized_kernels_enabled
from repro.data import make_store
from repro.store import DenseStore, SetStore
from repro.distances import (
    AngularDistance,
    CosineSimilarity,
    EuclideanDistance,
    HammingDistance,
    InnerProductSimilarity,
    JaccardSimilarity,
)
from repro.engine import BatchQueryEngine
from repro.lsh import MinHashFamily

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])

DENSE_MEASURES = [
    EuclideanDistance(),
    CosineSimilarity(),
    AngularDistance(),
    InnerProductSimilarity(),
]


def _assert_kernel_matches_scalar(measure, store, dataset, query):
    indices = np.arange(len(dataset), dtype=np.intp)
    batched = measure.values_at(store, indices, query)
    looped = np.asarray([measure.value(point, query) for point in dataset], dtype=np.float64)
    np.testing.assert_allclose(batched, looped, rtol=0.0, atol=1e-12)
    # The implementations share one arithmetic recipe, so the match is in
    # fact exact — which is what makes byte-identical sampler outputs
    # possible at all.
    assert np.array_equal(batched, looped)


class TestKernelEquivalence:
    @pytest.mark.parametrize("measure", DENSE_MEASURES, ids=lambda m: m.name)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    @pytest.mark.parametrize("shape", [(1, 1), (7, 3), (64, 16), (200, 5)])
    def test_dense_measures(self, measure, dtype, shape):
        rng = np.random.default_rng(hash((measure.name, str(dtype), shape)) % 2**32)
        data = (10 * rng.standard_normal(shape)).astype(dtype)
        query = (10 * rng.standard_normal(shape[1])).astype(dtype)
        store = make_store(data.astype(np.float64) if dtype == np.int64 else data)
        assert isinstance(store, DenseStore)
        _assert_kernel_matches_scalar(measure, store, list(data), query)

    @pytest.mark.parametrize("shape", [(5, 4), (40, 9)])
    def test_hamming_binary(self, shape):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, size=shape)
        query = rng.integers(0, 2, size=shape[1])
        store = make_store(data)
        assert isinstance(store, DenseStore)
        _assert_kernel_matches_scalar(HammingDistance(), store, list(data), query)

    @FAST
    @given(
        dataset=st.lists(
            st.frozensets(st.integers(0, 200), max_size=25), min_size=1, max_size=40
        ),
        query=st.frozensets(st.integers(0, 200), max_size=25),
    )
    def test_jaccard_property(self, dataset, query):
        store = make_store(dataset)
        assert isinstance(store, SetStore)
        _assert_kernel_matches_scalar(JaccardSimilarity(), store, dataset, query)

    def test_jaccard_string_sets_fall_back_to_scalar_path(self):
        """Non-integer set items have no CSR packing; scoring must not crash."""
        dataset = [frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"d"})]
        assert make_store(dataset) is None  # no columnar form
        sampler = ExactUniformSampler(JaccardSimilarity(), radius=0.3, seed=0).fit(dataset)
        assert sampler.sample(frozenset({"a", "b"})) in (0, 1)
        np.testing.assert_allclose(
            JaccardSimilarity().values_to_query(dataset, frozenset({"b"})),
            [0.5, 0.5, 0.0],
        )
        # Integer store + non-integer query: kernel falls back per call.
        int_sets = [frozenset({1, 2}), frozenset({3})]
        store = make_store(int_sets)
        assert isinstance(store, SetStore)
        values = JaccardSimilarity().values_at(store, np.asarray([0, 1]), frozenset({"x"}))
        np.testing.assert_allclose(values, [0.0, 0.0])

    def test_jaccard_empty_rows_and_query(self):
        dataset = [frozenset(), frozenset({1, 2}), frozenset({3})]
        store = make_store(dataset)
        _assert_kernel_matches_scalar(JaccardSimilarity(), store, dataset, frozenset())
        _assert_kernel_matches_scalar(JaccardSimilarity(), store, dataset, frozenset({2, 3}))

    @FAST
    @given(
        vectors=st.lists(
            st.lists(st.floats(-20, 20, allow_nan=False, allow_infinity=False), min_size=4, max_size=4),
            min_size=1,
            max_size=25,
        ),
        query=st.lists(st.floats(-20, 20, allow_nan=False, allow_infinity=False), min_size=4, max_size=4),
    )
    def test_euclidean_property(self, vectors, query):
        data = np.asarray(vectors, dtype=np.float64)
        store = make_store(data)
        _assert_kernel_matches_scalar(EuclideanDistance(), store, list(data), np.asarray(query))

    def test_default_kernel_falls_back_to_scalar_loop(self):
        """Measures without a columnar kernel loop over ``value`` by default."""
        from repro.distances.base import Measure, MeasureKind

        class FirstCoordinateGap(Measure):
            kind = MeasureKind.DISTANCE
            name = "first-coordinate-gap"

            def value(self, a, b):
                return abs(float(a[0]) - float(b[0]))

        data = np.asarray([[1.0, 9.0], [4.0, 9.0]])
        store = make_store(data)
        batched = FirstCoordinateGap().values_at(store, np.asarray([0, 1]), np.asarray([2.0, 0.0]))
        np.testing.assert_array_equal(batched, [1.0, 2.0])


def _set_workload(seed=0, n=120):
    rng = np.random.default_rng(seed)
    dataset = [
        frozenset(int(x) for x in rng.choice(80, size=rng.integers(4, 20), replace=False))
        for _ in range(n)
    ]
    query = dataset[0] | frozenset({200})
    return dataset, query


def _results_in_both_modes(build, query, exclude_index=None, repeats=3):
    """Query two identically seeded samplers, one per kernel mode."""
    vectorized = build()
    with scalar_kernels():
        assert not vectorized_kernels_enabled()
        scalar = build()
        scalar_results = [
            scalar.sample_detailed(query, exclude_index=exclude_index) for _ in range(repeats)
        ]
    assert vectorized_kernels_enabled()
    vector_results = [
        vectorized.sample_detailed(query, exclude_index=exclude_index) for _ in range(repeats)
    ]
    return vector_results, scalar_results


def _assert_byte_identical(vector_results, scalar_results):
    for vectorized, scalar in zip(vector_results, scalar_results):
        assert vectorized.index == scalar.index
        assert vectorized.value == scalar.value  # exact float equality
        assert vectorized.stats == scalar.stats  # every counter, dataclass-equal


LSH_KWARGS = dict(radius=0.3, far_radius=0.1, num_hashes=1, num_tables=25)


class TestSamplerEquivalence:
    @pytest.mark.parametrize(
        "sampler_cls",
        [PermutationFairSampler, IndependentFairSampler, CollectAllFairSampler,
         ApproximateNeighborhoodSampler, StandardLSHSampler],
    )
    def test_lsh_samplers_byte_identical(self, sampler_cls):
        dataset, query = _set_workload(seed=5)

        def build():
            return sampler_cls(MinHashFamily(), seed=17, **LSH_KWARGS).fit(dataset)

        _assert_byte_identical(*_results_in_both_modes(build, query, exclude_index=0))

    def test_standard_lsh_with_far_limit_and_shuffle(self):
        dataset, query = _set_workload(seed=6)

        def build():
            return StandardLSHSampler(
                MinHashFamily(), seed=8, shuffle_tables=True, far_point_limit_factor=1.0, **LSH_KWARGS
            ).fit(dataset)

        _assert_byte_identical(*_results_in_both_modes(build, query))

    def test_exact_sampler_byte_identical(self):
        dataset, query = _set_workload(seed=7)

        def build():
            return ExactUniformSampler(JaccardSimilarity(), radius=0.3, seed=3).fit(dataset)

        _assert_byte_identical(*_results_in_both_modes(build, query, exclude_index=2))

    def test_exact_sampler_dense_byte_identical(self):
        rng = np.random.default_rng(11)
        data = rng.standard_normal((150, 8))
        query = data[0] + 0.01 * rng.standard_normal(8)

        def build():
            return ExactUniformSampler(EuclideanDistance(), radius=2.5, seed=4).fit(data)

        _assert_byte_identical(*_results_in_both_modes(build, query))

    def test_weighted_sampler_byte_identical(self):
        dataset, query = _set_workload(seed=8)
        weight = exponential_similarity_weight(scale=2.0)

        def build():
            return WeightedFairSampler(
                IndependentFairSampler(MinHashFamily(), seed=9, **LSH_KWARGS),
                weight=weight,
                max_weight=weight(1.0),
                seed=5,
            ).fit(dataset)

        _assert_byte_identical(*_results_in_both_modes(build, query))

    def test_filter_samplers_byte_identical(self):
        from repro.data import planted_inner_product_neighborhood

        points, query, _ = planted_inner_product_neighborhood(
            n_background=250, n_neighbors=10, dim=16, alpha=0.8, beta_max=0.2, seed=13
        )

        def build_index():
            return GaussianFilterIndex(alpha=0.8, beta=0.3, seed=21).fit(points)

        _assert_byte_identical(*_results_in_both_modes(build_index, query))

        def build_fair():
            return FilterFairSampler(alpha=0.8, beta=0.3, num_structures=4, seed=22).fit(points)

        _assert_byte_identical(*_results_in_both_modes(build_fair, query))

    def test_dynamic_tables_with_pending_tombstones(self):
        """Equivalence must survive churn, with tombstones left un-compacted."""
        dataset, query = _set_workload(seed=9, n=100)

        def run(mode_scalar):
            def serve():
                sampler = IndependentFairSampler(MinHashFamily(), seed=31, **LSH_KWARGS)
                # max_tombstone_fraction=1.0: deletes stay pending tombstones.
                engine = BatchQueryEngine.build(
                    sampler, dataset, max_tombstone_fraction=1.0, seed=31
                )
                for index in (0, 3, 4):
                    engine.delete(index)
                engine.insert_many([frozenset({1, 2, 3}), query | frozenset({5})])
                assert engine.tables.pending_tombstones > 0
                return engine.run([query, query])

            if mode_scalar:
                with scalar_kernels():
                    return serve()
            return serve()

        vector_responses = run(mode_scalar=False)
        scalar_responses = run(mode_scalar=True)
        for vectorized, scalar in zip(vector_responses, scalar_responses):
            assert vectorized.indices == scalar.indices
            assert vectorized.value == scalar.value
            assert vectorized.stats == scalar.stats

    def test_permutation_sampler_k_lowest_matches_exact_ball(self):
        """The rewritten k-lowest-rank scan still returns true near neighbors."""
        dataset, query = _set_workload(seed=10)
        sampler = PermutationFairSampler(MinHashFamily(), seed=12, **LSH_KWARGS).fit(dataset)
        exact = ExactUniformSampler(JaccardSimilarity(), radius=0.3, seed=0).fit(dataset)
        ball = set(exact.neighborhood(query).tolist())
        sample = sampler.sample_k(query, 5, replacement=False)
        assert set(sample) <= ball
        with scalar_kernels():
            scalar_sampler = PermutationFairSampler(MinHashFamily(), seed=12, **LSH_KWARGS).fit(dataset)
            assert scalar_sampler.sample_k(query, 5, replacement=False) == sample

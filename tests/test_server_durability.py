"""HTTP durability surface + client retry/timeout semantics.

Server side: a durable facade behind :class:`FairNNServer` journals every
``/v1/mutate``, honors idempotency keys over the wire, checkpoints on
``POST /v1/admin/checkpoint``, reboots byte-identically via
:meth:`FairNNServer.from_data_dir`, and maps a full disk
(:class:`~repro.exceptions.WALWriteError`) to **507** — with the mutation
guaranteed unapplied.

Client side: every request carries an explicit socket timeout (default 30 s
— no more indefinite hangs), socket timeouts surface as the typed
:class:`~repro.exceptions.ServerTimeoutError`, transient statuses (429/503)
are retried with jittered exponential backoff floored by ``Retry-After``,
network-error retries are restricted to idempotent requests (GETs and keyed
mutations — never sample POSTs, which may have consumed server RNG), and an
overall ``deadline`` bounds one logical call across all its attempts.
"""

from __future__ import annotations

import random
import socket
import threading

import numpy as np
import pytest

from repro import FairNN, FairNNClient, FairNNServer
from repro.exceptions import ServerTimeoutError
from repro.server.client import ServerHTTPError
from repro.spec import LSHSpec, SamplerSpec
from repro.testing import FaultInjector, raise_disk_full

SEED = 7
PARAMS = {"radius": 0.35, "num_hashes": 2, "num_tables": 6}
SPEC = SamplerSpec("permutation", PARAMS, lsh=LSHSpec("minhash"), seed=SEED)


def _dataset(seed=2, n=30):
    rng = np.random.default_rng(seed)
    return [
        frozenset(int(x) for x in rng.choice(300, size=rng.integers(8, 20)))
        for _ in range(n)
    ]


def _encode(point):
    return sorted(point)


@pytest.fixture
def durable_server(tmp_path):
    nn = FairNN.from_spec(SPEC).serve(
        _dataset(), data_dir=tmp_path / "d", fsync="off"
    )
    with FairNNServer(nn) as server:
        yield server, FairNNClient(server.url), tmp_path / "d"
    nn.close()


# ----------------------------------------------------------------------
# Durable serving over HTTP
# ----------------------------------------------------------------------
class TestDurableServer:
    def test_healthz_reports_durable(self, durable_server):
        _, client, _ = durable_server
        assert client.healthz()["durable"] is True

    def test_healthz_reports_not_durable_without_data_dir(self):
        nn = FairNN.from_spec(SPEC).serve(_dataset())
        with FairNNServer(nn) as server:
            assert FairNNClient(server.url).healthz()["durable"] is False
        nn.close()

    def test_mutate_idempotency_over_the_wire(self, durable_server):
        _, client, _ = durable_server
        extra = _dataset(seed=50, n=2)
        first = client.insert(extra, idempotency_key="wire-key")
        second = client.insert(extra, idempotency_key="wire-key")
        assert first["indices"] == second["indices"]
        client.delete(first["indices"][0], idempotency_key="wire-del")
        client.delete(first["indices"][0], idempotency_key="wire-del")  # no 410

    def test_invalid_idempotency_key_is_400(self, durable_server):
        server, _, _ = durable_server
        import json
        import urllib.request

        for bad in ["", 7]:
            body = json.dumps(
                {"op": "delete", "index": 0, "idempotency_key": bad}
            ).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/mutate",
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_checkpoint_endpoint(self, durable_server):
        _, client, data_dir = durable_server
        client.insert(_dataset(seed=51, n=2))
        report = client.checkpoint()
        assert report["status"] == "completed"
        assert report["durability"]["durable"] is True
        assert (data_dir / "snapshots").is_dir()

    def test_checkpoint_on_non_durable_server_is_400(self):
        nn = FairNN.from_spec(SPEC).serve(_dataset())
        with FairNNServer(nn) as server:
            with pytest.raises(ServerHTTPError) as excinfo:
                FairNNClient(server.url).checkpoint()
            assert excinfo.value.status == 400
        nn.close()

    def test_disk_full_maps_to_507_and_mutation_not_applied(self, durable_server):
        server, client, _ = durable_server
        faults = FaultInjector()
        with server.handle.acquire() as nn:
            live_before = nn.num_live_points
            nn.wal.fault_injector = faults
        faults.arm("wal.flush", raise_disk_full)
        with pytest.raises(ServerHTTPError) as excinfo:
            client.insert(_dataset(seed=52, n=1))
        assert excinfo.value.status == 507
        with server.handle.acquire() as nn:
            nn.wal.fault_injector = None
            assert nn.num_live_points == live_before
        # The disk recovered; the same insert now lands.
        client.insert(_dataset(seed=52, n=1))

    def test_reboot_from_data_dir_is_byte_identical(self, tmp_path):
        dataset = _dataset()
        extra = _dataset(seed=60, n=5)
        queries = dataset[:4] + extra[:2]

        nn = FairNN.from_spec(SPEC).serve(
            dataset, data_dir=tmp_path / "d", fsync="off"
        )
        with FairNNServer(nn) as server:
            client = FairNNClient(server.url)
            client.insert(extra[:3])
            client.delete(1)
            client.checkpoint()
            client.insert(extra[3:])  # past the checkpoint: WAL-replayed
            before = client.sample_batch(queries, k=3, replacement=False)["results"]
        nn.close()

        with FairNNServer.from_data_dir(tmp_path / "d") as rebooted:
            client = FairNNClient(rebooted.url)
            assert client.healthz()["durable"] is True
            after = client.sample_batch(queries, k=3, replacement=False)["results"]
            with rebooted.handle.acquire() as facade:
                recovered = facade
        recovered.close()
        assert before == after


# ----------------------------------------------------------------------
# Client: typed timeouts
# ----------------------------------------------------------------------
class TestClientTimeout:
    def test_socket_timeout_is_typed(self):
        """A server that accepts and never answers must not hang the client."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        done = threading.Event()

        def black_hole():
            try:
                conn, _ = listener.accept()
                done.wait(5.0)
                conn.close()
            except OSError:
                pass

        thread = threading.Thread(target=black_hole, daemon=True)
        thread.start()
        try:
            client = FairNNClient(
                f"http://127.0.0.1:{port}", timeout=0.2, retries=0
            )
            with pytest.raises(ServerTimeoutError):
                client.healthz()
        finally:
            done.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_server_timeout_error_is_a_timeout_error(self):
        assert issubclass(ServerTimeoutError, TimeoutError)

    def test_default_timeout_is_documented_30s(self):
        assert FairNNClient("http://x").timeout == 30.0


# ----------------------------------------------------------------------
# Client: retry loop (no server needed — the transport is stubbed)
# ----------------------------------------------------------------------
def _stubbed(client, responses):
    """Replace the transport with a scripted one; returns the call log."""
    calls = []

    def fake(method, path, body, timeout):
        calls.append({"method": method, "path": path, "body": body, "timeout": timeout})
        action = responses[min(len(calls) - 1, len(responses) - 1)]
        if isinstance(action, Exception):
            raise action
        return action

    client._request_once = fake
    return calls


class TestClientRetries:
    def _client(self, **kwargs):
        kwargs.setdefault("rng", random.Random(0))
        kwargs.setdefault("sleep", lambda _s: None)
        return FairNNClient("http://stub", **kwargs)

    def test_429_retried_honoring_retry_after(self):
        sleeps = []
        client = self._client(sleep=sleeps.append, retries=2, backoff=0.001)
        _stubbed(
            client,
            [
                ServerHTTPError(429, "busy", retry_after=0.75),
                ServerHTTPError(429, "busy", retry_after=0.75),
                {"ok": True},
            ],
        )
        assert client.healthz() == {"ok": True}
        # Retry-After floors the jittered backoff.
        assert sleeps == [0.75, 0.75]

    def test_503_retried_for_sample_posts(self):
        """Transient statuses are safe for samples: the server rejected the
        request before drawing anything."""
        client = self._client(retries=1, backoff=0.0)
        calls = _stubbed(
            client, [ServerHTTPError(503, "draining"), {"index": 4}]
        )
        assert client.sample([1, 2, 3])["index"] == 4
        assert len(calls) == 2

    def test_retries_exhausted_reraises(self):
        client = self._client(retries=1, backoff=0.0)
        _stubbed(client, [ServerHTTPError(429, "busy")])
        with pytest.raises(ServerHTTPError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429

    def test_non_transient_status_never_retried(self):
        client = self._client(retries=3, backoff=0.0)
        calls = _stubbed(client, [ServerHTTPError(404, "gone")])
        with pytest.raises(ServerHTTPError):
            client.healthz()
        assert len(calls) == 1

    def test_get_retries_network_errors(self):
        client = self._client(retries=1, backoff=0.0)
        calls = _stubbed(client, [TimeoutError("socket"), {"status": "ok"}])
        assert client.healthz() == {"status": "ok"}
        assert len(calls) == 2

    def test_sample_post_does_not_retry_network_errors(self):
        """A lost sample response may mean the server already drew from its
        RNG — a blind retry would silently skew reproducibility."""
        client = self._client(retries=3, backoff=0.0)
        calls = _stubbed(client, [TimeoutError("socket")])
        with pytest.raises(ServerTimeoutError):
            client.sample([1, 2, 3])
        assert len(calls) == 1

    def test_mutations_retry_with_one_idempotency_key(self):
        client = self._client(retries=2, backoff=0.0)
        calls = _stubbed(client, [TimeoutError("socket"), {"indices": [9]}])
        result = client.insert([[1, 2, 3]])
        assert result == {"indices": [9]}
        keys = {c["body"]["idempotency_key"] for c in calls}
        assert len(calls) == 2 and len(keys) == 1  # same key on the retry

    def test_explicit_idempotency_key_passes_through(self):
        client = self._client(retries=0)
        calls = _stubbed(client, [{"status": "deleted"}])
        client.delete(3, idempotency_key="mine")
        assert calls[0]["body"]["idempotency_key"] == "mine"

    def test_deadline_expiry_is_typed(self):
        client = self._client(retries=50, backoff=0.05, deadline=0.15)
        _stubbed(client, [ServerHTTPError(503, "draining", retry_after=1.0)])
        client._sleep = lambda s: None  # sleeps are virtual; the clock is real
        with pytest.raises(ServerTimeoutError, match="deadline"):
            client._request("GET", "/healthz")

    def test_backoff_is_jittered_and_capped(self):
        sleeps = []
        client = self._client(
            sleep=sleeps.append, retries=4, backoff=0.1, backoff_cap=0.3,
            rng=random.Random(123),
        )
        _stubbed(client, [ServerHTTPError(429, "busy")] * 4 + [{"ok": 1}])
        client.healthz()
        assert len(sleeps) == 4
        for attempt, delay in enumerate(sleeps):
            assert 0.0 <= delay <= min(0.1 * 2**attempt, 0.3)

    def test_checkpoint_method_posts_admin_checkpoint(self):
        client = self._client(retries=0)
        calls = _stubbed(client, [{"status": "completed"}])
        assert client.checkpoint() == {"status": "completed"}
        assert calls[0]["method"] == "POST"
        assert calls[0]["path"] == "/v1/admin/checkpoint"

"""Tests for the Section 5 Gaussian filter index ((alpha, beta)-NN)."""

import numpy as np
import pytest

from repro.core import GaussianFilterIndex
from repro.core.filter_nn import default_filters_per_block, filter_rho, query_threshold_offset
from repro.exceptions import EmptyDatasetError, InvalidParameterError, NotFittedError


def make_index(points, alpha=0.8, beta=0.3, seed=0, **kwargs):
    return GaussianFilterIndex(alpha=alpha, beta=beta, seed=seed, **kwargs).fit(points)


class TestHelpers:
    def test_rho_formula(self):
        rho = filter_rho(0.8, 0.3)
        expected = (1 - 0.64) * (1 - 0.09) / (1 - 0.24) ** 2
        assert rho == pytest.approx(expected)

    def test_rho_rejects_bad_thresholds(self):
        with pytest.raises(InvalidParameterError):
            filter_rho(0.3, 0.8)

    def test_threshold_offset_decreases_with_alpha(self):
        assert query_threshold_offset(0.9, 0.1) < query_threshold_offset(0.5, 0.1)

    def test_threshold_offset_decreases_with_larger_epsilon(self):
        assert query_threshold_offset(0.8, 0.5) < query_threshold_offset(0.8, 0.01)

    def test_default_filters_per_block_positive(self):
        assert default_filters_per_block(1000, 0.8, 0.3) >= 2

    def test_default_filters_grow_with_n(self):
        assert default_filters_per_block(100_000, 0.8, 0.3) >= default_filters_per_block(100, 0.8, 0.3)


class TestConstruction:
    def test_invalid_thresholds(self):
        with pytest.raises(InvalidParameterError):
            GaussianFilterIndex(alpha=0.3, beta=0.8)

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            GaussianFilterIndex(alpha=0.8, beta=0.3).fit(np.empty((0, 4)))

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianFilterIndex(alpha=0.8, beta=0.3).search(np.ones(4))

    def test_linear_space_every_point_stored_once(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"])
        assert index.total_stored_references() == len(planted_unit_vectors["points"])

    def test_num_blocks_default(self):
        index = GaussianFilterIndex(alpha=0.8, beta=0.3)
        # t = ceil(1 / (1 - 0.64)) = ceil(2.78) = 3
        assert index.num_blocks == 3

    def test_bucket_of_returns_stored_key(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"])
        key = index.bucket_of(0)
        assert 0 in index._buckets[key]
        assert len(key) == index.num_blocks


class TestQuery:
    def test_finds_planted_neighbor(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"], seed=1)
        result = index.sample_detailed(planted_unit_vectors["query"])
        assert result.found
        assert result.value >= index.beta

    def test_recall_over_constructions(self, planted_unit_vectors):
        """Theorem 3: a near point is found with constant probability; with a
        small epsilon the empirical success rate should be high."""
        hits = 0
        trials = 25
        for seed in range(trials):
            index = make_index(planted_unit_vectors["points"], seed=seed, epsilon=0.05)
            if index.search(planted_unit_vectors["query"]) is not None:
                hits += 1
        assert hits >= 0.8 * trials

    def test_returns_none_when_no_point_above_beta(self):
        rng = np.random.default_rng(0)
        # All points nearly orthogonal to the query.
        points = rng.normal(size=(100, 16))
        points[:, 0] = 0.0
        points /= np.linalg.norm(points, axis=1, keepdims=True)
        query = np.zeros(16)
        query[0] = 1.0
        index = GaussianFilterIndex(alpha=0.9, beta=0.8, seed=1).fit(points)
        assert index.search(query) is None

    def test_candidate_buckets_subset_of_existing(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"], seed=2)
        for key in index.candidate_buckets(planted_unit_vectors["query"]):
            assert key in index._buckets

    def test_stats_report_probed_buckets(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"], seed=3)
        result = index.sample_detailed(planted_unit_vectors["query"])
        assert result.stats.buckets_probed >= 1

    def test_returned_point_meets_beta_threshold(self, planted_unit_vectors):
        index = make_index(planted_unit_vectors["points"], seed=4)
        result = index.sample_detailed(planted_unit_vectors["query"])
        if result.found:
            value = float(planted_unit_vectors["points"][result.index] @ planted_unit_vectors["query"])
            assert value >= index.beta

"""Deterministic perf guard: counter-based regression checks for the
vectorized candidate-evaluation pipeline.

Wall-clock assertions are flaky on shared CI runners, so this file pins the
pipeline's *work counters* instead — the quantities that made the
vectorization a speedup in the first place:

* ``kernel_calls`` must scale with rejection rounds / probed buckets, never
  with candidates (a regression to per-candidate evaluation multiplies it by
  the bucket size);
* ``distance_evaluations`` must stay bounded by the number of *distinct*
  candidates (a regression in the per-query memo re-evaluates duplicates);
* the engine-level ``distance_kernel_calls`` aggregate must stay a small
  fraction of ``candidates_scanned`` on a candidate-heavy workload.

The workload is seeded and the counters are exact deterministic functions of
it, so any failure here is a real behavioural regression, not noise.
The CI ``perf-guard`` job runs exactly this file.
"""

import numpy as np
import pytest

from repro.core import (
    ApproximateNeighborhoodSampler,
    CollectAllFairSampler,
    ExactUniformSampler,
    IndependentFairSampler,
    PermutationFairSampler,
    StandardLSHSampler,
)
from repro.distances import JaccardSimilarity
from repro.engine import BatchQueryEngine, ProcessShardedEngine, ShardedEngine
from repro.lsh import MinHashFamily


@pytest.fixture(scope="module")
def heavy_workload():
    """A candidate-heavy set workload: one dense "hub" of overlapping users.

    Every point shares a sizable core with the query, so with ``K = 1``
    almost the whole dataset collides in every table — large buckets, large
    colliding views, few true near neighbors.  This is the regime where the
    candidate-scoring term of the paper's query bound dominates.
    """
    rng = np.random.default_rng(42)
    core = set(range(10))
    dataset = [
        frozenset(core | {int(x) for x in rng.choice(range(10, 400), size=12, replace=False)})
        for _ in range(300)
    ]
    query = frozenset(core | {500, 501, 502})
    return {"dataset": dataset, "query": query, "n": len(dataset)}


def _lsh(sampler_cls, seed=7, **extra):
    return sampler_cls(
        MinHashFamily(),
        radius=0.45,
        far_radius=0.2,
        num_hashes=1,
        num_tables=15,
        seed=seed,
        **extra,
    )


class TestKernelCallScaling:
    def test_collect_all_is_one_kernel_call(self, heavy_workload):
        sampler = _lsh(CollectAllFairSampler).fit(heavy_workload["dataset"])
        result = sampler.sample_detailed(heavy_workload["query"])
        # The whole (large) candidate set is scored in a single batched call.
        assert result.stats.candidates_examined >= 1000  # workload is candidate-heavy
        assert result.stats.kernel_calls == 1
        assert result.stats.distance_evaluations <= heavy_workload["n"]

    def test_approximate_is_one_kernel_call(self, heavy_workload):
        sampler = _lsh(ApproximateNeighborhoodSampler).fit(heavy_workload["dataset"])
        result = sampler.sample_detailed(heavy_workload["query"])
        assert result.stats.kernel_calls == 1
        assert result.stats.distance_evaluations <= heavy_workload["n"]

    def test_exact_is_one_kernel_call(self, heavy_workload):
        sampler = ExactUniformSampler(JaccardSimilarity(), radius=0.45, seed=1).fit(
            heavy_workload["dataset"]
        )
        result = sampler.sample_detailed(heavy_workload["query"])
        assert result.stats.kernel_calls == 1
        assert result.stats.distance_evaluations == heavy_workload["n"]

    def test_independent_sampler_one_kernel_call_per_round(self, heavy_workload):
        sampler = _lsh(IndependentFairSampler).fit(heavy_workload["dataset"])
        result = sampler.sample_detailed(heavy_workload["query"])
        stats = result.stats
        assert stats.rounds >= 1
        # At most one batched evaluation per rejection round (rounds whose
        # segment candidates were all memoized dispatch none).
        assert stats.kernel_calls <= stats.rounds
        # The memo caps pair evaluations at the number of distinct colliding
        # points, however many rounds re-examine them.
        assert stats.distance_evaluations <= heavy_workload["n"]

    def test_permutation_sampler_logarithmic_kernel_calls(self, heavy_workload):
        sampler = _lsh(PermutationFairSampler).fit(heavy_workload["dataset"])
        result = sampler.sample_detailed(heavy_workload["query"])
        # Geometrically growing chunks: scanning even the whole 300-point
        # dedup'd view costs at most ceil(log_4(n / 32)) + 1 kernel calls.
        assert result.stats.kernel_calls <= 4
        assert result.stats.distance_evaluations <= heavy_workload["n"]

    def test_standard_lsh_one_kernel_call_per_bucket(self, heavy_workload):
        sampler = _lsh(StandardLSHSampler).fit(heavy_workload["dataset"])
        result = sampler.sample_detailed(heavy_workload["query"])
        assert result.stats.kernel_calls <= result.stats.buckets_probed
        assert result.stats.distance_evaluations <= heavy_workload["n"]


class TestEngineAggregates:
    def test_kernel_calls_stay_a_small_fraction_of_candidates(self, heavy_workload):
        sampler = _lsh(IndependentFairSampler, seed=11)
        engine = BatchQueryEngine.build(sampler, heavy_workload["dataset"], seed=11)
        queries = [heavy_workload["query"]] + heavy_workload["dataset"][:30]
        engine.run(queries)
        stats = engine.stats
        assert stats.candidates_scanned > 0
        assert stats.distance_kernel_calls > 0
        # Amortized: each batched kernel call must cover several candidates.
        # A regression to per-candidate evaluation pushes this ratio to ~1.
        assert stats.distance_kernel_calls * 3 <= stats.candidates_scanned
        # Memoization: pair evaluations never exceed candidates scanned.
        assert stats.distance_evaluations <= stats.candidates_scanned

    def test_counters_are_deterministic(self, heavy_workload):
        def serve():
            sampler = _lsh(IndependentFairSampler, seed=13)
            engine = BatchQueryEngine.build(sampler, heavy_workload["dataset"], seed=13)
            engine.run([heavy_workload["query"]] * 5 + heavy_workload["dataset"][:10])
            return engine.stats.as_dict()

        assert serve() == serve()


#: Counters whose totals are exact deterministic functions of a seeded
#: sharded workload.  ``key_cache_hits`` is excluded: its increments happen
#: on the hot path inside answer workers and are documented as best-effort
#: under parallel serving.
_DETERMINISTIC_SHARDED_COUNTERS = (
    "queries_served",
    "batches_served",
    "coalesced_queries",
    "candidates_scanned",
    "distance_evaluations",
    "distance_kernel_calls",
    "shard_merges",
    "prefix_scans",
    "prefix_escalations",
    "inserts",
    "deletes",
)


class TestShardedMergeCounters:
    """Counter-based guards for the sharded merge path (CI perf-guard job).

    A regression that re-merges cached buckets, merges buckets no query
    needs, or abandons the rank-prefix gather shows up in these exact
    deterministic counters long before it shows up on a wall clock.
    """

    def _sharded(self, sampler_cls, heavy_workload, seed=21):
        sampler = _lsh(sampler_cls, seed=seed)
        return ShardedEngine.build(sampler, heavy_workload["dataset"], n_shards=4)

    def test_merges_bounded_by_distinct_keys_and_cached_across_batches(
        self, heavy_workload
    ):
        engine = self._sharded(IndependentFairSampler, heavy_workload)
        queries = [heavy_workload["query"]] + heavy_workload["dataset"][:20]
        engine.run(queries)
        # The Section 4 sampler's sketch build at attach time already
        # materialized (and cached) every merged bucket, so a fresh engine
        # serves its first batches without a single re-merge.
        assert engine.stats.shard_merges == 0
        # Mutation invalidates the merged-bucket cache; the next batch
        # re-merges — but at most once per distinct (table, key) pair.
        engine.insert(frozenset({9000, 9001, 9002}))
        engine.run(queries)
        first = engine.stats.shard_merges
        assert 0 < first <= len(queries) * engine.tables.num_tables
        # An identical batch is then served entirely from the cache again.
        engine.run(queries)
        assert engine.stats.shard_merges == first

    def test_prefix_scan_replaces_full_merges_for_rank_prefix_samplers(
        self, heavy_workload
    ):
        engine = self._sharded(PermutationFairSampler, heavy_workload)
        queries = heavy_workload["dataset"][:25]
        responses = engine.run(queries)
        assert all(r.found for r in responses)  # hub workload: everyone is near
        # Single-draw batches of a rank-prefix sampler never materialize
        # merged buckets — candidates come from the bounded per-shard gather.
        assert engine.stats.shard_merges == 0
        assert engine.stats.prefix_scans == 25
        # The hub workload's colliding views dwarf the cold opening budget,
        # so the first batch escalates through the shared widened rounds — a
        # deterministic count (order-insensitive sums over the batch).
        assert engine.stats.prefix_escalations == 85
        # ... after which the controller has settled on the certifying depth.
        assert engine.stats_dict()["counters"]["prefix_budget"] == 2048

    def test_prefix_budget_controller_settles_and_probes_down(self, heavy_workload):
        """The second identical batch certifies at the tuned opening budget.

        Escalations are a cold-start cost, not a steady-state one: a warmed
        controller must serve the same batch with zero new escalations, and
        a batch that certifies entirely in round one must probe the budget
        one step *down* so over-gathering cannot become a fixed point.
        """
        engine = self._sharded(PermutationFairSampler, heavy_workload)
        queries = heavy_workload["dataset"][:25]
        engine.run(queries)
        cold_escalations = engine.stats.prefix_escalations
        tuned = engine.stats_dict()["counters"]["prefix_budget"]
        engine.run(queries)
        assert engine.stats.prefix_scans == 50
        assert engine.stats.prefix_escalations == cold_escalations  # no new ones
        # Whole batch certified in round one → the controller probes down.
        assert engine.stats_dict()["counters"]["prefix_budget"] == tuned // 2

    def test_sharded_counters_are_deterministic(self, heavy_workload):
        def serve(sampler_cls, seed):
            engine = self._sharded(sampler_cls, heavy_workload, seed=seed)
            engine.run([heavy_workload["query"]] * 5 + heavy_workload["dataset"][:15])
            engine.insert_many(heavy_workload["dataset"][:3])
            engine.run(heavy_workload["dataset"][10:20])
            stats = engine.stats.as_dict()
            return {key: stats[key] for key in _DETERMINISTIC_SHARDED_COUNTERS}

        for sampler_cls in (IndependentFairSampler, PermutationFairSampler):
            assert serve(sampler_cls, 23) == serve(sampler_cls, 23)

    def test_process_executor_supervision_counters(self, heavy_workload):
        """Clean serving through worker processes is restart- and replay-free.

        A spurious ``worker_restarts`` here means the supervisor is killing or
        losing healthy workers; a spurious ``mutations_replayed`` means replay
        work is happening outside crash recovery.  Both would silently eat the
        process executor's latency win, so they are pinned at zero.
        """
        engine = ProcessShardedEngine.build(
            _lsh(PermutationFairSampler, seed=21), heavy_workload["dataset"], n_shards=4
        )
        try:
            engine.run([heavy_workload["query"]] + heavy_workload["dataset"][:20])
            engine.insert_many(heavy_workload["dataset"][:3])
            engine.run(heavy_workload["dataset"][10:20])
            stats = engine.stats.as_dict()
            assert stats["worker_restarts"] == 0
            assert stats["mutations_replayed"] == 0
            # Both directions of the shard protocol actually carried frames.
            assert stats["ipc_bytes_sent"] > 0
            assert stats["ipc_bytes_received"] > 0
        finally:
            engine.close()

    def test_process_executor_ipc_volume_is_deterministic(self, heavy_workload):
        """IPC byte counts are an exact function of a seeded workload.

        The framing protocol sends pickled query/mutation frames; a regression
        that re-sends frames, pads payloads, or gathers from shards a query
        never needed shows up as a byte-count drift between identical runs
        long before it is measurable as latency.
        """

        def serve():
            engine = ProcessShardedEngine.build(
                _lsh(PermutationFairSampler, seed=23),
                heavy_workload["dataset"],
                n_shards=4,
            )
            try:
                engine.run([heavy_workload["query"]] * 5 + heavy_workload["dataset"][:15])
                engine.insert_many(heavy_workload["dataset"][:3])
                engine.run(heavy_workload["dataset"][10:20])
                stats = engine.stats.as_dict()
            finally:
                engine.close()
            keys = _DETERMINISTIC_SHARDED_COUNTERS + (
                "worker_restarts",
                "mutations_replayed",
                "ipc_bytes_sent",
                "ipc_bytes_received",
            )
            return {key: stats[key] for key in keys}

        assert serve() == serve()

    def test_sharded_answers_match_unsharded(self, heavy_workload):
        queries = [heavy_workload["query"]] + heavy_workload["dataset"][:15]
        reference = BatchQueryEngine.build(
            _lsh(PermutationFairSampler, seed=29), heavy_workload["dataset"]
        ).run(queries)
        sharded = self._sharded(PermutationFairSampler, heavy_workload, seed=29).run(queries)
        assert [r.indices for r in reference] == [r.indices for r in sharded]
        assert [r.stats for r in reference] == [r.stats for r in sharded]

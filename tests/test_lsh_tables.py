"""Tests for the LSH table layer (buckets, rank ordering, rank-range queries)."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.lsh import LSHTables, MinHashFamily, OneBitMinHashFamily
from repro.lsh.tables import Bucket


@pytest.fixture
def tiny_sets():
    return [
        frozenset({1, 2, 3}),
        frozenset({1, 2, 4}),
        frozenset({1, 2, 3, 4}),
        frozenset({50, 51, 52}),
        frozenset({60, 61, 62}),
    ]


class TestBucket:
    def test_len(self):
        bucket = Bucket(np.array([3, 1, 4]))
        assert len(bucket) == 3

    def test_rank_range_requires_ranks(self):
        bucket = Bucket(np.array([0, 1]))
        with pytest.raises(InvalidParameterError):
            bucket.rank_range(0, 1)

    def test_rank_range_selects_half_open_interval(self):
        indices = np.array([10, 11, 12, 13])
        ranks = np.array([2, 5, 7, 9])
        bucket = Bucket(indices, ranks)
        assert bucket.rank_range(5, 9).tolist() == [11, 12]
        assert bucket.rank_range(0, 3).tolist() == [10]
        assert bucket.rank_range(9, 100).tolist() == [13]
        assert bucket.rank_range(3, 5).tolist() == []

    def test_rank_range_on_empty_bucket(self):
        bucket = Bucket(np.empty(0, dtype=np.intp), np.empty(0, dtype=np.int64))
        assert bucket.rank_range(0, 100).tolist() == []
        assert len(bucket) == 0

    def test_rank_range_with_lo_equal_hi_is_empty(self):
        bucket = Bucket(np.array([7, 8]), np.array([1, 3]))
        assert bucket.rank_range(1, 1).tolist() == []
        assert bucket.rank_range(3, 3).tolist() == []

    def test_rank_range_without_ranks_raises_invalid_parameter(self):
        bucket = Bucket(np.array([0, 1, 2]))
        with pytest.raises(InvalidParameterError):
            bucket.rank_range(0, 0)

    def test_inserted_keeps_rank_order(self):
        bucket = Bucket(np.array([10, 11], dtype=np.intp), np.array([2, 8]))
        grown = bucket.inserted(12, 5)
        assert grown.indices.tolist() == [10, 12, 11]
        assert grown.ranks.tolist() == [2, 5, 8]
        # Original bucket is untouched (inserted returns a copy).
        assert bucket.indices.tolist() == [10, 11]

    def test_inserted_rank_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            Bucket(np.array([0])).inserted(1, 5)
        with pytest.raises(InvalidParameterError):
            Bucket(np.array([0]), np.array([1])).inserted(1, None)


class TestConstruction:
    def test_requires_at_least_one_table(self):
        with pytest.raises(InvalidParameterError):
            LSHTables(MinHashFamily(), l=0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            LSHTables(MinHashFamily(), l=2, seed=0).fit([])

    def test_query_before_fit_rejected(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=2, seed=0)
        with pytest.raises(EmptyDatasetError):
            tables.query_buckets(tiny_sets[0])

    def test_every_point_stored_in_every_table(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=4, seed=0).fit(tiny_sets)
        sizes = tables.bucket_sizes()
        assert len(sizes) == 4
        for table in sizes:
            assert sum(table.values()) == len(tiny_sets)
        assert tables.total_stored_references() == 4 * len(tiny_sets)

    def test_ranks_shape_validated(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=2, seed=0)
        with pytest.raises(InvalidParameterError):
            tables.fit(tiny_sets, ranks=np.arange(3))

    def test_buckets_sorted_by_rank(self, tiny_sets):
        ranks = np.array([4, 2, 0, 3, 1])
        tables = LSHTables(MinHashFamily(), l=3, seed=1).fit(tiny_sets, ranks=ranks)
        for table in tables._tables:
            for bucket in table.values():
                assert np.all(np.diff(bucket.ranks) >= 0)

    def test_num_points_and_tables(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=3, seed=2).fit(tiny_sets)
        assert tables.num_points == len(tiny_sets)
        assert tables.num_tables == 3


class TestQueries:
    def test_identical_point_always_collides_with_itself(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=5, seed=3).fit(tiny_sets)
        candidates = tables.query_candidates(tiny_sets[0])
        assert 0 in candidates.tolist()

    def test_similar_points_collide_more_than_dissimilar(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=30, seed=4).fit(tiny_sets)
        counts = tables.collision_counts(tiny_sets[0])
        similar = counts.get(2, 0)   # {1,2,3,4} is similar to {1,2,3}
        dissimilar = counts.get(4, 0)  # {60,61,62} is disjoint
        assert similar > dissimilar

    def test_query_keys_match_functions(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=6, seed=5).fit(tiny_sets)
        keys = tables.query_keys(tiny_sets[1])
        assert keys == [f(tiny_sets[1]) for f in tables._functions]

    def test_query_candidates_multiset_counts_duplicates(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=10, seed=6).fit(tiny_sets)
        multiset = tables.query_candidates_multiset(tiny_sets[0])
        unique = tables.query_candidates(tiny_sets[0])
        assert multiset.size >= unique.size

    def test_rank_range_requires_ranks(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=2, seed=7).fit(tiny_sets)
        with pytest.raises(InvalidParameterError):
            tables.rank_range_candidates(tiny_sets[0], 0, 2)

    def test_rank_range_returns_subset_of_candidates(self, tiny_sets):
        ranks = np.arange(len(tiny_sets))
        tables = LSHTables(MinHashFamily(), l=8, seed=8).fit(tiny_sets, ranks=ranks)
        full = set(tables.query_candidates(tiny_sets[0]).tolist())
        windowed = set(tables.rank_range_candidates(tiny_sets[0], 0, 3).tolist())
        assert windowed <= full
        # The union over all windows recovers the full candidate set.
        recovered = set()
        for lo in range(len(tiny_sets)):
            recovered |= set(tables.rank_range_candidates(tiny_sets[0], lo, lo + 1).tolist())
        assert recovered == full

    def test_batch_and_loop_paths_agree(self, tiny_sets):
        """The vectorized MinHash path must build identical tables to the generic path."""
        family = OneBitMinHashFamily()
        batch_tables = LSHTables(family, l=7, seed=9).fit(tiny_sets)
        loop_tables = LSHTables(family, l=7, seed=9)
        loop_tables._batch_hasher = None  # force the per-function fallback
        loop_tables.fit(tiny_sets)
        for table_a, table_b in zip(batch_tables._tables, loop_tables._tables):
            assert set(table_a.keys()) == set(table_b.keys())
            for key in table_a:
                assert sorted(table_a[key].indices.tolist()) == sorted(table_b[key].indices.tolist())

    def test_unseen_query_returns_empty_or_far_buckets(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=3, seed=10).fit(tiny_sets)
        candidates = tables.query_candidates(frozenset({999, 1000, 1001}))
        # A completely unrelated set should rarely collide; at worst it returns
        # a small subset of the data, never an error.
        assert candidates.size <= len(tiny_sets)

    def test_collision_counts_with_no_collisions_is_empty(self, tiny_sets):
        # Concatenating several MinHash functions drives the collision
        # probability of a disjoint query to (essentially) zero.
        tables = LSHTables(MinHashFamily().concatenate(4), l=5, seed=11).fit(tiny_sets)
        counts = tables.collision_counts(frozenset({999, 1000, 1001}))
        assert counts == {}


class TestBatchedQueryKeys:
    def test_query_keys_many_matches_per_query_hashing(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=6, seed=12).fit(tiny_sets)
        batched = tables.query_keys_many(tiny_sets)
        assert batched == [tables.query_keys(point) for point in tiny_sets]

    def test_query_keys_many_matches_for_concatenated_family(self, tiny_sets):
        tables = LSHTables(OneBitMinHashFamily().concatenate(3), l=4, seed=13).fit(tiny_sets)
        batched = tables.query_keys_many(tiny_sets)
        assert batched == [tables.query_keys(point) for point in tiny_sets]

    def test_query_keys_many_without_batch_hasher_falls_back(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=3, seed=14).fit(tiny_sets)
        expected = [tables.query_keys(point) for point in tiny_sets]
        tables._batch_hasher = None
        assert tables.query_keys_many(tiny_sets) == expected
        assert tables.query_keys_many([]) == []

    def test_primed_key_cache_serves_hits_and_clears(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=5, seed=15).fit(tiny_sets)
        expected = [tables.query_keys(point) for point in tiny_sets]
        tables.prime_key_cache(tiny_sets, tables.query_keys_many(tiny_sets))
        assert tables.key_cache_hits == 0
        assert [tables.query_keys(point) for point in tiny_sets] == expected
        assert tables.key_cache_hits == len(tiny_sets)
        tables.clear_key_cache()
        assert [tables.query_keys(point) for point in tiny_sets] == expected
        assert tables.key_cache_hits == len(tiny_sets)  # no further hits

    def test_prime_key_cache_length_mismatch_rejected(self, tiny_sets):
        tables = LSHTables(MinHashFamily(), l=2, seed=16).fit(tiny_sets)
        with pytest.raises(InvalidParameterError):
            tables.prime_key_cache(tiny_sets, [[0]])

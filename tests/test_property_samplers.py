"""Property-based tests over the samplers themselves.

Hypothesis generates small random set datasets and queries; every sampler
must uphold the same contract regardless of the input:

* anything returned is a true r-near neighbor of the query,
* an excluded index is never returned,
* without-replacement k-samples are distinct near neighbors,
* the exact sampler and the LSH samplers agree on neighborhood membership.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CollectAllFairSampler,
    ExactUniformSampler,
    IndependentFairSampler,
    PermutationFairSampler,
    StandardLSHSampler,
)
from repro.distances import JaccardSimilarity
from repro.lsh import MinHashFamily

SAMPLER_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

RADIUS = 0.4

small_sets = st.frozensets(st.integers(min_value=0, max_value=40), min_size=1, max_size=12)
datasets = st.lists(small_sets, min_size=2, max_size=25)


def build(sampler_type, dataset, seed=0):
    return sampler_type(
        MinHashFamily(),
        radius=RADIUS,
        far_radius=0.1,
        num_hashes=1,
        num_tables=40,
        seed=seed,
    ).fit(dataset)


SAMPLER_TYPES = [
    StandardLSHSampler,
    CollectAllFairSampler,
    PermutationFairSampler,
    IndependentFairSampler,
]


class TestSamplerContract:
    @SAMPLER_SETTINGS
    @given(dataset=datasets, query=small_sets)
    @pytest.mark.parametrize("sampler_type", SAMPLER_TYPES)
    def test_returned_point_is_always_near(self, sampler_type, dataset, query):
        sampler = build(sampler_type, dataset)
        measure = JaccardSimilarity()
        index = sampler.sample(query)
        if index is not None:
            assert measure.value(dataset[index], query) >= RADIUS

    @SAMPLER_SETTINGS
    @given(dataset=datasets)
    @pytest.mark.parametrize("sampler_type", SAMPLER_TYPES)
    def test_excluded_index_is_never_returned(self, sampler_type, dataset):
        sampler = build(sampler_type, dataset)
        query = dataset[0]
        for _ in range(5):
            assert sampler.sample(query, exclude_index=0) != 0

    @SAMPLER_SETTINGS
    @given(dataset=datasets, query=small_sets)
    def test_lsh_samplers_never_return_points_outside_exact_ball(self, dataset, query):
        exact = ExactUniformSampler(JaccardSimilarity(), RADIUS, seed=0).fit(dataset)
        ball = set(exact.neighborhood(query).tolist())
        for sampler_type in SAMPLER_TYPES:
            sampler = build(sampler_type, dataset)
            index = sampler.sample(query)
            assert index is None or index in ball

    @SAMPLER_SETTINGS
    @given(dataset=datasets, query=small_sets, k=st.integers(1, 6))
    def test_without_replacement_samples_are_distinct_near_neighbors(self, dataset, query, k):
        sampler = build(PermutationFairSampler, dataset)
        measure = JaccardSimilarity()
        sample = sampler.sample_k(query, k, replacement=False)
        assert len(sample) == len(set(sample))
        for index in sample:
            assert measure.value(dataset[index], query) >= RADIUS

    @SAMPLER_SETTINGS
    @given(dataset=datasets)
    def test_query_identical_to_dataset_point_finds_it(self, dataset):
        """A dataset point queried with itself (similarity 1) is always near-covered."""
        sampler = build(CollectAllFairSampler, dataset, seed=3)
        index = sampler.sample(dataset[0])
        assert index is not None

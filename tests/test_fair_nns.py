"""Tests for the Section 3 rank-permutation fair sampler (r-NNS)."""

import numpy as np
import pytest

from repro.core import PermutationFairSampler
from repro.exceptions import InvalidParameterError, NotFittedError
from repro.fairness.metrics import total_variation_from_uniform
from repro.lsh import MinHashFamily


def make_sampler(dataset, radius=0.5, seed=0, num_tables=60):
    return PermutationFairSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=0.05,
        num_hashes=1,
        num_tables=num_tables,
        seed=seed,
    ).fit(dataset)


class TestCorrectness:
    def test_returns_near_point(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

    def test_returns_none_without_neighbors(self):
        dataset = [frozenset({100 + i}) for i in range(8)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2})) is None

    def test_not_fitted_raises(self):
        sampler = PermutationFairSampler(MinHashFamily(), radius=0.5, num_hashes=1, num_tables=5)
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_deterministic_for_fixed_structure(self, planted_sets):
        """Section 3 alone is deterministic at query time (the motivation for Section 4)."""
        sampler = make_sampler(planted_sets["dataset"], seed=3)
        outputs = {sampler.sample(planted_sets["query"]) for _ in range(20)}
        assert len(outputs) == 1

    def test_returned_point_has_lowest_rank_among_colliding_neighbors(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=4)
        index = sampler.sample(planted_sets["query"])
        colliding = set(sampler.tables.query_candidates(planted_sets["query"]).tolist())
        colliding_near = colliding & planted_sets["near_indices"]
        ranks = sampler.ranks
        assert ranks[index] == min(ranks[i] for i in colliding_near)

    def test_buckets_are_rank_sorted(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=5)
        for table in sampler.tables._tables:
            for bucket in table.values():
                assert np.all(np.diff(bucket.ranks) >= 0)

    def test_stats_counters(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=6)
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.found
        assert result.stats.buckets_probed == sampler.num_tables


class TestUniformity:
    def test_uniform_over_constructions(self, planted_sets):
        """Theorem 1: over the construction randomness, every near neighbor is
        equally likely to be the one returned."""
        counts = {i: 0 for i in planted_sets["near_indices"]}
        trials = 400
        for seed in range(trials):
            sampler = make_sampler(planted_sets["dataset"], seed=seed, num_tables=40)
            index = sampler.sample(planted_sets["query"])
            assert index in counts
            counts[index] += 1
        tv = total_variation_from_uniform(list(counts.values()))
        assert tv < 0.12
        assert min(counts.values()) > 0.4 * trials / len(counts)

    def test_recall_of_neighborhood(self, small_set_dataset, jaccard):
        """With the parameter rule, nearly every query with a non-empty
        neighborhood gets an answer."""
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.2, far_radius=0.1, recall=0.95, seed=0
        ).fit(small_set_dataset)
        answered = 0
        queries_with_neighbors = 0
        for query in small_set_dataset[:30]:
            values = jaccard.values_to_query(small_set_dataset, query)
            if np.sum(values >= 0.2) > 0:
                queries_with_neighbors += 1
                if sampler.sample(query) is not None:
                    answered += 1
        assert answered >= 0.9 * queries_with_neighbors


class TestKSampling:
    def test_without_replacement_returns_distinct_neighbors(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=7)
        sample = sampler.sample_k(planted_sets["query"], 3, replacement=False)
        assert len(sample) == 3
        assert len(set(sample)) == 3
        assert set(sample) <= planted_sets["near_indices"]

    def test_without_replacement_all_neighbors(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=8)
        sample = sampler.sample_k(planted_sets["query"], 10, replacement=False)
        assert set(sample) == planted_sets["near_indices"]

    def test_k_lowest_ranks_are_returned(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=9)
        sample = sampler.sample_k(planted_sets["query"], 2, replacement=False)
        ranks = sampler.ranks
        sample_ranks = sorted(ranks[i] for i in sample)
        all_near_ranks = sorted(ranks[i] for i in planted_sets["near_indices"])
        assert sample_ranks == all_near_ranks[:2]

    def test_zero_and_negative_k(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], seed=10)
        assert sampler.sample_k(planted_sets["query"], 0) == []
        with pytest.raises(InvalidParameterError):
            sampler.sample_k(planted_sets["query"], -2)

    def test_with_replacement_repeats_single_answer(self, planted_sets):
        """Without rank perturbation, with-replacement draws repeat the same point."""
        sampler = make_sampler(planted_sets["dataset"], seed=11)
        sample = sampler.sample_k(planted_sets["query"], 5, replacement=True)
        assert len(set(sample)) == 1


class TestParameterSelection:
    def test_auto_parameters_resolved_at_fit(self, small_set_dataset):
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.3, far_radius=0.1, recall=0.9, seed=1
        ).fit(small_set_dataset)
        assert sampler.params.k >= 1
        assert sampler.params.l >= 1
        assert sampler.params.recall >= 0.9

    def test_explicit_parameters_respected(self, small_set_dataset):
        sampler = PermutationFairSampler(
            MinHashFamily(), radius=0.3, num_hashes=2, num_tables=17, seed=1
        ).fit(small_set_dataset)
        assert sampler.params.k == 2
        assert sampler.params.l == 17
        assert sampler.num_tables == 17

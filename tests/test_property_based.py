"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distances import EuclideanDistance, JaccardSimilarity
from repro.fairness.metrics import (
    empirical_probabilities,
    gini_coefficient,
    kl_divergence_from_uniform,
    total_variation_from_uniform,
)
from repro.lsh import MinHashFamily, OneBitMinHashFamily
from repro.lsh.params import (
    concatenation_length_for_far_collisions,
    repetitions_for_recall,
)
from repro.lsh.tables import Bucket
from repro.sketches import DistinctCountSketcher

# Hypothesis settings: the suite must stay fast and deterministic.
FAST = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

item_sets = st.frozensets(st.integers(min_value=0, max_value=300), min_size=0, max_size=30)
nonempty_item_sets = st.frozensets(st.integers(min_value=0, max_value=300), min_size=1, max_size=30)


class TestJaccardProperties:
    @FAST
    @given(a=item_sets, b=item_sets)
    def test_symmetry(self, a, b):
        measure = JaccardSimilarity()
        assert measure.value(a, b) == pytest.approx(measure.value(b, a))

    @FAST
    @given(a=item_sets, b=item_sets)
    def test_range(self, a, b):
        value = JaccardSimilarity().value(a, b)
        assert 0.0 <= value <= 1.0

    @FAST
    @given(a=item_sets)
    def test_identity(self, a):
        assert JaccardSimilarity().value(a, a) == 1.0

    @FAST
    @given(a=nonempty_item_sets, b=nonempty_item_sets, c=nonempty_item_sets)
    def test_jaccard_distance_triangle_inequality(self, a, b, c):
        """1 - J is a metric; the triangle inequality must hold."""
        measure = JaccardSimilarity()
        d_ab = 1 - measure.value(a, b)
        d_bc = 1 - measure.value(b, c)
        d_ac = 1 - measure.value(a, c)
        assert d_ac <= d_ab + d_bc + 1e-12


class TestEuclideanProperties:
    vectors = st.lists(st.floats(-50, 50, allow_nan=False), min_size=3, max_size=3)

    @FAST
    @given(a=vectors, b=vectors)
    def test_symmetry_and_nonnegativity(self, a, b):
        measure = EuclideanDistance()
        assert measure.value(a, b) == pytest.approx(measure.value(b, a))
        assert measure.value(a, b) >= 0.0

    @FAST
    @given(a=vectors, b=vectors, c=vectors)
    def test_triangle_inequality(self, a, b, c):
        measure = EuclideanDistance()
        assert measure.value(a, c) <= measure.value(a, b) + measure.value(b, c) + 1e-9


class TestMinHashProperties:
    @FAST
    @given(point=nonempty_item_sets, seed=st.integers(0, 10**6))
    def test_minhash_value_is_min_of_item_hashes(self, point, seed):
        rng = np.random.default_rng(seed)
        h = MinHashFamily().sample(rng)
        assert h(point) == min(h(frozenset({item})) for item in point)

    @FAST
    @given(a=nonempty_item_sets, b=nonempty_item_sets, seed=st.integers(0, 10**6))
    def test_minhash_of_union_is_min_of_minhashes(self, a, b, seed):
        rng = np.random.default_rng(seed)
        h = MinHashFamily().sample(rng)
        assert h(a | b) == min(h(a), h(b))

    @FAST
    @given(point=nonempty_item_sets, seed=st.integers(0, 10**6))
    def test_one_bit_is_parity_of_minhash(self, point, seed):
        family_rng = np.random.default_rng(seed)
        full = MinHashFamily().sample(family_rng)
        bit_rng = np.random.default_rng(seed)
        bit = OneBitMinHashFamily().sample(bit_rng)
        assert bit(point) == full(point) & 1

    @FAST
    @given(
        points=st.lists(nonempty_item_sets, min_size=1, max_size=15),
        seed=st.integers(0, 10**6),
        count=st.integers(1, 8),
    )
    def test_batch_hasher_matches_individual_functions(self, points, seed, count):
        rng = np.random.default_rng(seed)
        family = MinHashFamily()
        functions = [family.sample(rng) for _ in range(count)]
        hasher = family.make_batch_hasher(functions)
        batch = hasher.keys_for_dataset(points)
        for function, keys in zip(functions, batch):
            assert keys == [function(p) for p in points]


class TestParameterRuleProperties:
    @FAST
    @given(
        p_far=st.floats(0.01, 0.95),
        n=st.integers(2, 10**6),
        budget=st.floats(0.5, 20),
    )
    def test_concatenation_length_meets_budget(self, p_far, n, budget):
        k = concatenation_length_for_far_collisions(p_far, n, budget)
        assert n * p_far**k <= budget + 1e-6

    @FAST
    @given(p=st.floats(0.001, 0.999), recall=st.floats(0.5, 0.999))
    def test_repetitions_achieve_recall(self, p, recall):
        l = repetitions_for_recall(p, recall)
        assert 1 - (1 - p) ** l >= recall - 1e-9


class TestSketchProperties:
    @FAST
    @given(
        keys_a=st.lists(st.integers(0, 5000), min_size=0, max_size=200),
        keys_b=st.lists(st.integers(0, 5000), min_size=0, max_size=200),
        seed=st.integers(0, 1000),
    )
    def test_merge_estimate_equals_union_stream_estimate(self, keys_a, keys_b, seed):
        sketcher = DistinctCountSketcher(universe_size=5001, epsilon=0.5, seed=seed)
        merged = sketcher.sketch_keys(keys_a).merge(sketcher.sketch_keys(keys_b))
        direct = sketcher.sketch_keys(keys_a + keys_b)
        assert merged.estimate() == pytest.approx(direct.estimate())

    @FAST
    @given(keys=st.lists(st.integers(0, 200), min_size=0, max_size=60), seed=st.integers(0, 1000))
    def test_small_streams_are_exact(self, keys, seed):
        """With fewer than t distinct keys the estimate is exact (bar hash collisions)."""
        sketcher = DistinctCountSketcher(universe_size=201, epsilon=0.25, seed=seed)
        sketch = sketcher.sketch_keys(keys)
        distinct = len(set(keys))
        if distinct < sketcher.t:
            assert sketch.estimate() == pytest.approx(distinct)

    @FAST
    @given(keys=st.lists(st.integers(0, 10**6), min_size=0, max_size=150), seed=st.integers(0, 100))
    def test_estimate_is_order_insensitive(self, keys, seed):
        sketcher = DistinctCountSketcher(universe_size=10**6 + 1, epsilon=0.5, seed=seed)
        forward = sketcher.sketch_keys(keys).estimate()
        backward = sketcher.sketch_keys(list(reversed(keys))).estimate()
        assert forward == pytest.approx(backward)


class TestBucketProperties:
    @FAST
    @given(
        ranks=st.lists(st.integers(0, 1000), min_size=1, max_size=50, unique=True),
        lo=st.integers(0, 1000),
        span=st.integers(0, 1000),
    )
    def test_rank_range_matches_filter(self, ranks, lo, span):
        ranks_sorted = np.array(sorted(ranks))
        indices = np.arange(len(ranks_sorted))
        bucket = Bucket(indices, ranks_sorted)
        hi = lo + span
        expected = [int(i) for i, r in zip(indices, ranks_sorted) if lo <= r < hi]
        assert bucket.rank_range(lo, hi).tolist() == expected


class TestFairnessMetricProperties:
    counts = st.lists(st.integers(0, 500), min_size=1, max_size=30)

    @FAST
    @given(counts=counts)
    def test_probabilities_sum_to_one(self, counts):
        probabilities = empirical_probabilities(counts)
        assert probabilities.sum() == pytest.approx(1.0)

    @FAST
    @given(counts=counts)
    def test_tv_and_kl_bounds(self, counts):
        assert 0.0 <= total_variation_from_uniform(counts) <= 1.0
        assert kl_divergence_from_uniform(counts) >= -1e-12

    @FAST
    @given(counts=counts)
    def test_gini_bounds(self, counts):
        assert 0.0 <= gini_coefficient(counts) <= 1.0

    @FAST
    @given(counts=counts, scale=st.integers(2, 10))
    def test_tv_scale_invariance(self, counts, scale):
        scaled = [c * scale for c in counts]
        assert total_variation_from_uniform(scaled) == pytest.approx(
            total_variation_from_uniform(counts)
        )

    @FAST
    @given(n=st.integers(1, 30), value=st.integers(1, 100))
    def test_constant_counts_are_perfectly_uniform(self, n, value):
        counts = [value] * n
        assert total_variation_from_uniform(counts) == pytest.approx(0.0)
        assert gini_coefficient(counts) == pytest.approx(0.0, abs=1e-9)

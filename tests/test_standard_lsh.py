"""Tests for the standard (biased) LSH query baseline."""

import pytest

from repro.core import ExactUniformSampler, StandardLSHSampler
from repro.distances import JaccardSimilarity
from repro.exceptions import NotFittedError
from repro.lsh import MinHashFamily


def make_sampler(dataset, radius=0.5, seed=0, **kwargs):
    return StandardLSHSampler(
        MinHashFamily(),
        radius=radius,
        far_radius=0.05,
        num_hashes=1,
        num_tables=60,
        seed=seed,
        **kwargs,
    ).fit(dataset)


class TestCorrectness:
    def test_returns_near_point(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        index = sampler.sample(planted_sets["query"])
        assert index in planted_sets["near_indices"]

    def test_returns_none_without_neighbors(self):
        dataset = [frozenset({100 + i}) for i in range(10)]
        sampler = make_sampler(dataset)
        assert sampler.sample(frozenset({1, 2, 3})) is None

    def test_not_fitted_raises(self):
        sampler = StandardLSHSampler(MinHashFamily(), radius=0.5, num_hashes=1, num_tables=5)
        with pytest.raises(NotFittedError):
            sampler.sample(frozenset({1}))

    def test_detailed_stats_populated(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"])
        result = sampler.sample_detailed(planted_sets["query"])
        assert result.found
        assert result.stats.buckets_probed >= 1
        assert result.stats.candidates_examined >= 1

    def test_value_is_similarity_of_returned_point(self, planted_sets, jaccard):
        sampler = make_sampler(planted_sets["dataset"])
        result = sampler.sample_detailed(planted_sets["query"])
        expected = jaccard.value(planted_sets["dataset"][result.index], planted_sets["query"])
        assert result.value == pytest.approx(expected)


class TestBias:
    """The paper's Section 2.2 example: standard LSH is biased towards the query itself."""

    def test_two_point_example_returns_closest_nearly_always(self):
        x = frozenset(range(1, 11))
        y = frozenset(range(1, 10))  # Jaccard 0.9 with x
        dataset = [x, y]
        hits_x = 0
        trials = 200
        for seed in range(trials):
            sampler = make_sampler(dataset, radius=0.5, seed=seed)
            if sampler.sample(x) == 0:
                hits_x += 1
        # Standard LSH finds x (the query itself) essentially every time,
        # while a fair sampler would return each point about half the time.
        assert hits_x / trials > 0.9

    def test_exact_sampler_is_fair_on_same_instance(self):
        x = frozenset(range(1, 11))
        y = frozenset(range(1, 10))
        dataset = [x, y]
        sampler = ExactUniformSampler(JaccardSimilarity(), 0.5, seed=0).fit(dataset)
        hits_x = sum(sampler.sample(x) == 0 for _ in range(600))
        assert 0.4 < hits_x / 600 < 0.6

    def test_output_correlates_with_similarity(self, planted_sets, jaccard):
        """Across constructions, closer points are over-represented."""
        counts = {i: 0 for i in planted_sets["near_indices"]}
        trials = 150
        for seed in range(trials):
            sampler = make_sampler(planted_sets["dataset"], seed=seed)
            index = sampler.sample(planted_sets["query"])
            if index in counts:
                counts[index] += 1
        similarities = {
            i: jaccard.value(planted_sets["dataset"][i], planted_sets["query"])
            for i in planted_sets["near_indices"]
        }
        best = max(similarities, key=similarities.get)
        worst = min(similarities, key=similarities.get)
        assert counts[best] > counts[worst]


class TestOptions:
    def test_far_point_limit_stops_early(self):
        # A dataset with only far points: with a far-point limit the query
        # gives up after ~3L far candidates instead of scanning everything.
        dataset = [frozenset({1, 2, 3, 100 + i}) for i in range(50)]
        sampler = StandardLSHSampler(
            MinHashFamily(),
            radius=0.99,
            far_radius=0.05,
            num_hashes=1,
            num_tables=10,
            far_point_limit_factor=3.0,
            seed=1,
        ).fit(dataset)
        result = sampler.sample_detailed(frozenset({1, 2, 3}))
        assert result.index is None
        assert result.stats.candidates_examined <= 3 * 10 + 10 + 1

    def test_shuffled_table_order_still_finds_neighbor(self, planted_sets):
        sampler = make_sampler(planted_sets["dataset"], shuffle_tables=True)
        for _ in range(10):
            assert sampler.sample(planted_sets["query"]) in planted_sets["near_indices"]

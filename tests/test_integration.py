"""End-to-end integration tests exercising the public API across subsystems."""

import numpy as np
import pytest

from repro import (
    CollectAllFairSampler,
    ExactUniformSampler,
    FairnessAuditor,
    IndependentFairSampler,
    JaccardSimilarity,
    MinHashFamily,
    PermutationFairSampler,
    StandardLSHSampler,
)
from repro.data import generate_lastfm_like, select_interesting_queries
from repro.distances import InnerProductSimilarity
from repro.core import FilterFairSampler


class TestJaccardPipeline:
    """Full pipeline on set data: generate -> select queries -> index -> audit."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        dataset = generate_lastfm_like(num_users=150, seed=3)
        measure = JaccardSimilarity()
        family = MinHashFamily()
        query_indices = select_interesting_queries(
            dataset, measure, num_queries=3, min_neighbors=5, threshold=0.2, seed=3
        )
        samplers = {
            "standard": StandardLSHSampler(
                family, radius=0.2, far_radius=0.1, recall=0.95, seed=3
            ).fit(dataset),
            "fair_s3": PermutationFairSampler(
                family, radius=0.2, far_radius=0.1, recall=0.95, seed=3
            ).fit(dataset),
            "fair_s4": IndependentFairSampler(
                family, radius=0.2, far_radius=0.1, recall=0.95, seed=3
            ).fit(dataset),
            "collect": CollectAllFairSampler(
                family, radius=0.2, far_radius=0.1, recall=0.95, seed=3
            ).fit(dataset),
        }
        return {
            "dataset": dataset,
            "measure": measure,
            "queries": [dataset[i] for i in query_indices],
            "query_indices": query_indices,
            "samplers": samplers,
        }

    def test_all_samplers_answer_queries(self, pipeline):
        exact = ExactUniformSampler(pipeline["measure"], 0.2, seed=0).fit(pipeline["dataset"])
        for query in pipeline["queries"]:
            ground_truth = set(exact.neighborhood(query).tolist())
            assert ground_truth, "interesting queries must have neighbors"
            for name, sampler in pipeline["samplers"].items():
                index = sampler.sample(query)
                assert index is not None, f"{name} failed to answer"
                assert index in ground_truth, f"{name} returned a non-near point"

    def test_samplers_agree_on_neighborhood_membership(self, pipeline):
        """Every point returned by any sampler over repetitions is a true near neighbor."""
        exact = ExactUniformSampler(pipeline["measure"], 0.2, seed=1).fit(pipeline["dataset"])
        query = pipeline["queries"][0]
        ground_truth = set(exact.neighborhood(query).tolist())
        for sampler in pipeline["samplers"].values():
            for _ in range(15):
                index = sampler.sample(query)
                assert index is None or index in ground_truth

    def test_audit_orders_samplers_by_fairness(self, pipeline):
        auditor = FairnessAuditor(pipeline["dataset"], pipeline["measure"], radius=0.2, repetitions=150)
        query = pipeline["queries"][0]
        standard_audit = auditor.audit_query(pipeline["samplers"]["standard"], query)
        fair_audit = auditor.audit_query(pipeline["samplers"]["fair_s4"], query)
        assert fair_audit.tv_from_uniform <= standard_audit.tv_from_uniform + 0.05

    def test_k_sampling_consistency(self, pipeline):
        query = pipeline["queries"][0]
        sampler = pipeline["samplers"]["fair_s3"]
        without = sampler.sample_k(query, 3, replacement=False)
        assert len(set(without)) == len(without)


class TestInnerProductPipeline:
    """Matrix-factorization-style pipeline for the Section 5 structures."""

    def test_filter_sampler_on_normalized_factors(self):
        rng = np.random.default_rng(4)
        # Cluster structure on the sphere: 3 item groups around 3 centroids.
        centroids = rng.normal(size=(3, 16))
        centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
        items = []
        for centroid in centroids:
            noisy = centroid + 0.15 * rng.normal(size=(40, 16))
            items.append(noisy / np.linalg.norm(noisy, axis=1, keepdims=True))
        items = np.vstack(items)
        query = items[0]

        measure = InnerProductSimilarity()
        values = measure.values_to_query(items, query)
        alpha = float(np.quantile(values, 0.8))
        sampler = FilterFairSampler(
            alpha=alpha, beta=alpha - 0.4, num_structures=6, epsilon=0.05, seed=5
        ).fit(items)
        ground_truth = set(np.flatnonzero(values >= alpha).tolist())
        seen = set()
        for _ in range(60):
            index = sampler.sample(query)
            if index is not None:
                assert index in ground_truth
                seen.add(index)
        assert len(seen) >= 2

"""Tests for LSH parameter selection (K, L, rho)."""


import pytest

from repro.exceptions import InvalidParameterError
from repro.lsh import MinHashFamily, OneBitMinHashFamily, compute_rho, select_parameters
from repro.lsh.params import (
    concatenation_length_for_far_collisions,
    repetitions_for_recall,
)


class TestRho:
    def test_known_value(self):
        assert compute_rho(0.5, 0.25) == pytest.approx(0.5)

    def test_equal_probabilities(self):
        assert compute_rho(0.3, 0.3) == pytest.approx(1.0)

    def test_rejects_p1_below_p2(self):
        with pytest.raises(InvalidParameterError):
            compute_rho(0.2, 0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            compute_rho(1.0, 0.5)


class TestConcatenationLength:
    def test_drives_expected_collisions_below_budget(self):
        k = concatenation_length_for_far_collisions(0.5, n=1000, max_expected_collisions=1.0)
        assert 1000 * 0.5**k <= 1.0
        assert 1000 * 0.5 ** (k - 1) > 1.0

    def test_budget_of_five(self):
        k = concatenation_length_for_far_collisions(0.55, n=1892, max_expected_collisions=5.0)
        assert 1892 * 0.55**k <= 5.0 + 1e-9

    def test_tiny_dataset_needs_one(self):
        assert concatenation_length_for_far_collisions(0.5, n=1) == 1

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            concatenation_length_for_far_collisions(1.5, n=10)

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            concatenation_length_for_far_collisions(0.5, n=10, max_expected_collisions=0.0)


class TestRepetitions:
    def test_achieves_recall(self):
        p = 0.01
        l = repetitions_for_recall(p, recall=0.99)
        assert 1 - (1 - p) ** l >= 0.99
        assert 1 - (1 - p) ** (l - 1) < 0.99

    def test_probability_one_needs_single_table(self):
        assert repetitions_for_recall(1.0, recall=0.99) == 1

    def test_invalid_recall(self):
        with pytest.raises(InvalidParameterError):
            repetitions_for_recall(0.5, recall=1.0)

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            repetitions_for_recall(0.0)


class TestSelectParameters:
    def test_parameters_satisfy_both_constraints(self):
        family = MinHashFamily()
        params = select_parameters(
            family, near_threshold=0.3, far_threshold=0.1, n=500, recall=0.95,
            max_expected_far_collisions=2.0,
        )
        assert params.expected_far_collisions <= 2.0 + 1e-9
        assert params.recall >= 0.95

    def test_paper_experiment_rule(self):
        """K for <=5 expected collisions at similarity 0.1, L for 99% at r."""
        family = OneBitMinHashFamily()
        params = select_parameters(
            family, near_threshold=0.2, far_threshold=0.1, n=1892, recall=0.99,
            max_expected_far_collisions=5.0,
        )
        p2 = family.collision_probability(0.1)
        assert 1892 * p2**params.k <= 5.0 + 1e-9
        assert params.recall >= 0.99

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(InvalidParameterError):
            select_parameters(MinHashFamily(), near_threshold=0.1, far_threshold=0.3, n=100)

    def test_smaller_gap_needs_more_tables(self):
        family = MinHashFamily()
        wide = select_parameters(family, 0.5, 0.1, n=1000)
        narrow = select_parameters(family, 0.5, 0.4, n=1000)
        assert narrow.l >= wide.l

    def test_probabilities_consistent(self):
        family = MinHashFamily()
        params = select_parameters(family, 0.4, 0.2, n=200)
        assert params.p_near == pytest.approx(0.4**params.k)
        assert params.p_far == pytest.approx(0.2**params.k)
        assert params.recall == pytest.approx(1 - (1 - params.p_near) ** params.l)

"""Property-based cross-executor equivalence (hypothesis-driven churn).

The acceptance bar of the process-executor work: for randomized
insert/delete/compact/query interleavings, the **unsharded**
:class:`~repro.engine.batch.BatchQueryEngine`, the **thread-pool**
:class:`~repro.engine.sharded.ShardedEngine` and the **process-pool**
:class:`~repro.engine.procpool.ProcessShardedEngine` return byte-identical
responses — indices, values, per-query work counters and sampler names —
for every registered LSH-backed sampler, at every shard count hypothesis
picks.  Deletes are drawn as fractions and resolved against the live set at
apply time, so shrunk examples stay valid; enough deletes in a run cross the
tombstone threshold and exercise self-compaction on top of the explicit
``compact`` op.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import BatchQueryEngine, ShardedEngine
from repro.engine.procpool import ProcessShardedEngine

from test_sharded import _assert_identical, _lsh_backed_sampler_names, _make_sampler

# Each example builds three engines (one with forked shard workers), so the
# example budget is deliberately small; the op-sequence space still covers
# mutation orderings a fixed trace never would.
CHURN = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

_point = st.frozensets(st.integers(min_value=0, max_value=400), min_size=3, max_size=18)

_op = st.one_of(
    st.tuples(st.just("insert"), st.lists(_point, min_size=1, max_size=6)),
    st.tuples(st.just("delete"), st.floats(min_value=0.0, max_value=0.999)),
    st.tuples(st.just("compact"), st.none()),
    st.tuples(st.just("query"), st.integers(min_value=1, max_value=5)),
)


def _dataset(seed: int, size: int):
    rng = np.random.default_rng(seed)
    return [
        frozenset(int(x) for x in rng.choice(400, size=rng.integers(6, 20)))
        for _ in range(size)
    ]


def _apply(engine, ops, queries):
    """Run one churn trace; deletes resolve fractions against live slots."""
    responses = list(engine.run(queries[:3]))
    tables = engine.tables
    for op, payload in ops:
        if op == "insert":
            engine.insert_many(payload)
        elif op == "delete":
            alive = np.flatnonzero(tables._alive)
            if alive.size == 0:
                continue
            engine.delete(int(alive[int(payload * alive.size)]))
        elif op == "compact":
            tables.compact()
        else:  # query
            responses += engine.run(queries[: int(payload)])
    responses += engine.run(queries)
    return responses


class TestCrossExecutorEquivalence:
    @pytest.mark.parametrize("name", _lsh_backed_sampler_names())
    @CHURN
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        size=st.integers(min_value=40, max_value=90),
        n_shards=st.sampled_from([1, 2, 4]),
        ops=st.lists(_op, min_size=0, max_size=10),
    )
    def test_three_executors_answer_byte_identically(
        self, name, seed, size, n_shards, ops
    ):
        dataset = _dataset(seed, size)
        queries = dataset[:5] + [frozenset({401, 402, 403})]

        reference = _apply(
            BatchQueryEngine.build(_make_sampler(name), dataset), ops, queries
        )
        threaded_engine = ShardedEngine.build(
            _make_sampler(name), dataset, n_shards=n_shards
        )
        try:
            _assert_identical(reference, _apply(threaded_engine, ops, queries))
        finally:
            threaded_engine.close()
        process_engine = ProcessShardedEngine.build(
            _make_sampler(name), dataset, n_shards=n_shards
        )
        try:
            _assert_identical(reference, _apply(process_engine, ops, queries))
            counters = process_engine.stats_dict()["counters"]
            assert counters["worker_restarts"] == 0  # clean runs never restart
            assert counters["ipc_bytes_sent"] > 0
            assert counters["ipc_bytes_received"] > 0
        finally:
            process_engine.close()

"""Tests for the experiment harness (Q1, Q2, Q3) using fast configurations."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    Q1Config,
    Q2Config,
    Q3Config,
    format_q1,
    format_q2,
    format_q3,
    run_q1,
    run_q2,
    run_q3,
)
from repro.experiments.report import format_key_values, format_table
from repro.experiments.runner import build_parser, main


@pytest.fixture(scope="module")
def q1_result():
    config = Q1Config(
        dataset="lastfm", num_users=150, num_queries=3, repetitions=120,
        radius=0.2, recall=0.9, seed=0,
    )
    return run_q1(config)


@pytest.fixture(scope="module")
def q2_result():
    # The full-size instance (min_subset_size=15) and many independent
    # constructions are required for the clustered-neighborhood effect;
    # repetitions per construction are reduced for speed.
    config = Q2Config(min_subset_size=15, repetitions=50, trials=16, recall=0.95, seed=0)
    return run_q2(config)


@pytest.fixture(scope="module")
def q3_result():
    config = Q3Config(dataset="lastfm", num_users=150, num_queries=8, seed=0)
    return run_q3(config)


class TestQ1:
    def test_reports_for_all_samplers(self, q1_result):
        assert set(q1_result.reports) == {"standard_lsh", "fair_lsh_collect", "fair_nnis"}

    def test_parameters_recorded(self, q1_result):
        assert q1_result.params["K"] >= 1
        assert q1_result.params["L"] >= 1

    def test_standard_lsh_less_fair_than_fair_lsh(self, q1_result):
        standard_tv = q1_result.reports["standard_lsh"].mean_tv
        fair_tv = q1_result.reports["fair_lsh_collect"].mean_tv
        assert standard_tv > fair_tv

    def test_fair_nnis_is_reasonably_uniform(self, q1_result):
        assert q1_result.reports["fair_nnis"].mean_tv < q1_result.reports["standard_lsh"].mean_tv

    def test_slope_summary_has_all_samplers(self, q1_result):
        slopes = q1_result.slope_summary()
        assert set(slopes) == set(q1_result.reports)

    def test_format_produces_report_text(self, q1_result):
        text = format_q1(q1_result)
        assert "Q1" in text and "standard_lsh" in text and "fair_nnis" in text

    def test_invalid_config_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_q1(Q1Config(dataset="netflix"))


class TestQ2:
    def test_probabilities_collected_for_all_labels(self, q2_result):
        assert set(q2_result.probabilities) == {"X", "Y", "Z", "cluster"}
        for values in q2_result.probabilities.values():
            assert len(values) == q2_result.config.trials

    def test_x_dominates_y(self, q2_result):
        """The qualitative Figure 2 result: X is reported far more often than Y."""
        assert q2_result.x_over_y_ratio() > 3.0

    def test_quartiles_ordered(self, q2_result):
        for stats in q2_result.quartiles().values():
            assert stats["q25"] <= stats["median"] <= stats["q75"]

    def test_format_mentions_landmarks(self, q2_result):
        text = format_q2(q2_result)
        assert "X" in text and "Y" in text and "Z" in text

    def test_invalid_config_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_q2(Q2Config(relaxed=0.95, radius=0.9))


class TestQ3:
    def test_all_cells_present(self, q3_result):
        expected_cells = len(q3_result.config.radii) * len(q3_result.config.c_values)
        assert len(q3_result.ratios) == expected_cells

    def test_ratios_at_least_one(self, q3_result):
        for values in q3_result.ratios.values():
            assert all(v >= 1.0 for v in values)

    def test_ratio_grows_as_c_shrinks(self, q3_result):
        """Figure 3 shape: smaller c (bigger gap) gives larger b_cr / b_r."""
        summary = q3_result.cell_summary()
        for r in q3_result.config.radii:
            cells = sorted(
                ((c, summary[(float(r), float(c))]["median"]) for c in q3_result.config.c_values),
                key=lambda item: item[0],
            )
            medians = [m for _, m in cells]
            assert medians[0] >= medians[-1]

    def test_format_produces_rows(self, q3_result):
        text = format_q3(q3_result)
        assert "median" in text

    def test_invalid_config_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_q3(Q3Config(c_values=(2.0,)))


class TestReportHelpers:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "a" in text and "bb" in text and "2.5" in text

    def test_format_key_values(self):
        text = format_key_values("Title", {"k": 1, "x": 2.5})
        assert text.startswith("Title")
        assert "k: 1" in text


class TestRunner:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["q2", "--fast"])
        assert args.experiment == "q2" and args.fast

    def test_main_q2_fast(self, capsys):
        exit_code = main(["q2", "--fast"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Q2" in captured.out

    def test_main_q3_fast(self, capsys):
        exit_code = main(["q3", "--fast"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Q3" in captured.out

"""Sharded serving: byte-identical equivalence, placement, snapshots, facade.

The load-bearing guarantee of :mod:`repro.engine.sharded` is pinned here:
for the same spec + seed + dataset, a :class:`ShardedEngine` over any
``n_shards`` returns **byte-identical** :class:`QueryResponse`\\ s (indices,
values *and* work counters) to the unsharded :class:`BatchQueryEngine` —
for every registered LSH-backed sampler, before and after an insert/delete
churn phase that crosses compaction sweeps.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import registry
from repro.api import FairNN
from repro.core.base import LSHNeighborSampler
from repro.engine import (
    BatchQueryEngine,
    ShardedEngine,
    ShardedLSHTables,
    load_engine,
    save_engine,
)
from repro.engine.batch import build_tables
from repro.engine.sharded import _stable_point_hash
from repro.exceptions import InvalidParameterError
from repro.lsh import MinHashFamily
from repro.spec import EngineSpec, LSHSpec, SamplerSpec

SET_PARAMS = {"radius": 0.35, "far_radius": 0.1, "num_hashes": 2, "num_tables": 8}


def _lsh_backed_sampler_names():
    """Every registered sampler that can serve over dynamic (sharded) tables."""
    names = []
    for name, cls in registry.SAMPLERS.items():
        if not issubclass(cls, LSHNeighborSampler):
            continue
        if registry.SAMPLERS.metadata(name).get("inputs") != "family":
            continue
        if not cls.supports_dynamic_ranks:
            continue  # e.g. rank_perturbation: permutation ranks only
        names.append(name)
    return sorted(names)


def _make_sampler(name, seed=7):
    spec = SamplerSpec(name, SET_PARAMS, lsh=LSHSpec("minhash"), seed=seed)
    return spec.build()


def _workload(rng, n=150):
    dataset = [
        frozenset(int(x) for x in rng.choice(500, size=rng.integers(8, 25)))
        for _ in range(n)
    ]
    queries = list(dataset[:15]) + [
        frozenset(int(x) for x in rng.choice(500, size=12)) for _ in range(10)
    ]
    inserts = [frozenset(int(x) for x in rng.choice(500, size=15)) for _ in range(30)]
    doomed = [int(x) for x in rng.choice(n, size=45, replace=False)]
    return dataset, queries, inserts, doomed


def _serve_and_churn(engine, queries, inserts, doomed):
    """A serving trace: batches interleaved with churn (deletes cross sweeps)."""
    responses = list(engine.run(queries))
    engine.insert_many(inserts)
    responses += engine.run(queries)
    for position, index in enumerate(doomed):
        engine.delete(index)
        if position % 7 == 0:
            responses += engine.run(queries[:4])
    responses += engine.run(queries)
    # Multi-draw and exclusion requests ride the same trace.
    responses += [engine.run([queries[0]])[0]]
    return responses


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for left, right in zip(reference, candidate):
        assert left.indices == right.indices
        assert left.value == right.value
        assert left.stats == right.stats
        assert left.sampler == right.sampler


class TestShardedEquivalence:
    def test_every_lsh_backed_sampler_is_covered(self):
        # The acceptance criterion names "every registered LSH-backed
        # sampler"; keep the derived list honest against the registry.
        names = _lsh_backed_sampler_names()
        assert set(names) == {
            "approximate",
            "collect_all",
            "independent",
            "permutation",
            "standard_lsh",
        }

    @pytest.mark.parametrize("name", _lsh_backed_sampler_names())
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_byte_identical_responses_with_churn(self, name, n_shards):
        rng = np.random.default_rng(42)
        dataset, queries, inserts, doomed = _workload(rng)
        reference = _serve_and_churn(
            BatchQueryEngine.build(_make_sampler(name), dataset),
            queries,
            inserts,
            doomed,
        )
        sharded = ShardedEngine.build(_make_sampler(name), dataset, n_shards=n_shards)
        _assert_identical(reference, _serve_and_churn(sharded, queries, inserts, doomed))

    def test_hash_placement_is_equivalent_too(self):
        rng = np.random.default_rng(43)
        dataset, queries, inserts, doomed = _workload(rng)
        reference = _serve_and_churn(
            BatchQueryEngine.build(_make_sampler("permutation"), dataset),
            queries,
            inserts,
            doomed,
        )
        sharded = ShardedEngine.build(
            _make_sampler("permutation"), dataset, n_shards=3, placement="hash"
        )
        _assert_identical(reference, _serve_and_churn(sharded, queries, inserts, doomed))
        sizes = sharded.tables.shard_sizes()
        assert sum(sizes) == len(dataset) + 30
        assert all(size > 0 for size in sizes)

    def test_equivalence_across_compaction_sweeps(self):
        """Deletes heavy enough to trigger global and per-shard sweeps."""
        rng = np.random.default_rng(44)
        dataset, queries, _, _ = _workload(rng)
        doomed = [int(x) for x in rng.choice(len(dataset), size=90, replace=False)]

        def build(sharded):
            sampler = _make_sampler("independent")
            tables, bound = build_tables(
                sampler,
                dataset,
                dynamic=True,
                max_tombstone_fraction=0.1,
                n_shards=4 if sharded else None,
            )
            sampler.attach(tables, bound)
            return (ShardedEngine if sharded else BatchQueryEngine)(sampler)

        def trace(engine):
            responses = list(engine.run(queries))
            for index in doomed:
                engine.delete(index)
                responses += engine.run(queries[:3])
            return responses

        reference_engine = build(False)
        reference = trace(reference_engine)
        sharded_engine = build(True)
        _assert_identical(reference, trace(sharded_engine))
        assert reference_engine.tables.rebuilds_triggered >= 1
        assert sharded_engine.tables.rebuilds_triggered >= 1
        # Shards self-compact under local pressure on top of global sweeps.
        assert any(s.rebuilds_triggered > 0 for s in sharded_engine.tables.shards)

    def test_sample_k_and_exclusion_equivalence(self):
        from repro.engine import QueryRequest

        rng = np.random.default_rng(45)
        dataset, queries, _, _ = _workload(rng)
        requests = [
            QueryRequest(query=queries[0], k=4, replacement=False),
            QueryRequest(query=queries[1], k=3, replacement=True),
            QueryRequest(query=dataset[2], exclude_index=2),
        ]
        reference = BatchQueryEngine.build(_make_sampler("permutation"), dataset).run(requests)
        sharded = ShardedEngine.build(_make_sampler("permutation"), dataset, n_shards=4).run(
            requests
        )
        _assert_identical(reference, sharded)


class TestShardedTables:
    def test_merged_buckets_match_unsharded(self, small_set_dataset):
        sampler = _make_sampler("permutation")
        unsharded, _ = build_tables(sampler, small_set_dataset, dynamic=True)
        sampler2 = _make_sampler("permutation")
        sharded, _ = build_tables(sampler2, small_set_dataset, dynamic=True, n_shards=3)
        assert isinstance(sharded, ShardedLSHTables)
        for table_index in range(unsharded.num_tables):
            reference = unsharded._tables[table_index]
            merged = sharded._tables[table_index]
            assert set(merged) == set(reference)
            assert len(merged) == len(reference)
            for key, bucket in reference.items():
                merged_bucket = merged[key]
                np.testing.assert_array_equal(bucket.indices, merged_bucket.indices)
                np.testing.assert_array_equal(bucket.ranks, merged_bucket.ranks)

    def test_ranks_and_functions_are_placement_invariant(self, small_set_dataset):
        built = [
            build_tables(_make_sampler("permutation"), small_set_dataset, dynamic=True, n_shards=n)[0]
            for n in (None, 1, 2, 4)
        ]
        reference = built[0]
        # Insert streams stay aligned after construction as well: mutate
        # every variant identically and re-compare the global rank arrays.
        for round_inserts in (small_set_dataset[:3], small_set_dataset[3:5]):
            for tables in built[1:]:
                np.testing.assert_array_equal(reference.ranks, tables.ranks)
            for tables in built:
                tables.insert_many(list(round_inserts))
        for tables in built[1:]:
            np.testing.assert_array_equal(reference.ranks, tables.ranks)

    def test_round_robin_placement_is_recorded(self, small_set_dataset):
        tables, _ = build_tables(
            _make_sampler("permutation"), small_set_dataset, dynamic=True, n_shards=4
        )
        n = len(small_set_dataset)
        np.testing.assert_array_equal(tables.shard_of, np.arange(n) % 4)
        tables.insert_many(list(small_set_dataset[:2]))
        assert tables.shard_of[n] == n % 4
        assert sum(tables.shard_sizes()) == n + 2

    def test_stable_point_hash_ignores_set_order(self):
        assert _stable_point_hash(frozenset({1, 2, 3})) == _stable_point_hash(
            frozenset({3, 1, 2})
        )
        assert _stable_point_hash(frozenset({1, 2, 3})) != _stable_point_hash(
            frozenset({1, 2, 4})
        )

    def test_colliding_prefix_view_is_a_true_prefix(self, small_set_dataset):
        tables, _ = build_tables(
            _make_sampler("permutation"), small_set_dataset, dynamic=True, n_shards=4
        )
        query = small_set_dataset[0]
        full_ranks, full_indices = tables.colliding_view(query)
        (prefix_ranks, prefix_indices), complete = tables.colliding_prefix_view(query, 4)
        assert not complete or prefix_ranks.size == full_ranks.size
        np.testing.assert_array_equal(prefix_ranks, full_ranks[: prefix_ranks.size])
        np.testing.assert_array_equal(prefix_indices, full_indices[: prefix_indices.size])
        # A generous limit returns the complete view.
        (all_ranks, all_indices), complete = tables.colliding_prefix_view(query, 10_000)
        assert complete
        np.testing.assert_array_equal(all_ranks, full_ranks)
        np.testing.assert_array_equal(all_indices, full_indices)

    def test_validation(self, small_set_dataset):
        with pytest.raises(InvalidParameterError):
            ShardedLSHTables(MinHashFamily(), l=3, n_shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedLSHTables(MinHashFamily(), l=3, placement="modulo")
        with pytest.raises(InvalidParameterError):
            build_tables(
                _make_sampler("permutation"), small_set_dataset, dynamic=False, n_shards=2
            )

    def test_sharded_engine_requires_sharded_tables(self, small_set_dataset):
        engine = BatchQueryEngine.build(_make_sampler("permutation"), small_set_dataset)
        with pytest.raises(InvalidParameterError):
            ShardedEngine(engine.sampler)

    def test_close_shuts_down_the_pool_and_reserve_closes_old_engines(
        self, small_set_dataset
    ):
        engine = ShardedEngine.build(_make_sampler("permutation"), small_set_dataset, n_shards=2)
        engine.run(list(small_set_dataset[:5]))
        engine.close()
        engine.close()  # idempotent
        assert engine._pool._shutdown
        # Re-serving a facade replaces its engines and releases their pools.
        spec = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)
        nn = FairNN.from_spec(spec).serve(small_set_dataset, shards=2)
        old = nn.engine()
        nn.serve(small_set_dataset)
        assert old._pool._shutdown

    def test_prefix_flag_without_override_falls_back_to_merged_view(
        self, small_set_dataset
    ):
        """A sampler may declare supports_rank_prefix_scan but keep the base
        sample_detailed_from_prefix (always None): the engine must fall back
        to the full merged view once the prefix is complete, not escalate
        forever."""
        from repro.core import StandardLSHSampler
        from repro.core.base import LSHNeighborSampler

        class FlaggedWithoutOverride(StandardLSHSampler):
            # Declare the capability but strip the real prefix replayers back
            # to the base always-refuse implementations.
            supports_rank_prefix_scan = True
            prefix_scan_needs_tables = False
            sample_detailed_from_prefix = LSHNeighborSampler.sample_detailed_from_prefix
            sample_k_from_prefix = LSHNeighborSampler.sample_k_from_prefix

        sampler = FlaggedWithoutOverride(
            MinHashFamily(), seed=7, use_ranks=True, **SET_PARAMS
        )
        engine = ShardedEngine.build(sampler, small_set_dataset, n_shards=2)
        responses = engine.run(list(small_set_dataset[:5]))
        assert len(responses) == 5
        assert engine.stats.prefix_scans == 0  # nothing certified via prefix


class TestShardedSpecAndFacade:
    def test_engine_spec_round_trips_shard_fields(self):
        spec = EngineSpec(
            samplers={"fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"))},
            n_shards=4,
            placement="hash",
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec
        assert EngineSpec.from_json(spec.to_json()) == spec
        assert json.loads(spec.to_json())["n_shards"] == 4

    def test_engine_spec_validates_shard_fields(self):
        sampler = {"fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"))}
        with pytest.raises(InvalidParameterError):
            EngineSpec(samplers=sampler, n_shards=0)
        with pytest.raises(InvalidParameterError):
            EngineSpec(samplers=sampler, placement="nope")
        with pytest.raises(InvalidParameterError):
            EngineSpec(samplers=sampler, n_shards=2, dynamic=False)

    def test_serve_shards_promotes_and_records_spec(self, small_set_dataset):
        spec = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)
        nn = FairNN.from_spec(spec).serve(small_set_dataset, shards=3)
        assert nn.is_sharded and nn.is_dynamic
        assert nn.n_shards == 3
        assert nn.spec.n_shards == 3  # recorded: snapshots describe the topology
        assert isinstance(nn.engine(), ShardedEngine)

        unsharded = FairNN.from_spec(spec).serve(small_set_dataset)
        assert not unsharded.is_sharded and unsharded.n_shards == 1
        queries = list(small_set_dataset[:20])
        _assert_identical(unsharded.run(queries), nn.run(queries))

    def test_spec_n_shards_drives_serving(self, small_set_dataset):
        engine_spec = EngineSpec(
            samplers={"fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)},
            n_shards=2,
        )
        nn = FairNN.from_spec(engine_spec).serve(small_set_dataset)
        assert nn.is_sharded and nn.n_shards == 2

    def test_facade_mutations_route_once_and_notify_all(self, small_set_dataset):
        engine_spec = EngineSpec(
            samplers={
                "fair": SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5),
                "independent": SamplerSpec("independent", SET_PARAMS, lsh=LSHSpec("minhash"), seed=6),
            },
            primary="fair",
            n_shards=4,
        )
        nn = FairNN.from_spec(engine_spec).serve(small_set_dataset)
        new_point = frozenset(range(3000, 3030))
        index = nn.insert(new_point)
        nn.delete(0)
        stats = nn.stats()
        assert all(s.inserts == 1 and s.deletes == 1 for s in stats.values())
        for name in ("fair", "independent"):
            assert nn.sample(new_point, sampler=name) == index

    def test_snapshot_v4_round_trip(self, small_set_dataset, tmp_path):
        spec = SamplerSpec("permutation", SET_PARAMS, lsh=LSHSpec("minhash"), seed=5)
        nn = FairNN.from_spec(spec).serve(small_set_dataset, shards=3)
        nn.insert_many(list(small_set_dataset[:5]))
        nn.delete(2)
        nn.save(tmp_path / "snap")
        manifest = json.loads((tmp_path / "snap" / "manifest.json").read_text())
        assert manifest["format_version"] == 4
        assert manifest["n_shards"] == 3
        assert manifest["placement"] == "round_robin"
        assert len(manifest["shards"]) == 3

        clone = FairNN.load(tmp_path / "snap")
        assert clone.is_sharded and clone.n_shards == 3
        queries = list(small_set_dataset[:25])
        _assert_identical(nn.run(queries), clone.run(queries))
        # The restored engine keeps mutating byte-identically.
        extra = [frozenset(range(i, i + 12)) for i in range(4000, 4040, 10)]
        assert nn.insert_many(extra) == clone.insert_many(extra)
        nn.delete(7)
        clone.delete(7)
        _assert_identical(nn.run(queries), clone.run(queries))

    def test_unsharded_snapshots_still_write_v3(self, small_set_dataset, tmp_path):
        engine = BatchQueryEngine.build(_make_sampler("permutation"), small_set_dataset)
        save_engine(engine, tmp_path / "snap")
        manifest = json.loads((tmp_path / "snap" / "manifest.json").read_text())
        assert manifest["format_version"] == 3
        assert isinstance(load_engine(tmp_path / "snap"), BatchQueryEngine)

    def test_sharded_save_load_engine_direct(self, small_set_dataset, tmp_path):
        engine = ShardedEngine.build(
            _make_sampler("independent"), small_set_dataset, n_shards=2, placement="hash"
        )
        engine.run(list(small_set_dataset[:10]))
        save_engine(engine, tmp_path / "snap")
        clone = load_engine(tmp_path / "snap")
        assert isinstance(clone, ShardedEngine)
        assert clone.tables.placement == "hash"
        np.testing.assert_array_equal(engine.tables.shard_of, clone.tables.shard_of)
        queries = list(small_set_dataset[10:30])
        _assert_identical(engine.run(queries), clone.run(queries))

"""repro — Fair Near Neighbor Search: Independent Range Sampling in High Dimensions.

A from-scratch reproduction of Aumüller, Pagh and Silvestri (PODS 2020).  The
package provides fair (uniform, independent) r-near-neighbor sampling data
structures on top of a complete LSH substrate, plus the baselines, datasets,
fairness audit tooling and experiment harness needed to regenerate every
figure of the paper's evaluation section.

Quickstart
----------
>>> from repro import PermutationFairSampler, MinHashFamily
>>> sets = [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({7, 8, 9})]
>>> sampler = PermutationFairSampler(MinHashFamily(), radius=0.4, seed=0).fit(sets)
>>> sampler.sample(frozenset({1, 2, 3, 4})) in (0, 1)
True

Or declaratively, through the spec + registry + facade layer (the same
construction, as config values — see ``docs/api.md``):

>>> from repro import FairNN, LSHSpec, SamplerSpec
>>> spec = SamplerSpec("permutation", {"radius": 0.4}, lsh=LSHSpec("minhash"), seed=0)
>>> nn = FairNN.from_spec(spec).fit(sets)
>>> nn.sample(frozenset({1, 2, 3, 4})) in (0, 1)
True
"""

from repro.core import (
    ApproximateNeighborhoodSampler,
    CollectAllFairSampler,
    ExactUniformSampler,
    FilterFairSampler,
    GaussianFilterIndex,
    IndependentFairSampler,
    LSHNeighborSampler,
    NeighborSampler,
    PermutationFairSampler,
    QueryResult,
    QueryStats,
    RankPerturbationSampler,
    StandardLSHSampler,
    sample_with_replacement,
    sample_without_replacement,
)
from repro.distances import (
    AngularDistance,
    CosineSimilarity,
    EuclideanDistance,
    HammingDistance,
    InnerProductSimilarity,
    JaccardSimilarity,
    ball_indices,
    ball_size,
)
from repro.lsh import (
    BitSamplingFamily,
    ConcatenatedFamily,
    HyperplaneFamily,
    LSHFamily,
    LSHParameters,
    LSHTables,
    MinHashFamily,
    OneBitMinHashFamily,
    PStableFamily,
    compute_rho,
    select_parameters,
)
from repro.engine import (
    BatchQueryEngine,
    DynamicLSHTables,
    EngineStats,
    ProcessShardedEngine,
    QueryRequest,
    QueryResponse,
    ShardedEngine,
    ShardedLSHTables,
    WALRecord,
    WriteAheadLog,
    load_engine,
    save_engine,
)
from repro.fairness import FairnessAuditor, total_variation_from_uniform
from repro.exceptions import (
    AlreadyDeletedError,
    BlockFetchError,
    CapacityExceededError,
    EmptyDatasetError,
    InvalidParameterError,
    NotFittedError,
    QuotaExceededError,
    ReproError,
    ServerTimeoutError,
    SlotOutOfRangeError,
    SnapshotCorruptError,
    WALCorruptError,
    WALError,
    WALWriteError,
    WorkerCrashedError,
)
from repro.testing import FaultInjector, FaultPlan
from repro.registry import (
    DISTANCES,
    LSH_FAMILIES,
    SAMPLERS,
    distance_names,
    get_distance,
    get_lsh_family,
    get_sampler,
    lsh_family_names,
    register_distance,
    register_lsh_family,
    register_sampler,
    sampler_names,
)
from repro.spec import DistanceSpec, EngineSpec, LSHSpec, SamplerSpec, spec_from_dict
from repro.store import (
    DatasetStore,
    DenseStore,
    HTTPBlockClient,
    LocalBlockClient,
    MemmapDenseStore,
    MemmapSetStore,
    RemoteDenseStore,
    RemoteSetStore,
    SetStore,
    StoreSpec,
    make_store,
)
from repro.api import FairNN
from repro.server import (
    BlockServer,
    CapacityModel,
    FairNNClient,
    FairNNServer,
    ServingHandle,
    SnapshotSwapper,
    SwapInProgressError,
    SwapReport,
    SwapVerificationError,
    TokenBucket,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    # core samplers
    "NeighborSampler",
    "LSHNeighborSampler",
    "ExactUniformSampler",
    "StandardLSHSampler",
    "CollectAllFairSampler",
    "ApproximateNeighborhoodSampler",
    "PermutationFairSampler",
    "RankPerturbationSampler",
    "IndependentFairSampler",
    "GaussianFilterIndex",
    "FilterFairSampler",
    "QueryResult",
    "QueryStats",
    "sample_with_replacement",
    "sample_without_replacement",
    # distances
    "EuclideanDistance",
    "HammingDistance",
    "JaccardSimilarity",
    "InnerProductSimilarity",
    "AngularDistance",
    "CosineSimilarity",
    "ball_indices",
    "ball_size",
    # lsh
    "LSHFamily",
    "ConcatenatedFamily",
    "MinHashFamily",
    "OneBitMinHashFamily",
    "HyperplaneFamily",
    "PStableFamily",
    "BitSamplingFamily",
    "LSHParameters",
    "LSHTables",
    "compute_rho",
    "select_parameters",
    # engine
    "BatchQueryEngine",
    "DynamicLSHTables",
    "ProcessShardedEngine",
    "ShardedEngine",
    "ShardedLSHTables",
    "EngineStats",
    "QueryRequest",
    "QueryResponse",
    "save_engine",
    "load_engine",
    # durability (repro.engine.wal)
    "WriteAheadLog",
    "WALRecord",
    # chaos testing (repro.testing)
    "FaultInjector",
    "FaultPlan",
    # fairness
    "FairnessAuditor",
    "total_variation_from_uniform",
    # exceptions
    "ReproError",
    "NotFittedError",
    "EmptyDatasetError",
    "InvalidParameterError",
    "SlotOutOfRangeError",
    "AlreadyDeletedError",
    "CapacityExceededError",
    "QuotaExceededError",
    "WorkerCrashedError",
    "WALError",
    "WALCorruptError",
    "WALWriteError",
    "SnapshotCorruptError",
    "BlockFetchError",
    "ServerTimeoutError",
    # registries (repro.registry)
    "SAMPLERS",
    "DISTANCES",
    "LSH_FAMILIES",
    "register_sampler",
    "register_distance",
    "register_lsh_family",
    "get_sampler",
    "get_distance",
    "get_lsh_family",
    "sampler_names",
    "distance_names",
    "lsh_family_names",
    # declarative specs (repro.spec)
    "DistanceSpec",
    "LSHSpec",
    "SamplerSpec",
    "EngineSpec",
    "spec_from_dict",
    # storage backends (repro.store)
    "StoreSpec",
    "DatasetStore",
    "DenseStore",
    "SetStore",
    "MemmapDenseStore",
    "MemmapSetStore",
    "RemoteDenseStore",
    "RemoteSetStore",
    "LocalBlockClient",
    "HTTPBlockClient",
    "make_store",
    # facade (repro.api)
    "FairNN",
    # serving (repro.server)
    "BlockServer",
    "FairNNServer",
    "FairNNClient",
    "CapacityModel",
    "TokenBucket",
    "ServingHandle",
    "SnapshotSwapper",
    "SwapReport",
    "SwapInProgressError",
    "SwapVerificationError",
]

"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when a query is issued against an index that was never built.

    Every sampler and index in :mod:`repro.core` must be constructed from a
    dataset via ``fit`` (or by passing the dataset to the constructor) before
    queries are allowed.
    """


class EmptyDatasetError(ReproError):
    """Raised when an index is built over an empty dataset."""


class DimensionMismatchError(ReproError):
    """Raised when a query point does not match the dataset dimensionality."""


class InvalidParameterError(ReproError):
    """Raised when a user-facing parameter is outside its valid range."""


class UnsupportedDataTypeError(ReproError):
    """Raised when a measure or hash family receives data it cannot handle.

    For example, feeding dense vectors to a MinHash family (which operates on
    sets) raises this error rather than producing silently wrong hashes.
    """

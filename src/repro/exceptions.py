"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when a query is issued against an index that was never built.

    Every sampler and index in :mod:`repro.core` must be constructed from a
    dataset via ``fit`` (or by passing the dataset to the constructor) before
    queries are allowed.
    """


class EmptyDatasetError(ReproError):
    """Raised when an index is built over an empty dataset."""


class DimensionMismatchError(ReproError):
    """Raised when a query point does not match the dataset dimensionality."""


class InvalidParameterError(ReproError):
    """Raised when a user-facing parameter is outside its valid range."""


class UnsupportedDataTypeError(ReproError):
    """Raised when a measure or hash family receives data it cannot handle.

    For example, feeding dense vectors to a MinHash family (which operates on
    sets) raises this error rather than producing silently wrong hashes.
    """


class CapacityExceededError(ReproError):
    """Raised when an operation would exceed a configured capacity limit.

    The serving layer's admission control
    (:class:`~repro.server.capacity.CapacityModel`) raises this when an
    insert batch would push the index past its slot or memory budget (after
    over-commit), or when the bounded request queue is full.  Carries
    ``retry_after`` — the suggested back-off in seconds, surfaced by the HTTP
    layer as a ``429`` response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class QuotaExceededError(CapacityExceededError):
    """Raised when a per-sampler token-bucket quota is exhausted.

    ``retry_after`` is the time until the bucket has refilled enough tokens
    to admit the rejected request.
    """


class WorkerCrashedError(ReproError):
    """Raised when a shard worker process died while serving a request.

    The process-parallel engine (:class:`~repro.engine.procpool.
    ProcessShardedEngine`) fails the in-flight batch with this error instead
    of hanging on a dead socket.  By the time the error reaches the caller
    the supervisor has already restarted the worker from its shard baseline
    and replayed unacknowledged mutations, so the *next* request is served
    normally — the error marks one lost batch, not a degraded engine.  The
    HTTP layer surfaces it as a ``503`` (transient, retryable).

    Attributes
    ----------
    shard_index:
        Index of the shard whose worker died (``None`` when several died).
    restarts:
        Number of worker restarts performed while handling this failure.
    """

    def __init__(self, message: str, shard_index=None, restarts: int = 0):
        super().__init__(message)
        self.shard_index = shard_index
        self.restarts = int(restarts)


class SlotOutOfRangeError(InvalidParameterError, IndexError):
    """Raised when a mutation names a dataset slot outside ``[0, n)``.

    Subclasses both :class:`InvalidParameterError` (so library-wide handlers
    keep working) and :class:`IndexError` (the natural Python category for an
    out-of-range index).  Raised *before* any state is touched: a failed
    delete never lands in a :class:`~repro.engine.dynamic.MutationDelta`,
    never moves the tombstone fraction and never bumps engine counters.
    """


class WALError(ReproError):
    """Base class for write-ahead-log failures (:mod:`repro.engine.wal`)."""


class WALCorruptError(WALError):
    """Raised when the WAL contains damage that replay cannot repair.

    A *torn tail* — a partially written final record, the normal residue of
    a crash mid-append — is **not** corruption: the scanner detects it via
    the length prefix / CRC, truncates it, and recovery proceeds.  This
    error marks the other cases: a damaged record *followed by* valid data
    (bit rot, concurrent writers, manual edits), a bad segment header, or a
    gap in the sequence numbering.  Replaying past such damage could apply
    a divergent mutation history, so recovery refuses instead.

    Attributes
    ----------
    path:
        Segment file containing the damage (``None`` for cross-segment
        problems such as sequence gaps).
    offset:
        Byte offset of the damaged record within ``path``, when known.
    """

    def __init__(self, message: str, path=None, offset=None):
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.offset = offset


class WALWriteError(WALError):
    """Raised when appending to the WAL fails (disk full, I/O error).

    The durability contract is *log before apply*: when the append fails
    the mutation is **not** applied, so the in-memory engine and the log
    never diverge.  The HTTP layer surfaces this as ``507 Insufficient
    Storage`` — the request may be retried after the operator frees space
    or rotates the data directory.
    """


class SnapshotCorruptError(ReproError):
    """Raised when an engine snapshot directory cannot be loaded.

    Wraps the underlying failure (missing files, truncated arrays, invalid
    JSON, pickle damage) in one typed error so operators and the recovery
    path can treat "this checkpoint is bad, try the previous one" as a
    single condition instead of catching raw ``numpy``/``pickle``/``json``
    exceptions.  The original exception is preserved as ``__cause__``.

    Attributes
    ----------
    path:
        The damaged file inside the snapshot directory, when the failure
        could be pinned to one (a missing or truncated per-array ``.npy``
        in the v5 layout, the ``arrays.npz`` of older formats); ``None``
        for directory-level damage.
    """

    def __init__(self, message: str, path=None):
        super().__init__(message)
        self.path = None if path is None else str(path)


class BlockFetchError(ReproError):
    """Raised when a remote vector-block fetch fails or returns torn data.

    The remote dataset store (:class:`repro.store.RemoteDenseStore` /
    :class:`repro.store.RemoteSetStore`) fetches vector blocks over the
    narrow :class:`repro.store.BlockClient` protocol; a block server that is
    unreachable, answers with an HTTP error, or returns fewer bytes than the
    block geometry requires surfaces as this one typed error instead of raw
    ``urllib``/``socket`` exceptions.

    Attributes
    ----------
    name:
        The logical array whose blocks were requested, when known.
    """

    def __init__(self, message: str, name=None):
        super().__init__(message)
        self.name = name


class ServerTimeoutError(ReproError, TimeoutError):
    """Raised when an HTTP client call exceeds its socket timeout/deadline.

    Subclasses :class:`TimeoutError` so generic timeout handlers work, and
    :class:`ReproError` so library-wide handlers keep working.  Raised by
    :class:`~repro.server.client.FairNNClient` when a request (including
    all retries) does not complete within the configured deadline.
    """


class AlreadyDeletedError(InvalidParameterError, KeyError):
    """Raised when deleting a dataset slot that is already tombstoned.

    Subclasses both :class:`InvalidParameterError` and :class:`KeyError` (a
    double-delete is a missing-key condition, not a range error).  Like
    :class:`SlotOutOfRangeError` it is raised before any bookkeeping, so a
    double-delete is never double-counted in the
    :class:`~repro.engine.dynamic.MutationDelta`, the pending-tombstone set
    or any engine statistics.
    """

    # KeyError.__str__ repr()s the message (it normally carries a key);
    # restore plain rendering so logs don't grow spurious quotes.
    __str__ = Exception.__str__

"""Reusable test/chaos utilities shipped with the library.

Shipped as part of the package (not under ``tests/``) so downstream users
can chaos-test their own deployments of the serving stack with the same
machinery our CI uses — see :mod:`repro.testing.faults` and the
chaos-testing guide in ``docs/operations.md``.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultPlan,
    crash_process,
    flip_byte,
    raise_disk_full,
    sleep_for,
    tear_tail,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "crash_process",
    "flip_byte",
    "raise_disk_full",
    "sleep_for",
    "tear_tail",
]

"""Chaos-injection primitives for the serving stack.

Two complementary mechanisms live here:

:class:`FaultPlan`
    Declarative, deterministic crash scheduling for *shard worker
    processes* (grown in the process-parallel engine, now reusable): kill,
    exit or hang a worker after its N-th query or replicated mutation.
    Consumed by :meth:`repro.engine.procpool.ProcessShardedEngine.
    inject_fault`.

:class:`FaultInjector`
    Imperative, site-based fault firing for *in-process* code paths.
    Components expose named sites (the WAL fires ``"wal.append"``,
    ``"wal.flush"`` and ``"wal.fsync"``; the worker supervisor fires
    ``"proc.send"`` and ``"proc.recv"``); tests arm an action — raise
    disk-full, crash the process, sleep past a timeout — to run on the
    K-th pass through a site.  This turns "crash exactly between the WAL
    flush and the table apply" from a race into a deterministic test.

Plus file-corruption helpers (:func:`tear_tail`, :func:`flip_byte`) for
manufacturing torn and bit-rotted WAL segments / snapshot files on disk.

Everything here is import-safe in production code: an unarmed injector is
a no-op, and the helpers touch nothing until called.
"""

from __future__ import annotations

import errno
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.exceptions import InvalidParameterError

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "crash_process",
    "flip_byte",
    "raise_disk_full",
    "sleep_for",
    "tear_tail",
]


@dataclass
class FaultPlan:
    """Deterministic crash injection for one (or every) shard worker.

    Triggers are 1-based counts of protocol events observed by the worker
    *after* the plan is installed: the worker dies while serving its
    ``kill_after_queries``-th ``QUERY`` frame (before replying — mid-batch
    from the parent's point of view) or right after applying its
    ``kill_after_mutations``-th replicated mutation.  Plans are one-shot: the
    supervisor clears a worker's plan when it handles that worker's crash,
    so the restarted worker serves normally.

    ``mode`` selects how the worker dies: ``"kill"`` (SIGKILL itself — no
    cleanup, the hard case), ``"exit"`` (``os._exit``) or ``"hang"`` (sleep
    past the parent's reply timeout; the supervisor treats the silence as a
    crash and kills the process).
    """

    shard_index: Optional[int] = None
    kill_after_queries: Optional[int] = None
    kill_after_mutations: Optional[int] = None
    mode: str = "kill"

    def matches(self, shard_index: int) -> bool:
        return self.shard_index is None or self.shard_index == shard_index


@dataclass
class _ArmedFault:
    action: Callable[[], None]
    after: int
    remaining: Optional[int]
    passes: int = 0
    triggered: int = 0


class FaultInjector:
    """Fires armed actions at named sites inside instrumented components.

    >>> injector = FaultInjector()
    >>> injector.arm("wal.append", raise_disk_full, after=3)
    >>> wal = WriteAheadLog.open(path, fault_injector=injector)
    >>> # the 4th append raises WALWriteError(ENOSPC); earlier ones succeed

    ``after`` counts passes through the site before the action first runs
    (``after=0`` → the very next pass).  ``times`` bounds how many passes
    trigger the action (default 1; ``None`` → every subsequent pass).
    Unarmed sites cost one dict lookup — safe to leave instrumented in
    production code paths.
    """

    def __init__(self):
        self._armed: Dict[str, _ArmedFault] = {}
        self._lock = threading.Lock()

    def arm(
        self,
        site: str,
        action: Callable[[], None],
        after: int = 0,
        times: Optional[int] = 1,
    ) -> None:
        """Arm ``action`` to run on passes through ``site``."""
        if not callable(action):
            raise InvalidParameterError("FaultInjector action must be callable")
        if int(after) < 0:
            raise InvalidParameterError("FaultInjector after must be >= 0")
        if times is not None and int(times) < 1:
            raise InvalidParameterError("FaultInjector times must be >= 1 or None")
        with self._lock:
            self._armed[site] = _ArmedFault(
                action=action,
                after=int(after),
                remaining=None if times is None else int(times),
            )

    def disarm(self, site: str) -> None:
        """Remove whatever is armed at ``site`` (no-op when nothing is)."""
        with self._lock:
            self._armed.pop(site, None)

    def fired(self, site: str) -> int:
        """How many times the armed action at ``site`` has actually run."""
        with self._lock:
            fault = self._armed.get(site)
            return 0 if fault is None else fault.triggered

    def fire(self, site: str) -> None:
        """Called by instrumented components on every pass through ``site``.

        Runs the armed action when its trigger window is reached; whatever
        the action raises propagates into the component, exactly as a real
        fault at that site would.
        """
        with self._lock:
            fault = self._armed.get(site)
            if fault is None:
                return
            fault.passes += 1
            due = fault.passes > fault.after and (
                fault.remaining is None or fault.remaining > 0
            )
            if due:
                if fault.remaining is not None:
                    fault.remaining -= 1
                fault.triggered += 1
        if due:
            fault.action()


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------
def raise_disk_full() -> None:
    """Action: fail like a full disk (``OSError(ENOSPC)``).

    Armed on ``"wal.append"``/``"wal.fsync"`` this surfaces to callers as
    :class:`~repro.exceptions.WALWriteError` and over HTTP as ``507``.
    """
    raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))


def crash_process(mode: str = "kill") -> None:
    """Action: die the way a real crash does — no cleanup, no handlers.

    ``"kill"`` SIGKILLs the current process (nothing runs afterwards —
    the honest simulation of ``kill -9`` / OOM-kill); ``"exit"`` uses
    ``os._exit(1)`` (skips ``atexit``/finally but flushes nothing).
    Only meaningful in a sacrificial subprocess.
    """
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "exit":
        os._exit(1)
    else:  # pragma: no cover - guarded by callers
        raise InvalidParameterError(f"crash_process mode must be 'kill' or 'exit', got {mode!r}")


def sleep_for(seconds: float) -> Callable[[], None]:
    """Action factory: stall a site (e.g. delay an IPC frame past a timeout)."""

    def action() -> None:
        time.sleep(seconds)

    return action


# ----------------------------------------------------------------------
# On-disk corruption helpers
# ----------------------------------------------------------------------
def tear_tail(path, drop_bytes: int) -> int:
    """Truncate the last ``drop_bytes`` bytes of ``path`` — a torn write.

    Manufactures the residue of a crash mid-append: the file ends inside a
    record header or payload.  Returns the new file size.
    """
    path = Path(path)
    size = path.stat().st_size
    if not 0 < int(drop_bytes) <= size:
        raise InvalidParameterError(
            f"drop_bytes must be in (0, {size}], got {drop_bytes!r}"
        )
    new_size = size - int(drop_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` with 0xFF — simulated bit rot.

    Negative offsets index from the end, like Python slicing.
    """
    path = Path(path)
    size = path.stat().st_size
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise InvalidParameterError(f"offset {offset!r} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))

"""Sharded parallel serving: partitioned dynamic tables + a merging engine.

This module scales the single-process serving stack of
:class:`~repro.engine.dynamic.DynamicLSHTables` /
:class:`~repro.engine.batch.BatchQueryEngine` out across ``n_shards``
partitions, the same shape memory-pod systems use to saturate hardware:

* :class:`ShardedLSHTables` partitions the dataset across ``n_shards``
  independent :class:`~repro.engine.dynamic.DynamicLSHTables` (deterministic
  round-robin or stable-hash placement, recorded per point), while presenting
  the **exact same table interface** one unsharded table set would:
  ``query_buckets`` / ``colliding_view`` / ``rank_range_candidates`` return
  merged cross-shard buckets whose contents are byte-identical to the
  unsharded structure's.
* :class:`ShardedEngine` executes query batches across the shards through a
  thread-based worker pool (``concurrent.futures``; the batched numpy
  kernels release the GIL) and merges per-shard candidates into globally
  correct answers.

**Why the merge is exact.**  Every shard draws its hash functions from the
same stream and its ranks from the same global mutation stream an unsharded
:class:`~repro.engine.dynamic.DynamicLSHTables` would use, so a point's
bucket keys and rank are *placement-invariant*.  A bucket of the unsharded
structure is then precisely the disjoint union of the shards' buckets for
the same key, and because ranks are i.i.d. draws from the fixed ``2^62``
domain (exchangeable, collision-free in practice), re-sorting the union by
rank reproduces the unsharded bucket's member order exactly.  Samplers
attached to a :class:`ShardedLSHTables` therefore produce byte-identical
:class:`~repro.core.result.QueryResult`\\ s — same spec + seed + dataset,
any ``n_shards``.

**Rank-prefix gathering.**  The same exchangeability argument powers a
distributed top-k optimisation: for samplers whose answer is determined by a
rank prefix of the colliding view
(:attr:`~repro.core.base.LSHNeighborSampler.supports_rank_prefix_scan`),
each shard only surfaces its bottom-``B`` colliding references by rank.  Any
global candidate ranked below every truncated shard's boundary is provably
present, so the merged prefix is a true rank prefix of the full view and the
scan's early exit stays byte-identical — while the engine skips the full
multiset merge, sort and dedupe that dominate candidate-heavy queries.  The
gather itself — the bounded sorted-bucket per-shard slice, the certified
merge and the self-tuning budget controller — lives in
:mod:`repro.engine.gather` and is shared verbatim by this thread-pool
engine and the process executor (:class:`~repro.engine.procpool.
ProcessShardedEngine`); see that module for the cost and correctness
arguments.  The prefix loop covers single draws
(:meth:`~repro.core.base.LSHNeighborSampler.sample_detailed_from_prefix`)
and, for samplers implementing
:meth:`~repro.core.base.LSHNeighborSampler.sample_k_from_prefix`, batched
``k``-draw requests as well.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.engine.batch import BatchQueryEngine, build_tables
from repro.engine.dynamic import DynamicLSHTables, MutationDelta
from repro.engine.gather import (
    PrefixBudgetController,
    PrefixView,
    bounded_shard_prefix,
    merge_prefix_parts,
    split_budget,
)
from repro.store.points import points_share_store
from repro.engine.requests import QueryRequest, QueryResponse
from repro.exceptions import (
    AlreadyDeletedError,
    EmptyDatasetError,
    InvalidParameterError,
    SlotOutOfRangeError,
)
from repro.lsh.family import LSHFamily
from repro.lsh.tables import Bucket, point_digest
from repro.rng import SeedLike
from repro.types import Dataset, Point

__all__ = ["PLACEMENTS", "ShardedLSHTables", "ShardedEngine"]

#: Supported placement policies: ``round_robin`` assigns slot ``i`` to shard
#: ``i % n_shards``; ``hash`` places by a stable content hash of the point
#: (PYTHONHASHSEED-independent), falling back to round-robin for points
#: without a hashable digest.  Both are deterministic and recorded per point.
PLACEMENTS = ("round_robin", "hash")

#: Merged buckets cached per table before the cache is cycled.
_MERGED_CACHE_LIMIT = 4096


def _stable_point_hash(point) -> Optional[int]:
    """A process-stable 64-bit content hash of *point*, or ``None``.

    Built on :func:`~repro.lsh.tables.point_digest`; frozenset digests are
    canonicalized by sorting so the hash does not depend on set iteration
    order.  Unlike the builtin ``hash``, the value is independent of
    ``PYTHONHASHSEED``, so hash placement is reproducible across processes —
    a requirement for deterministic re-sharding and snapshot restores.
    """
    digest = point_digest(point)
    if digest is None:
        return None
    if isinstance(digest, frozenset):
        canonical = repr(sorted(digest, key=repr))
    else:
        canonical = repr(digest)
    blake = hashlib.blake2b(canonical.encode("utf-8"), digest_size=8)
    return int.from_bytes(blake.digest(), "big")


class _MergedTableView(Mapping):
    """Read-only ``key -> Bucket`` view merging one table across all shards.

    The owner's samplers index ``tables._tables[t]`` exactly as they would on
    an unsharded structure; this view answers those lookups by concatenating
    the shards' buckets for the key (translated to global slot indices) and
    restoring rank order.  Merged buckets are cached until the next mutation
    (the owner's ``mutation_epoch`` moves) or until the cache cycles at
    :data:`_MERGED_CACHE_LIMIT` entries.
    """

    __slots__ = ("_owner", "_table_index", "_cache", "_cache_epoch")

    def __init__(self, owner: "ShardedLSHTables", table_index: int):
        self._owner = owner
        self._table_index = table_index
        self._cache: Dict[Hashable, Bucket] = {}
        self._cache_epoch = owner.mutation_epoch

    # ------------------------------------------------------------------
    def _refresh_epoch(self) -> None:
        epoch = self._owner.mutation_epoch
        if epoch != self._cache_epoch:
            self._cache.clear()
            self._cache_epoch = epoch

    def get(self, key, default=None):
        """The merged bucket for *key*, or *default* when no shard holds it."""
        self._refresh_epoch()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        merged = self._merge(key)
        if merged is None:
            return default
        if len(self._cache) >= _MERGED_CACHE_LIMIT:
            # Evict the oldest entry (dict preserves insertion order) rather
            # than clearing wholesale: a wholesale clear mid-batch would
            # throw away buckets just primed for the in-flight queries and
            # force uncachable re-merges during the answer phase.
            self._cache.pop(next(iter(self._cache)), None)
        self._cache[key] = merged
        return merged

    def _merge(self, key) -> Optional[Bucket]:
        owner = self._owner
        table_index = self._table_index
        parts: List[Tuple[int, Bucket]] = []
        for shard_index in owner._fitted_shards():
            bucket = owner.shards[shard_index]._tables[table_index].get(key)
            if bucket is not None and bucket.indices.size:
                parts.append((shard_index, bucket))
        if not parts:
            return None
        with owner._merge_count_lock:
            owner.merged_buckets += 1
        if len(parts) == 1:
            shard_index, bucket = parts[0]
            return Bucket(
                owner._shard_globals(shard_index)[bucket.indices], bucket.ranks
            )
        indices = np.concatenate(
            [owner._shard_globals(s)[bucket.indices] for s, bucket in parts]
        )
        if parts[0][1].ranks is not None:
            ranks = np.concatenate([bucket.ranks for _, bucket in parts])
            # Ranks are i.i.d. draws from the 2^62 domain, so the rank order
            # is (almost surely) total: re-sorting the union reproduces the
            # unsharded bucket's member order exactly.
            order = np.argsort(ranks, kind="stable")
            return Bucket(indices[order], ranks[order])
        # Rankless buckets keep insertion order, which for the dynamic table
        # layer is always ascending global slot order — recoverable by sort.
        order = np.argsort(indices, kind="stable")
        return Bucket(indices[order])

    # ------------------------------------------------------------------
    def __getitem__(self, key) -> Bucket:
        bucket = self.get(key)
        if bucket is None:
            raise KeyError(key)
        return bucket

    def __iter__(self):
        seen: Set[Hashable] = set()
        table_index = self._table_index
        for shard_index in self._owner._fitted_shards():
            for key in self._owner.shards[shard_index]._tables[table_index]:
                if key not in seen:
                    seen.add(key)
                    yield key

    def __len__(self) -> int:
        seen: Set[Hashable] = set()
        table_index = self._table_index
        for shard_index in self._owner._fitted_shards():
            seen.update(self._owner.shards[shard_index]._tables[table_index])
        return len(seen)

    def __contains__(self, key) -> bool:
        table_index = self._table_index
        return any(
            key in self._owner.shards[s]._tables[table_index]
            for s in self._owner._fitted_shards()
        )


class ShardedLSHTables(DynamicLSHTables):
    """``L`` LSH tables partitioned across ``n_shards`` dynamic shards.

    Construction, ranks and mutation streams are *byte-compatible* with an
    unsharded :class:`~repro.engine.dynamic.DynamicLSHTables` built from the
    same arguments: the hash functions come from the same seed stream, every
    point's rank is drawn from the same global mutation stream in the same
    order, and the merged bucket views reproduce the unsharded buckets
    exactly.  Samplers attach to this class unchanged.

    Parameters beyond :class:`~repro.engine.dynamic.DynamicLSHTables`:

    n_shards:
        Number of partitions (``>= 1``).
    placement:
        One of :data:`PLACEMENTS`.  The chosen shard of every slot is
        recorded (:attr:`shard_of`) and persisted by snapshots (format v4).
    """

    def __init__(
        self,
        family: LSHFamily,
        l: int,
        seed: SeedLike = None,
        use_ranks: bool = True,
        max_tombstone_fraction: float = 0.25,
        n_shards: int = 2,
        placement: str = "round_robin",
        *,
        _functions=None,
    ):
        super().__init__(
            family,
            l,
            seed=seed,
            use_ranks=use_ranks,
            max_tombstone_fraction=max_tombstone_fraction,
            _functions=_functions,
        )
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise InvalidParameterError(f"n_shards must be an int >= 1, got {n_shards!r}")
        if placement not in PLACEMENTS:
            raise InvalidParameterError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        self.n_shards = int(n_shards)
        self.placement = placement
        #: The per-shard dynamic tables.  They share this structure's hash
        #: functions (so bucket keys are placement-invariant) and never draw
        #: ranks themselves — every rank comes from the global stream.
        self.shards: List[DynamicLSHTables] = [
            DynamicLSHTables(
                family,
                l,
                seed=0,
                use_ranks=use_ranks,
                max_tombstone_fraction=max_tombstone_fraction,
                _functions=self._functions,
            )
            for _ in range(self.n_shards)
        ]
        self._shard_fitted: List[bool] = [False] * self.n_shards
        # Placement record: global slot -> (owning shard, slot inside it),
        # plus the inverse per-shard local -> global maps used to translate
        # shard bucket contents during merges.
        self._shard_of: List[int] = []
        self._local_of: List[int] = []
        self._globals_list: List[List[int]] = [[] for _ in range(self.n_shards)]
        self._globals_np: List[Optional[np.ndarray]] = [None] * self.n_shards
        # Raw insert batches whose per-table bucket keys have not been folded
        # into the global MutationDelta yet (shards hash their own sub-batch;
        # the global record is resolved lazily, on first delta read).
        self._unresolved_insert_points: List[Tuple[int, list]] = []
        #: Lifetime count of cross-shard bucket merges materialized (the
        #: counter behind ``EngineStats.shard_merges``).
        self.merged_buckets = 0
        # Merges run on worker threads; the lock makes the counter's
        # read-modify-write safe so totals stay deterministic (each distinct
        # (table, key) pair is merged by exactly one priming job).
        self._merge_count_lock = threading.Lock()
        # Observers of per-shard mutation ops (the process-pool engine's
        # replica feed).  Listeners fire after the op has landed in the
        # owning parent shard, with enough payload to re-apply it verbatim
        # on a replica of that shard.
        self._shard_op_listeners: List = []

    # ------------------------------------------------------------------
    # Shard-op observation (replica feeds)
    # ------------------------------------------------------------------
    def add_shard_op_listener(self, listener) -> None:
        """Register ``listener(shard_index, op, args)`` for shard mutations.

        ``op`` is one of ``"insert"`` (args ``(points, ranks, was_fit)`` —
        the shard sub-batch in shard-local order, its global-stream ranks,
        and whether it arrived as the shard's first ``fit``), ``"delete"``
        (args ``(local_index,)``) or ``"compact"`` (args ``()``).  Replaying
        the stream against a byte-identical replica of the shard reproduces
        its state exactly: ranks are shipped rather than redrawn, and
        shard-local self-compaction triggers from identical thresholds.
        Listeners run synchronously under the caller's mutation context,
        *after* the parent shard reflects the op.
        """
        self._shard_op_listeners.append(listener)

    def remove_shard_op_listener(self, listener) -> None:
        """Unregister a listener registered via :meth:`add_shard_op_listener`."""
        try:
            self._shard_op_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_shard_op(self, shard_index: int, op: str, args: tuple) -> None:
        for listener in list(self._shard_op_listeners):
            listener(shard_index, op, args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_of(self) -> np.ndarray:
        """Owning shard of every dataset slot (recorded placement)."""
        return np.asarray(self._shard_of, dtype=np.intp)

    def shard_sizes(self) -> List[int]:
        """Number of slots (live and tombstoned) placed in each shard."""
        return [len(globals_) for globals_ in self._globals_list]

    def _fitted_shards(self):
        return [s for s in range(self.n_shards) if self._shard_fitted[s]]

    def _shard_globals(self, shard_index: int) -> np.ndarray:
        """The shard's local-slot -> global-slot translation array."""
        cached = self._globals_np[shard_index]
        globals_list = self._globals_list[shard_index]
        if cached is None or cached.size != len(globals_list):
            cached = np.asarray(globals_list, dtype=np.intp)
            self._globals_np[shard_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, points: Sequence[Point], start: int) -> List[int]:
        """The owning shard of each point, in batch order (deterministic)."""
        if self.placement == "round_robin" or self.n_shards == 1:
            return [(start + offset) % self.n_shards for offset in range(len(points))]
        placed = []
        for offset, point in enumerate(points):
            content = _stable_point_hash(point)
            placed.append(
                (start + offset) % self.n_shards
                if content is None
                else content % self.n_shards
            )
        return placed

    def _record_placement(self, shard_ids: List[int], start: int) -> List[List[int]]:
        """Record placement for a batch; returns per-shard offset lists."""
        per_shard: List[List[int]] = [[] for _ in range(self.n_shards)]
        next_local = [len(globals_) for globals_ in self._globals_list]
        for offset, shard_index in enumerate(shard_ids):
            per_shard[shard_index].append(offset)
            self._shard_of.append(shard_index)
            self._local_of.append(next_local[shard_index])
            next_local[shard_index] += 1
            self._globals_list[shard_index].append(start + offset)
            self._globals_np[shard_index] = None
        return per_shard

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, ranks: Optional[np.ndarray] = None) -> "ShardedLSHTables":
        """Partition *dataset* across the shards and build each one.

        Ranks are drawn **globally** — one call on the same mutation stream
        an unsharded fit would use — then routed to the owning shard, so a
        point's rank is independent of ``n_shards`` and ``placement``.
        """
        dataset = list(dataset)
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot build LSH tables over an empty dataset")
        if ranks is not None and not self._use_ranks:
            raise InvalidParameterError(
                "tables were configured with use_ranks=False; cannot fit with explicit ranks"
            )
        if ranks is not None:
            ranks = np.asarray(ranks, dtype=np.int64)
            if ranks.shape != (n,):
                raise InvalidParameterError(f"ranks must have shape ({n},), got {ranks.shape}")
        elif self._use_ranks:
            ranks = self._draw_ranks(n)

        # Reset the global slot state (mirrors the unsharded fit).
        self._points = dataset
        self._alive = np.ones(n, dtype=bool)
        self._num_live = n
        self._pending = set()
        self._n = n
        if ranks is not None:
            self._ranks_buf = np.array(ranks, dtype=np.int64)
            self._ranks = self._ranks_buf[:n]
        else:
            self._ranks_buf = np.empty(0, dtype=np.int64)
            self._ranks = None

        # Reset placement and shard state (refits rebuild everything).
        self._shard_of = []
        self._local_of = []
        self._globals_list = [[] for _ in range(self.n_shards)]
        self._globals_np = [None] * self.n_shards
        self._shard_fitted = [False] * self.n_shards
        per_shard = self._record_placement(self._place(dataset, 0), 0)

        def _fit_shard(shard_index: int) -> None:
            offsets = per_shard[shard_index]
            if not offsets:
                return
            subset = [dataset[offset] for offset in offsets]
            shard_ranks = None if ranks is None else ranks[offsets]
            self.shards[shard_index].fit(subset, ranks=shard_ranks)
            self.shards[shard_index].discard_delta()
            self._shard_fitted[shard_index] = True

        if self.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self.n_shards) as pool:
                list(pool.map(_fit_shard, range(self.n_shards)))
        else:
            _fit_shard(0)

        self._tables = [_MergedTableView(self, t) for t in range(self.l)]
        self._fitted = True
        self._delta = MutationDelta.empty(self.l, start_epoch=self.mutation_epoch)
        self._unresolved_deletes = []
        self._unresolved_inserts = []
        self._unresolved_insert_points = []
        self._store = None
        return self

    def _restore_views(self) -> None:
        """(Re)create the merged table views (snapshot-restore entry point)."""
        self._tables = [_MergedTableView(self, t) for t in range(self.l)]

    # ------------------------------------------------------------------
    # Mutation delta plumbing
    # ------------------------------------------------------------------
    def _resolve_delta(self) -> None:
        # Insert batches were hashed by their owning shards only; the global
        # record hashes them here, against the shared functions, the first
        # time a consumer actually reads the delta.
        if self._unresolved_insert_points and not self._delta.overflowed:
            for start, points in self._unresolved_insert_points:
                self._unresolved_inserts.append((start, self.query_keys_many(points)))
        self._unresolved_insert_points.clear()
        super()._resolve_delta()

    def discard_delta(self) -> None:
        self._unresolved_insert_points.clear()
        super().discard_delta()

    def _maybe_overflow_delta(self) -> None:
        super()._maybe_overflow_delta()
        if self._delta.overflowed:
            self._unresolved_insert_points.clear()

    def _absorb_shard_sweeps(self, shard_index: int) -> None:
        """Fold a shard's compaction record into the global delta.

        Shards accumulate their own :class:`MutationDelta`, but the single
        consumer contract lives at the global level: per-item members are
        recorded globally (with global indices), so only the swept bucket
        keys — which need no translation — are kept; the rest of the shard
        record is discarded before it can grow or pin memory.
        """
        shard = self.shards[shard_index]
        delta = shard._delta
        for table_index in range(self.l):
            swept = delta.compacted_keys[table_index]
            if swept:
                self._delta.compacted_keys[table_index] |= swept
        shard.discard_delta()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_many(self, points: Dataset, ranks=None) -> List[int]:
        """Bulk insert, routing each point to its recorded shard.

        Ranks come from the same global stream (and in the same order) an
        unsharded insert would draw them from; each owning shard hashes and
        splices only its own sub-batch.
        """
        self._check_fitted()
        points = list(points)
        count = len(points)
        if count == 0:
            return []
        new_ranks = self._checked_insert_ranks(count, ranks)

        start = self._n
        per_shard = self._record_placement(self._place(points, start), start)
        for shard_index, offsets in enumerate(per_shard):
            if not offsets:
                continue
            shard = self.shards[shard_index]
            subset = [points[offset] for offset in offsets]
            shard_ranks = None if new_ranks is None else new_ranks[offsets]
            was_fit = not self._shard_fitted[shard_index]
            if self._shard_fitted[shard_index]:
                shard.insert_many(subset, ranks=shard_ranks)
            else:
                shard.fit(subset, ranks=shard_ranks)
                self._shard_fitted[shard_index] = True
            self._absorb_shard_sweeps(shard_index)
            self._notify_shard_op(shard_index, "insert", (subset, shard_ranks, was_fit))

        self._points.extend(points)
        if self._store not in (None, False) and not points_share_store(
            self._points, self._store
        ):
            try:
                self._store.append(points)
            except Exception:
                self._store = False
        self._grow_slots(new_ranks, count)
        indices = list(range(start, start + count))
        self._delta.inserted.extend(indices)
        self._unresolved_insert_points.append((start, points))
        self.mutation_epoch += 1
        self._maybe_overflow_delta()
        return indices

    def delete(self, index: int) -> None:
        """Tombstone one point in its owning shard (global semantics).

        Same contract as :meth:`DynamicLSHTables.delete
        <repro.engine.dynamic.DynamicLSHTables.delete>`: raises
        :class:`~repro.exceptions.SlotOutOfRangeError` /
        :class:`~repro.exceptions.AlreadyDeletedError` before touching any
        state, records the mutation once in the global delta, and triggers a
        global compaction sweep when the pending-tombstone fraction crosses
        :attr:`max_tombstone_fraction` (shards additionally self-compact
        under their own local tombstone pressure).
        """
        self._check_fitted()
        if not 0 <= index < self._n:
            raise SlotOutOfRangeError(f"index {index} out of range [0, {self._n})")
        if not self._alive[index]:
            raise AlreadyDeletedError(f"point {index} was already deleted")
        shard_index = self._shard_of[index]
        # Capture the point object before shard-level compaction can release
        # its local copy; the global record hashes it lazily on delta reads.
        self._unresolved_deletes.append((index, self._points[index]))
        self.shards[shard_index].delete(self._local_of[index])
        self._absorb_shard_sweeps(shard_index)
        self._notify_shard_op(shard_index, "delete", (self._local_of[index],))
        self._delta.deleted.append(index)
        self.mutation_epoch += 1
        self._maybe_overflow_delta()
        self._alive[index] = False
        self._num_live -= 1
        self._pending.add(index)
        if len(self._pending) > self.max_tombstone_fraction * max(1, self._num_live):
            self.compact()

    def compact(self) -> None:
        """Sweep every shard's buckets and release the global slots."""
        self._check_fitted()
        if not self._pending:
            return
        for shard_index in self._fitted_shards():
            self.shards[shard_index].compact()
            self._absorb_shard_sweeps(shard_index)
            self._notify_shard_op(shard_index, "compact", ())
        for index in self._pending:
            self._points[index] = None
            if self._store not in (None, False):
                self._store.release(index)
        self._pending.clear()
        self.mutation_epoch += 1
        self.rebuilds_triggered += 1

    # ------------------------------------------------------------------
    # Batched candidate gathering
    # ------------------------------------------------------------------
    def prime_merged_buckets(
        self,
        keys_per_query: Sequence[List[Hashable]],
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> int:
        """Materialize every merged bucket a query batch will touch.

        Deduplicates the batch's ``(table, bucket key)`` pairs, drops the
        ones already cached, and merges the rest — optionally fanned out
        over *executor* (each worker gathers its keys from all shards and
        merges them; the pairs are disjoint, so the work and the returned
        count are deterministic regardless of scheduling).  Subsequent
        sampler lookups during the batch are cache hits.  Returns the number
        of cross-shard merges performed.
        """
        self._check_fitted()
        needed: List[Set[Hashable]] = [set() for _ in range(self.l)]
        for keys in keys_per_query:
            for table_index, key in enumerate(keys):
                needed[table_index].add(key)
        jobs: List[Tuple[int, Hashable]] = []
        for table_index, view in enumerate(self._tables):
            view._refresh_epoch()
            cache = view._cache
            jobs.extend(
                (table_index, key) for key in needed[table_index] if key not in cache
            )
        if not jobs:
            return 0
        before = self.merged_buckets

        def _materialize(chunk: List[Tuple[int, Hashable]]) -> None:
            tables = self._tables
            for table_index, key in chunk:
                tables[table_index].get(key)

        if executor is None or len(jobs) < 8:
            _materialize(jobs)
        else:
            workers = max(1, getattr(executor, "_max_workers", 1))
            chunks = [jobs[i::workers] for i in range(workers)]
            list(executor.map(_materialize, [chunk for chunk in chunks if chunk]))
        return self.merged_buckets - before

    def colliding_prefix_view(
        self,
        query: Point,
        limit: int,
        keys: Optional[List[Hashable]] = None,
        with_tables: bool = False,
    ) -> Tuple[PrefixView, bool]:
        """A rank-prefix of :meth:`colliding_view`, gathered per shard.

        Each shard contributes at most *limit* colliding references — its
        bottom-``limit`` by rank, produced in O(tables × limit) by
        :func:`~repro.engine.gather.bounded_shard_prefix` (ranked buckets
        are stored sorted ascending by rank, so each bucket's bottom-*limit*
        is an O(1) slice and the final ``argpartition`` runs over the small
        pre-cut union).  Because ranks are i.i.d. over the shared ``2^62``
        domain, every global reference ranked strictly below the lowest
        truncation boundary is guaranteed present, so the merge
        (:func:`~repro.engine.gather.merge_prefix_parts`) cut at that
        boundary is a true rank prefix of the full view.  Returns ``(view,
        complete)`` where ``complete`` means no shard was truncated — the
        view *is* the full colliding view.  With *with_tables* the view
        additionally carries per-reference probing-table ids and full
        per-table bucket sizes, for samplers that replay a bucket-by-bucket
        scan rather than a rank-ordered one.
        """
        self._check_fitted()
        if self._ranks is None:
            raise InvalidParameterError("tables were built without ranks; no rank-sorted view")
        if limit < 1:
            raise InvalidParameterError(f"limit must be >= 1, got {limit}")
        if keys is None:
            keys = self.query_keys(query)
        keys = list(keys)
        parts: List[Tuple[int, tuple]] = []
        for shard_index in self._fitted_shards():
            part = bounded_shard_prefix(
                self.shards[shard_index], keys, limit, with_tables=with_tables
            )
            if part is not None:
                parts.append((shard_index, part))
        return merge_prefix_parts(
            parts, self._shard_globals, num_tables=self.l if with_tables else None
        )


class ShardedEngine(BatchQueryEngine):
    """Batched query execution over a sampler bound to :class:`ShardedLSHTables`.

    Extends :class:`~repro.engine.batch.BatchQueryEngine` with a thread-based
    worker pool that (a) materializes the batch's merged cross-shard buckets
    concurrently, and (b) for query-deterministic samplers answers the
    distinct queries themselves in parallel — numpy's batched hashing,
    sorting and distance kernels release the GIL, so shards genuinely
    overlap on multicore hosts.  Samplers that draw query-time randomness
    are answered serially in batch order, keeping their RNG stream — and
    therefore their outputs — byte-identical to unsharded serving.

    For samplers declaring
    :attr:`~repro.core.base.LSHNeighborSampler.supports_rank_prefix_scan`,
    prefix-eligible requests — single draws, and multi-draw requests of
    samplers implementing :meth:`~repro.core.base.LSHNeighborSampler.
    sample_k_from_prefix` — are served from the bounded rank-prefix gather
    of :mod:`repro.engine.gather` (via
    :meth:`ShardedLSHTables.colliding_prefix_view`): each batch gathers at
    the :class:`~repro.engine.gather.PrefixBudgetController`'s tuned global
    budget, queries whose prefix fails to certify escalate (×2) in shared
    widened rounds (RNG-free samplers) or per query, and the controller
    retunes from the batch's certification profile.  Any certifying true
    rank prefix yields the same bytes and the same per-query counters as
    the full view, so results stay byte-identical to unsharded serving at a
    fraction of the full merge cost.  The process executor
    (:class:`~repro.engine.procpool.ProcessShardedEngine`) runs this exact
    loop, overriding only how prefixes are gathered and buckets primed.
    """

    #: Floor (and deterministic start) of the self-tuning global prefix
    #: budget; overridable per engine via ``prefix_budget`` /
    #: ``EngineSpec(prefix_budget=...)``.
    _PREFIX_LIMIT = 128
    #: Ceiling of the self-tuning budget (``prefix_budget_cap``).
    _PREFIX_HINT_MAX = 4096
    #: Whether non-prefix deterministic queries are answered in parallel
    #: chunks on the thread pool.  The process executor answers them on the
    #: parent serially — merged buckets are already primed, and the serial
    #: loop beats thread-chunk scheduling overhead there.
    _parallel_fallback = True

    def __init__(
        self,
        sampler,
        batch_hashing: bool = True,
        coalesce_duplicates: bool = True,
        sampler_name: Optional[str] = None,
        spec=None,
        max_workers: Optional[int] = None,
        prefix_budget: Optional[int] = None,
        prefix_budget_cap: Optional[int] = None,
    ):
        super().__init__(
            sampler,
            batch_hashing=batch_hashing,
            coalesce_duplicates=coalesce_duplicates,
            sampler_name=sampler_name,
            spec=spec,
        )
        if not isinstance(self.tables, ShardedLSHTables):
            raise InvalidParameterError(
                "ShardedEngine requires a sampler attached to ShardedLSHTables; "
                "use BatchQueryEngine for unsharded serving"
            )
        if max_workers is None:
            max_workers = max(self.tables.n_shards, min(16, os.cpu_count() or 1))
        self._max_workers = int(max_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-shard"
        )
        # The self-tuning gather budget (shared controller semantics across
        # executors; see repro.engine.gather).  Deterministic: it starts at
        # the floor and every move is a function of the batch stream alone.
        self._budget = PrefixBudgetController(
            floor=self._PREFIX_LIMIT if prefix_budget is None else int(prefix_budget),
            cap=(
                self._PREFIX_HINT_MAX
                if prefix_budget_cap is None
                else int(prefix_budget_cap)
            ),
        )
        # Per-batch prefix decision, set by _execute before any answering.
        self._prefix_active = False
        # Counter increments made from answer workers are guarded by the
        # base engine's _stats_lock: every query contributes a fixed amount,
        # so the totals stay deterministic whatever the thread scheduling.
        # close() must be idempotent *under concurrency*: a hot snapshot
        # swap's drain path and the facade's engine teardown can both reach
        # it at once (see server/swap.py), so the closed transition is a
        # check-and-set under a lock and teardown runs exactly once.
        self._close_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sampler,
        dataset: Dataset,
        n_shards: int = 2,
        placement: str = "round_robin",
        max_tombstone_fraction: float = 0.25,
        seed: SeedLike = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedEngine":
        """Build sharded tables for an unfitted LSH sampler and wrap them.

        The sharded counterpart of :meth:`BatchQueryEngine.build
        <repro.engine.batch.BatchQueryEngine.build>`: parameters, hash
        functions and ranks resolve exactly as the unsharded build would, so
        the resulting engine's responses are byte-identical to it.
        """
        tables, bound_dataset = build_tables(
            sampler,
            dataset,
            dynamic=True,
            max_tombstone_fraction=max_tombstone_fraction,
            seed=seed,
            n_shards=n_shards,
            placement=placement,
        )
        sampler.attach(tables, bound_dataset)
        return cls(sampler, max_workers=max_workers)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of index partitions behind this engine."""
        return self.tables.n_shards

    def stats_dict(self) -> Dict:
        """Sharded serving state: the base payload plus the shard topology."""
        with self._stats_lock:
            # Refreshed mirror, like the store cache counters: the live
            # tuned opening budget of the prefix gather, so operators can
            # watch the controller settle and probe down.
            self.stats.prefix_budget = self._budget.limit
        payload = super().stats_dict()
        tables: ShardedLSHTables = self.tables
        payload["n_shards"] = tables.n_shards
        payload["placement"] = tables.placement
        payload["shard_sizes"] = [int(size) for size in tables.shard_sizes()]
        return payload

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the engine stops serving).

        Worker threads would otherwise linger until the engine is garbage
        collected; long-lived processes that rebuild their serving setup
        (:meth:`FairNN.serve <repro.api.FairNN.serve>` closes superseded
        engines through this) should release them deterministically.  Safe
        under concurrent callers — a snapshot swap's generation drain and
        the facade teardown may race here — exactly one caller runs the
        shutdown sequence, the rest return immediately.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._shutdown()

    def _shutdown(self) -> None:
        """Release serving resources (runs at most once, via :meth:`close`)."""
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _use_prefix_scan(self) -> bool:
        tables = self.tables
        return (
            getattr(self.sampler, "supports_rank_prefix_scan", False)
            and tables is not None
            and tables.ranks is not None
        )

    def _prefix_eligible(self, request: QueryRequest) -> bool:
        """Whether *request* can be served from the rank-prefix gather.

        Single draws always are (the ``sample_detailed_from_prefix``
        contract); multi-draw requests only when the sampler actually
        overrides :meth:`~repro.core.base.LSHNeighborSampler.
        sample_k_from_prefix` — the base refusal would force a pointless
        escalate-to-complete loop per query otherwise.
        """
        if request.k == 1:
            return True
        base = LSHNeighborSampler.sample_k_from_prefix
        return getattr(type(self.sampler), "sample_k_from_prefix", base) is not base

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _prime(self, to_prime: List[List[Hashable]]) -> None:
        """Materialize the merged buckets *to_prime* will touch (hook)."""
        self.tables.prime_merged_buckets(to_prime, executor=self._pool)

    def _after_batch(self) -> None:
        """Post-batch accounting hook (the process executor syncs IPC stats)."""

    def _execute(
        self,
        distinct: Sequence[QueryRequest],
        keys_per_query: Optional[Sequence[List[Hashable]]],
    ) -> List[QueryResponse]:
        tables: ShardedLSHTables = self.tables
        if keys_per_query is None:
            keys_per_query = [tables.query_keys(request.query) for request in distinct]
        # Build the shared columnar store up front so answer workers never
        # race its lazy construction.
        tables.point_store
        # One prefix decision per batch: capability (sampler + rank-built
        # tables) gated by the controller's regime call — on workloads whose
        # certifying depth the controller has seen blow past the cap, whole
        # batches skip straight to merged buckets, with periodic probes.
        self._prefix_active = self._use_prefix_scan() and self._budget.attempt_prefix()
        if self._prefix_active:
            # Prefix-eligible requests are served from the bounded per-shard
            # prefix gather and never touch merged buckets; only the rest
            # (e.g. multi-draw requests of samplers without a k-aware prefix
            # form) need them materialized.
            to_prime = [
                keys
                for request, keys in zip(distinct, keys_per_query)
                if not self._prefix_eligible(request)
            ]
        else:
            to_prime = list(keys_per_query)
        merges_before = tables.merged_buckets
        try:
            if to_prime:
                # Materialize those merged buckets across shards before
                # answering; sampler lookups below then hit the cache.
                self._prime(to_prime)
            return self._answer_all(distinct, keys_per_query)
        finally:
            # Count every merge the batch caused — the primed ones plus any
            # answer-phase stragglers (e.g. the fallback path of a prefix
            # sampler, or re-merges after cache eviction under extreme key
            # working sets).
            with self._stats_lock:
                self.stats.shard_merges += tables.merged_buckets - merges_before
            self._after_batch()

    def _gather_prefixes(
        self,
        positions: Sequence[int],
        keys_per_query,
        limit: int,
    ) -> Dict[int, Tuple[PrefixView, bool]]:
        """Gather certified rank prefixes for *positions* at global budget *limit*.

        The budget is split evenly across the fitted shards
        (:func:`~repro.engine.gather.split_budget`), so the merged view
        depth — and the gather work — tracks the global budget rather than
        ``n_shards`` times it.  Per-position gathers are independent numpy
        work (the kernels release the GIL), so large batches fan out over
        the worker pool.  *keys_per_query* is anything indexable by
        position (the batch list, or a per-escalation dict).
        """
        tables: ShardedLSHTables = self.tables
        fitted = tables._fitted_shards()
        with_tables = getattr(self.sampler, "prefix_scan_needs_tables", False)
        if not fitted:
            empty = PrefixView.empty(tables.l if with_tables else None)
            return {position: (empty, True) for position in positions}
        per_shard = split_budget(limit, len(fitted))

        def _gather(position: int) -> Tuple[PrefixView, bool]:
            return tables.colliding_prefix_view(
                None,
                per_shard,
                keys=keys_per_query[position],
                with_tables=with_tables,
            )

        if len(positions) > 8 and self._max_workers > 1:
            return dict(zip(positions, self._pool.map(_gather, positions)))
        return {position: _gather(position) for position in positions}

    def _answer_all(
        self,
        distinct: Sequence[QueryRequest],
        keys_per_query: Sequence[List[Hashable]],
    ) -> List[QueryResponse]:
        views: Dict[int, Tuple[PrefixView, bool]] = {}
        answered: Dict[int, QueryResponse] = {}
        start_limit = self._budget.limit
        if self._prefix_active:
            positions = [
                position
                for position, request in enumerate(distinct)
                if self._prefix_eligible(request)
            ]
            if positions:
                views = self._gather_prefixes(positions, keys_per_query, start_limit)
                if getattr(self.sampler, "deterministic_queries", False):
                    answered = self._answer_prefixes_batched(
                        positions, distinct, keys_per_query, views, start_limit
                    )
                    views = {}
        fallback = [
            position
            for position in range(len(distinct))
            if position not in answered and position not in views
        ]
        if (
            self._parallel_fallback
            and len(fallback) > 1
            and self._max_workers > 1
            and getattr(self.sampler, "deterministic_queries", False)
        ):
            # No query-time randomness: whole non-prefix queries are
            # answered in parallel.  Each chunk is independent, so the
            # answers (and every per-query counter) are identical to a
            # serial pass.
            buffer: List[Optional[QueryResponse]] = [None] * len(distinct)

            def _answer_chunk(chunk: List[int]) -> None:
                for position in chunk:
                    buffer[position] = BatchQueryEngine._answer(
                        self, position, distinct[position]
                    )

            chunk_size = max(
                1,
                (len(fallback) + 2 * self._max_workers - 1) // (2 * self._max_workers),
            )
            chunks = [
                fallback[i : i + chunk_size]
                for i in range(0, len(fallback), chunk_size)
            ]
            list(self._pool.map(_answer_chunk, chunks))
            for position in fallback:
                answered[position] = buffer[position]
        # Everything left answers serially, in batch order: the gathers
        # above are RNG-free and the batched/parallel paths only ran for
        # samplers without query-time randomness, so this is the first point
        # any sampler RNG advances — exactly as unsharded serving orders it.
        return [
            answered[position]
            if position in answered
            else self._answer_prefix(
                position, request, keys_per_query[position], views[position], start_limit
            )
            if position in views
            else BatchQueryEngine._answer(self, position, request)
            for position, request in enumerate(distinct)
        ]

    def _certify_prefix(
        self,
        position: int,
        request: QueryRequest,
        view: PrefixView,
        complete: bool,
    ) -> Optional[QueryResponse]:
        """One certification attempt of *request* against a gathered prefix.

        Dispatches on ``k``: single draws through
        ``sample_detailed_from_prefix`` (full per-query work counters in the
        response, exactly like the unsharded detailed path), multi-draw
        requests through ``sample_k_from_prefix`` (indices-only response,
        exactly like the unsharded ``sample_k`` path).  Returns ``None``
        when the sampler refuses to certify from this prefix.
        """
        if request.k == 1:
            result = self.sampler.sample_detailed_from_prefix(
                request.query, view, complete, exclude_index=request.exclude_index
            )
            if result is None:
                return None
            return QueryResponse(
                request_index=position,
                indices=[] if result.index is None else [int(result.index)],
                value=result.value,
                stats=result.stats,
                sampler=self.sampler_name,
            )
        indices = self.sampler.sample_k_from_prefix(
            request.query, view, complete, request.k, replacement=request.replacement
        )
        if indices is None:
            return None
        return QueryResponse(
            request_index=position,
            indices=[int(i) for i in indices],
            sampler=self.sampler_name,
        )

    def _answer_prefixes_batched(
        self,
        positions: Sequence[int],
        distinct: Sequence[QueryRequest],
        keys_per_query: Sequence[List[Hashable]],
        views: Dict[int, Tuple[PrefixView, bool]],
        start_limit: int,
    ) -> Dict[int, QueryResponse]:
        """Escalate whole *rounds* instead of one gather per query.

        Only valid for samplers without query-time randomness: their answers
        are pure functions of the (provably exact) prefix view, so queries
        can be certified out of batch order and every query that refuses to
        certify at the current limit joins one shared widened gather round
        (×2 budget).  A position whose *complete* view still would not
        certify is left out of the result and takes the merged-view fallback
        in batch order.  The batch's per-round certification profile feeds
        the shared budget controller.
        """
        answered: Dict[int, QueryResponse] = {}
        pending = list(positions)
        limit = start_limit
        certified_per_round: List[Tuple[int, int]] = []
        scans = 1
        while pending:
            failed: List[int] = []
            certified = 0
            for position in pending:
                view, complete = views[position]
                response = self._certify_prefix(
                    position, distinct[position], view, complete
                )
                if response is not None:
                    certified += 1
                    with self._stats_lock:
                        self.stats.prefix_scans += 1
                        self.stats.prefix_escalations += scans - 1
                    answered[position] = response
                elif not complete:
                    failed.append(position)
                # else: complete view refused — merged-view fallback later.
            certified_per_round.append((limit, certified))
            if not failed:
                break
            limit *= 2
            scans += 1
            views.update(self._gather_prefixes(failed, keys_per_query, limit))
            pending = failed
        self._budget.observe_batch(certified_per_round, start_limit)
        return answered

    def _answer_prefix(
        self,
        position: int,
        request: QueryRequest,
        keys: List[Hashable],
        gathered: Tuple[PrefixView, bool],
        start_limit: int,
    ) -> QueryResponse:
        """Serial prefix loop for one query (samplers with query-time RNG)."""
        view, complete = gathered
        limit = start_limit
        scans = 1
        while True:
            response = self._certify_prefix(position, request, view, complete)
            if response is not None:
                with self._stats_lock:
                    self.stats.prefix_scans += 1
                    self.stats.prefix_escalations += scans - 1
                if scans > 1:
                    self._budget.observe_escalation(limit)
                return response
            if complete:
                # Even the full view would not certify (a prefix-capable
                # sampler keeping the base refusal): take the merged-view
                # fallback rather than escalating forever.
                break
            limit *= 2
            scans += 1
            view, complete = self._gather_prefixes(
                [position], {position: keys}, limit
            )[position]
        return BatchQueryEngine._answer(self, position, request)

"""Persist a serving engine to a directory and load it back.

Indexes are expensive to build and cheap to serve, so production deployments
build them offline and ship the artifact to servers.  A snapshot directory
holds three files:

``manifest.json``
    Human-readable metadata: format version, class names, the serving name
    and originating declarative spec (format v3 — see :mod:`repro.spec`),
    table shape, liveness counters and the engine's serving statistics.
``arrays.npz``
    The numeric bulk — per-table bucket member/rank arrays (flattened with
    bucket offsets), the global rank array and the liveness mask.
``objects.pkl``
    The Python objects with no natural array form: the drawn hash functions,
    the LSH family, per-table bucket keys, the dataset points, the sampler
    (stripped of its table/dataset references, which are restored from the
    arrays) and — for dynamic tables — the mutation RNG plus any
    not-yet-consumed :class:`~repro.engine.dynamic.MutationDelta`, so the
    restored engine keeps maintaining sampler state incrementally.

``load_engine`` rebuilds bit-identical state: the restored sampler carries
the same query RNG stream and (for Section 4) the same bucket sketches, so
subsequent samples reproduce exactly what the saved engine would have
returned.
"""

from __future__ import annotations

import json
import pathlib
import pickle
from typing import Dict, Hashable, List, Union

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.engine.batch import BatchQueryEngine
from repro.engine.dynamic import DynamicLSHTables, MutationDelta
from repro.engine.requests import EngineStats
from repro.exceptions import InvalidParameterError
from repro.lsh.tables import Bucket, LSHTables
from repro.spec import EngineSpec, SamplerSpec

#: Version 2 added the pending :class:`~repro.engine.dynamic.MutationDelta`
#: to ``objects.pkl`` so a restored engine keeps maintaining derived sampler
#: state incrementally across the save/load boundary.  Version 3 added the
#: engine's serving name (``sampler_name``) and its originating declarative
#: spec (``spec`` / ``spec_kind``) to the manifest, making snapshots
#: self-describing: a loaded artifact knows which
#: :class:`~repro.spec.SamplerSpec`/:class:`~repro.spec.EngineSpec` built it.
FORMAT_VERSION = 3

#: Older formats ``load_engine`` still reads.  Version 1 merely lacks the
#: pending delta (the loader substitutes an empty one); version 2 lacks the
#: spec and serving name (the loader leaves the spec ``None`` and derives the
#: name from the sampler class).
COMPATIBLE_VERSIONS = (1, 2, FORMAT_VERSION)

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_OBJECTS = "objects.pkl"


def save_engine(engine: BatchQueryEngine, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write *engine* to *directory* (created if needed); returns the path."""
    sampler = engine.sampler
    if not isinstance(sampler, LSHNeighborSampler) or sampler.tables is None:
        raise InvalidParameterError(
            "only engines over LSH-table-backed samplers can be snapshotted"
        )
    # Flush pending mutations into the sampler first: the pickled sampler
    # carries derived state (caches, sketches) that must reflect the tables
    # being written, or the loaded clone would serve stale answers forever.
    engine._sync()
    tables = sampler.tables
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    arrays: Dict[str, np.ndarray] = {}
    bucket_keys: List[List[Hashable]] = []
    for table_index, table in enumerate(tables._tables):
        keys = list(table.keys())
        bucket_keys.append(keys)
        buckets = [table[key] for key in keys]
        sizes = np.asarray([len(bucket) for bucket in buckets], dtype=np.int64)
        arrays[f"t{table_index}_offsets"] = np.concatenate([[0], np.cumsum(sizes)])
        arrays[f"t{table_index}_indices"] = (
            np.concatenate([bucket.indices for bucket in buckets])
            if buckets
            else np.empty(0, dtype=np.intp)
        )
        if tables.ranks is not None:
            arrays[f"t{table_index}_ranks"] = (
                np.concatenate([bucket.ranks for bucket in buckets])
                if buckets
                else np.empty(0, dtype=np.int64)
            )
    if tables.ranks is not None:
        arrays["ranks"] = tables.ranks

    dynamic = isinstance(tables, DynamicLSHTables)
    if dynamic:
        arrays["alive"] = tables.alive
        arrays["pending"] = np.asarray(sorted(tables._pending), dtype=np.intp)

    # The sampler travels as a stripped copy: its heavy references (tables,
    # dataset, rank view) and rebuildable caches are dropped and rebuilt on
    # load, while query-time state (RNG streams, Section 4 sketches) rides
    # along for bit-identical post-load behaviour.
    sampler_copy = sampler._stripped_for_snapshot()

    objects = {
        "family": tables.family,
        "functions": tables._functions,
        "bucket_keys": bucket_keys,
        "dataset": list(sampler.dataset),
        "sampler": sampler_copy,
        "mut_rng": tables._mut_rng if dynamic else None,
        # Mutations recorded but not yet consumed by a sampler sync (possible
        # when the tables were mutated directly rather than through the
        # engine).  Persisting the delta means the restored sampler's first
        # notify_update still sees exactly what changed and can stay on the
        # incremental maintenance path.
        "pending_delta": tables.peek_delta() if dynamic else None,
    }

    spec = getattr(engine, "spec", None)
    if spec is not None and not isinstance(spec, (SamplerSpec, EngineSpec)):
        raise InvalidParameterError(
            f"engine.spec must be a SamplerSpec or EngineSpec, got {type(spec).__name__}"
        )

    manifest = {
        "format_version": FORMAT_VERSION,
        "sampler_class": type(sampler).__name__,
        "sampler_name": engine.sampler_name,
        "spec": None if spec is None else spec.to_dict(),
        "spec_kind": None if spec is None else ("engine" if isinstance(spec, EngineSpec) else "sampler"),
        "tables_class": type(tables).__name__,
        "dynamic": dynamic,
        "num_tables": tables.num_tables,
        "num_points": tables.num_points,
        "has_ranks": tables.ranks is not None,
        "num_live": tables.num_live if dynamic else tables.num_points,
        "pending_tombstones": tables.pending_tombstones if dynamic else 0,
        "rebuilds_triggered": tables.rebuilds_triggered if dynamic else 0,
        "max_tombstone_fraction": tables.max_tombstone_fraction if dynamic else None,
        "use_ranks": tables._use_ranks if dynamic else (tables.ranks is not None),
        "batch_hashing": engine.batch_hashing,
        "coalesce_duplicates": engine.coalesce_duplicates,
        "stats": engine.stats.as_dict(),
    }

    np.savez(directory / _ARRAYS, **arrays)
    with open(directory / _OBJECTS, "wb") as handle:
        pickle.dump(objects, handle)
    with open(directory / _MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return directory


def load_engine(directory: Union[str, pathlib.Path]) -> BatchQueryEngine:
    """Reconstruct a :class:`BatchQueryEngine` saved by :func:`save_engine`."""
    directory = pathlib.Path(directory)
    with open(directory / _MANIFEST, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest["format_version"] not in COMPATIBLE_VERSIONS:
        raise InvalidParameterError(
            f"snapshot format {manifest['format_version']} not supported "
            f"(expected one of {COMPATIBLE_VERSIONS})"
        )
    with open(directory / _OBJECTS, "rb") as handle:
        objects = pickle.load(handle)
    num_tables = int(manifest["num_tables"])
    num_points = int(manifest["num_points"])
    has_ranks = bool(manifest["has_ranks"])
    dynamic = bool(manifest["dynamic"])

    if dynamic:
        tables = DynamicLSHTables(
            objects["family"],
            num_tables,
            seed=0,
            use_ranks=bool(manifest["use_ranks"]),
            max_tombstone_fraction=float(manifest["max_tombstone_fraction"]),
            _functions=objects["functions"],
        )
    else:
        tables = LSHTables(objects["family"], num_tables, seed=0, _functions=objects["functions"])
    # All array accesses happen inside the with block (NpzFile materializes
    # plain ndarrays on access), so the file handle is released on exit.
    with np.load(directory / _ARRAYS, allow_pickle=False) as arrays:
        tables._tables = [
            _restore_table(arrays, table_index, objects["bucket_keys"][table_index], has_ranks)
            for table_index in range(num_tables)
        ]
        tables._n = num_points
        tables._ranks = arrays["ranks"] if has_ranks else None
        tables._fitted = True

        if dynamic:
            tables._points = list(objects["dataset"])
            if has_ranks:
                # Re-establish the capacity buffer the rank view grows inside.
                tables._ranks_buf = np.array(tables._ranks, dtype=np.int64)
                tables._ranks = tables._ranks_buf[:num_points]
            tables._alive = arrays["alive"].astype(bool)
            tables._num_live = int(manifest["num_live"])
            tables._pending = set(arrays["pending"].tolist())
            tables.rebuilds_triggered = int(manifest["rebuilds_triggered"])
            tables._mut_rng = objects["mut_rng"]
            restored_delta = objects.get("pending_delta")
            tables._delta = (
                restored_delta if restored_delta is not None else MutationDelta.empty(num_tables)
            )
            # Epochs restart at 0 in the restored tables; re-anchor the delta
            # so the re-anchored sampler (below) sees no epoch gap and can
            # still apply the persisted record incrementally.
            tables._delta.start_epoch = tables.mutation_epoch
            dataset = tables.dataset
        else:
            dataset = list(objects["dataset"])

    sampler = objects["sampler"]
    sampler.tables = tables
    sampler._dataset = dataset
    sampler.ranks = tables.ranks if sampler._use_ranks else None
    # Restored tables restart their mutation epoch; re-anchor the sampler so
    # its next empty drain is not mistaken for a missed (stolen) delta.  Any
    # delta persisted above round-trips and is applied on the next sync.
    sampler._synced_epoch = tables.mutation_epoch

    # Format v3 manifests are self-describing; v2 and older lack the spec and
    # serving name, so the spec stays None and the name is derived from the
    # sampler class.
    spec_data = manifest.get("spec")
    spec = None
    if spec_data is not None:
        spec_cls = EngineSpec if manifest.get("spec_kind") == "engine" else SamplerSpec
        spec = spec_cls.from_dict(spec_data)

    engine = BatchQueryEngine(
        sampler,
        batch_hashing=bool(manifest["batch_hashing"]),
        coalesce_duplicates=bool(manifest["coalesce_duplicates"]),
        sampler_name=manifest.get("sampler_name"),
        spec=spec,
    )
    engine.stats = EngineStats.from_dict(manifest["stats"])
    return engine


def _restore_table(arrays, table_index: int, keys: List[Hashable], has_ranks: bool) -> dict:
    """Rebuild one table's ``key -> Bucket`` dict from the flattened arrays."""
    offsets = arrays[f"t{table_index}_offsets"]
    indices = arrays[f"t{table_index}_indices"].astype(np.intp)
    ranks = arrays[f"t{table_index}_ranks"] if has_ranks else None
    table = {}
    for position, key in enumerate(keys):
        lo, hi = int(offsets[position]), int(offsets[position + 1])
        table[key] = Bucket(
            indices[lo:hi], None if ranks is None else ranks[lo:hi]
        )
    return table

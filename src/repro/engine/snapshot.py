"""Persist a serving engine to a directory and load it back.

Indexes are expensive to build and cheap to serve, so production deployments
build them offline and ship the artifact to servers.  A snapshot directory
holds three files:

``manifest.json``
    Human-readable metadata: format version, class names, the serving name
    and originating declarative spec (format v3 — see :mod:`repro.spec`),
    table shape, liveness counters and the engine's serving statistics.
    Sharded engines (format v4) additionally record the shard topology —
    ``n_shards``, the placement policy and one per-shard manifest entry.
``arrays.npz``
    The numeric bulk — per-table bucket member/rank arrays (flattened with
    bucket offsets), the global rank array and the liveness mask.  Sharded
    snapshots store each shard's bucket arrays under an ``s<j>_`` prefix
    plus the recorded per-point placement (``shard_of`` / ``local_of``).
``objects.pkl``
    The Python objects with no natural array form: the drawn hash functions,
    the LSH family, per-table bucket keys, the dataset points, the sampler
    (stripped of its table/dataset references, which are restored from the
    arrays) and — for dynamic tables — the mutation RNG plus any
    not-yet-consumed :class:`~repro.engine.dynamic.MutationDelta`, so the
    restored engine keeps maintaining sampler state incrementally.

``load_engine`` rebuilds bit-identical state: the restored sampler carries
the same query RNG stream and (for Section 4) the same bucket sketches, so
subsequent samples reproduce exactly what the saved engine would have
returned.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import pickle
import zipfile
from typing import Dict, Hashable, List, Optional, Union

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.engine.batch import BatchQueryEngine
from repro.engine.dynamic import DynamicLSHTables, MutationDelta
from repro.engine.requests import EngineStats
from repro.engine.sharded import ShardedEngine, ShardedLSHTables
from repro.exceptions import InvalidParameterError, ReproError, SnapshotCorruptError
from repro.lsh.tables import Bucket, LSHTables
from repro.spec import EngineSpec, SamplerSpec
from repro.store import (
    DenseStore,
    MemmapDenseStore,
    MemmapSetStore,
    SetStore,
    StoreBackedPoints,
    StoreSpec,
)

#: Version 2 added the pending :class:`~repro.engine.dynamic.MutationDelta`
#: to ``objects.pkl`` so a restored engine keeps maintaining derived sampler
#: state incrementally across the save/load boundary.  Version 3 added the
#: engine's serving name (``sampler_name``) and its originating declarative
#: spec (``spec`` / ``spec_kind``) to the manifest, making snapshots
#: self-describing.  Version 4 is the *sharded* layout: per-shard bucket
#: arrays and manifests plus the recorded point placement.  Unsharded
#: engines keep writing version 3, so pre-existing loaders stay compatible.
FORMAT_VERSION = 3

#: Format written for engines over :class:`~repro.engine.sharded.ShardedLSHTables`.
SHARDED_FORMAT_VERSION = 4

#: Version 5 is the *out-of-core* layout: every array is written as its own
#: raw uncompressed ``.npy`` file under ``arrays/`` (instead of one zipped
#: ``arrays.npz``), and a columnar dataset is persisted as arrays too —
#: ``dataset__dense`` or ``dataset__indptr``/``dataset__items`` plus a
#: ``dataset__released`` mask — with ``objects.pkl`` carrying ``None`` for
#: the dataset.  Raw ``.npy`` payloads can be ``np.memmap``-ed directly, so
#: a v5 snapshot is servable without reading the corpus
#: (``load_engine(..., store="memmap")``) or with the corpus on a different
#: machine entirely (``store="remote"``).  Sharding is orthogonal in v5: the
#: manifest records it as the ``sharded`` flag rather than a distinct
#: version.
NPY_FORMAT_VERSION = 5

#: Formats ``load_engine`` reads.  Version 1 merely lacks the pending delta
#: (the loader substitutes an empty one); version 2 lacks the spec and
#: serving name (the loader leaves the spec ``None`` and derives the name
#: from the sampler class); version 4 adds shards; version 5 stores raw
#: ``.npy`` arrays and enables the out-of-core storage backends.
COMPATIBLE_VERSIONS = (1, 2, FORMAT_VERSION, SHARDED_FORMAT_VERSION, NPY_FORMAT_VERSION)

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_OBJECTS = "objects.pkl"
_ARRAYS_DIR = "arrays"

#: Dataset persistence layouts a v5 manifest can declare.
_DATASET_LAYOUTS = ("dense", "sets", "pickled")


def _encode_keys(keys, name: str, arrays: Dict[str, np.ndarray]):
    """Store int / fixed-width int-tuple key lists as an int64 array.

    Unpickling hundreds of thousands of small tuples dominates the cold
    path of large snapshots; the common LSH key shapes (a concatenated
    hash is a K-tuple of ints, a single hash an int) round-trip through
    one rectangular array instead.  Returns a sentinel dict referencing
    the array, or the original list when the keys don't fit the shape.
    """
    if keys and all(type(k) is int for k in keys):
        arrays[name] = np.asarray(keys, dtype=np.int64)
        return {"__bucket_keys__": "ints", "array": name}
    if (
        keys
        and all(type(k) is tuple for k in keys)
        and len({len(k) for k in keys}) == 1
        and all(type(v) is int for v in keys[0])
    ):
        try:
            arrays[name] = np.asarray(keys, dtype=np.int64)
        except (ValueError, OverflowError, TypeError):
            return keys
        return {"__bucket_keys__": "int_tuples", "array": name}
    return keys


def _decode_keys(entry, arrays) -> List[Hashable]:
    """Inverse of :func:`_encode_keys` (lists pass through untouched)."""
    if not isinstance(entry, dict) or "__bucket_keys__" not in entry:
        return entry
    packed = np.asarray(arrays[entry["array"]])
    if entry["__bucket_keys__"] == "ints":
        return packed.tolist()
    return [tuple(row) for row in packed.tolist()]


def _pack_tables(
    tables, prefix: str, arrays: Dict[str, np.ndarray], npy: bool = False
) -> List[List[Hashable]]:
    """Flatten one table set's buckets into *arrays* under *prefix*.

    Returns the per-table bucket key lists (pickled separately — keys are
    ints or tuples, not rectangular arrays).  Under the v5 layout (*npy*),
    int-shaped key lists are diverted into ``{prefix}t{i}_keys`` arrays and
    replaced by sentinels (see :func:`_encode_keys`).
    """
    bucket_keys: List[List[Hashable]] = []
    has_ranks = tables.ranks is not None
    for table_index, table in enumerate(tables._tables):
        keys = list(table.keys())
        bucket_keys.append(
            _encode_keys(keys, f"{prefix}t{table_index}_keys", arrays) if npy else keys
        )
        buckets = [table[key] for key in keys]
        sizes = np.asarray([len(bucket) for bucket in buckets], dtype=np.int64)
        arrays[f"{prefix}t{table_index}_offsets"] = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
        )
        arrays[f"{prefix}t{table_index}_indices"] = (
            np.concatenate([bucket.indices for bucket in buckets])
            if buckets
            else np.empty(0, dtype=np.intp)
        )
        if has_ranks:
            arrays[f"{prefix}t{table_index}_ranks"] = (
                np.concatenate([bucket.ranks for bucket in buckets])
                if buckets
                else np.empty(0, dtype=np.int64)
            )
    return bucket_keys


def save_engine(
    engine: BatchQueryEngine,
    directory: Union[str, pathlib.Path],
    format_version: Optional[int] = None,
) -> pathlib.Path:
    """Write *engine* to *directory* (created if needed); returns the path.

    Engines over :class:`~repro.engine.sharded.ShardedLSHTables` are written
    in the sharded format (v4): every shard's buckets are persisted
    separately together with the recorded placement, so the restored engine
    resumes with the same partitioning — and the same byte-identical
    responses — as the saved one.

    *format_version* selects the on-disk layout: ``None`` (default) writes
    the legacy zipped format (v3, or v4 when sharded) — unless the engine is
    already serving from an out-of-core store, in which case checkpoints
    auto-upgrade to v5 so they stay servable out-of-core.  Pass ``5``
    explicitly to write the raw-``.npy`` layout that ``store="memmap"`` /
    ``store="remote"`` loading requires.
    """
    sampler = engine.sampler
    if not isinstance(sampler, LSHNeighborSampler) or sampler.tables is None:
        raise InvalidParameterError(
            "only engines over LSH-table-backed samplers can be snapshotted"
        )
    # Flush pending mutations into the sampler first: the pickled sampler
    # carries derived state (caches, sketches) that must reflect the tables
    # being written, or the loaded clone would serve stale answers forever.
    engine._sync()
    tables = sampler.tables
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    sharded = isinstance(tables, ShardedLSHTables)
    dynamic = isinstance(tables, DynamicLSHTables)

    legacy_version = SHARDED_FORMAT_VERSION if sharded else FORMAT_VERSION
    if format_version is None:
        # Engines already serving out-of-core auto-upgrade their checkpoints
        # to v5: a crash-recovery load must be able to come back on the same
        # storage tier, which the zipped formats cannot provide.
        active = getattr(tables, "_store", None)
        backend = getattr(active, "backend", "inram") if active not in (None, False) else "inram"
        format_version = NPY_FORMAT_VERSION if backend != "inram" else legacy_version
    if format_version not in (legacy_version, NPY_FORMAT_VERSION):
        raise InvalidParameterError(
            f"format_version must be {legacy_version} or {NPY_FORMAT_VERSION} for "
            f"this engine, got {format_version!r}"
        )
    npy = format_version == NPY_FORMAT_VERSION

    arrays: Dict[str, np.ndarray] = {}
    shard_manifests = None
    if sharded:
        bucket_keys: List[Union[List[List[Hashable]], None]] = []
        shard_manifests = []
        for shard_index, shard in enumerate(tables.shards):
            if tables._shard_fitted[shard_index]:
                bucket_keys.append(_pack_tables(shard, f"s{shard_index}_", arrays, npy=npy))
                arrays[f"s{shard_index}_pending"] = np.asarray(
                    sorted(shard._pending), dtype=np.intp
                )
            else:
                bucket_keys.append(None)
            shard_manifests.append(
                {
                    "fitted": tables._shard_fitted[shard_index],
                    "num_points": len(tables._globals_list[shard_index]),
                    "rebuilds_triggered": shard.rebuilds_triggered,
                }
            )
        arrays["shard_of"] = np.asarray(tables._shard_of, dtype=np.int64)
        arrays["local_of"] = np.asarray(tables._local_of, dtype=np.int64)
    else:
        bucket_keys = _pack_tables(tables, "", arrays, npy=npy)
    if tables.ranks is not None:
        arrays["ranks"] = tables.ranks
    if dynamic:
        arrays["alive"] = tables.alive
        arrays["pending"] = np.asarray(sorted(tables._pending), dtype=np.intp)

    # The sampler travels as a stripped copy: its heavy references (tables,
    # dataset, rank view) and rebuildable caches are dropped and rebuilt on
    # load, while query-time state (RNG streams, Section 4 sketches) rides
    # along for bit-identical post-load behaviour.
    sampler_copy = sampler._stripped_for_snapshot()

    # v5 persists a columnar dataset as raw arrays ("dense"/"sets" layout)
    # and pickles nothing for it — the dominant load cost of the zipped
    # formats, and what makes the snapshot mappable/fetchable.  Datasets with
    # no columnar form fall back to the "pickled" layout inside a v5 shell.
    dataset_layout = "pickled"
    if npy:
        dataset_layout = _pack_dataset(sampler, tables, arrays)

    objects = {
        "family": tables.family,
        "functions": tables._functions,
        "bucket_keys": bucket_keys,
        "dataset": None if dataset_layout != "pickled" else list(sampler.dataset),
        "sampler": sampler_copy,
        "mut_rng": tables._mut_rng if dynamic else None,
        # Mutations recorded but not yet consumed by a sampler sync (possible
        # when the tables were mutated directly rather than through the
        # engine).  Persisting the delta means the restored sampler's first
        # notify_update still sees exactly what changed and can stay on the
        # incremental maintenance path.
        "pending_delta": tables.peek_delta() if dynamic else None,
    }

    spec = getattr(engine, "spec", None)
    if spec is not None and not isinstance(spec, (SamplerSpec, EngineSpec)):
        raise InvalidParameterError(
            f"engine.spec must be a SamplerSpec or EngineSpec, got {type(spec).__name__}"
        )

    manifest = {
        "format_version": format_version,
        "sharded": sharded,
        "dataset_layout": dataset_layout if npy else None,
        "sampler_class": type(sampler).__name__,
        "sampler_name": engine.sampler_name,
        "spec": None if spec is None else spec.to_dict(),
        "spec_kind": None if spec is None else ("engine" if isinstance(spec, EngineSpec) else "sampler"),
        "tables_class": type(tables).__name__,
        "dynamic": dynamic,
        "num_tables": tables.num_tables,
        "num_points": tables.num_points,
        "has_ranks": tables.ranks is not None,
        "num_live": tables.num_live if dynamic else tables.num_points,
        "pending_tombstones": tables.pending_tombstones if dynamic else 0,
        "rebuilds_triggered": tables.rebuilds_triggered if dynamic else 0,
        "max_tombstone_fraction": tables.max_tombstone_fraction if dynamic else None,
        "use_ranks": tables._use_ranks if dynamic else (tables.ranks is not None),
        "batch_hashing": engine.batch_hashing,
        "coalesce_duplicates": engine.coalesce_duplicates,
        "stats": engine.stats.as_dict(),
    }
    if sharded:
        manifest["n_shards"] = tables.n_shards
        manifest["placement"] = tables.placement
        manifest["shards"] = shard_manifests
        # Additive key (older readers ignore it): which sharded executor the
        # snapshotted engine used, so load_engine restores the same serving
        # topology — "process" reconstructs a ProcessShardedEngine whose
        # worker baselines capture the freshly restored shard state.
        manifest["executor"] = (
            "process" if type(engine).__name__ == "ProcessShardedEngine" else "thread"
        )

    if npy:
        arrays_dir = directory / _ARRAYS_DIR
        arrays_dir.mkdir(parents=True, exist_ok=True)
        for name, value in arrays.items():
            np.save(arrays_dir / f"{name}.npy", np.ascontiguousarray(value))
    else:
        np.savez(directory / _ARRAYS, **arrays)
    with open(directory / _OBJECTS, "wb") as handle:
        pickle.dump(objects, handle)
    with open(directory / _MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return directory


def _pack_dataset(sampler, tables, arrays: Dict[str, np.ndarray]) -> str:
    """Add the dataset's columnar payload to *arrays*; returns the layout tag.

    The rows come from the engine's active columnar store (built lazily here
    if need be), so released slots carry the same placeholder payload the
    store holds — loaded stores on any backend read back byte-identical rows.
    The slot-aligned ``dataset__released`` mask records which slots read back
    as ``None`` in the point container.
    """
    points = sampler.dataset
    try:
        store = sampler._active_store()
    except Exception:
        store = None
    if store is None or len(store) != len(points):
        return "pickled"
    if isinstance(points, StoreBackedPoints):
        released_slots = points.released
        released = np.zeros(len(points), dtype=bool)
        for index in released_slots:
            released[index] = True
    else:
        released = np.asarray([p is None for p in points], dtype=bool)
    if store.kind == "dense":
        arrays["dataset__dense"] = np.ascontiguousarray(store.matrix, dtype=np.float64)
    elif store.kind == "sets":
        arrays["dataset__indptr"] = np.ascontiguousarray(store.indptr, dtype=np.int64)
        arrays["dataset__items"] = np.ascontiguousarray(store.items, dtype=np.int64)
    else:  # pragma: no cover - no other columnar kinds exist
        return "pickled"
    arrays["dataset__released"] = released
    return store.kind


#: Exception types a damaged snapshot surfaces as: missing/unreadable files
#: (``OSError``), invalid JSON (``ValueError`` subclasses), a truncated
#: ``arrays.npz`` (``zipfile.BadZipFile`` — *not* a ``ValueError``),
#: truncated pickles (``UnpicklingError``/``EOFError``), missing manifest or
#: array keys (``KeyError``), and structurally wrong values
#: (``TypeError``/``AttributeError``/``IndexError``).
_CORRUPT_SIGNALS = (
    OSError,
    ValueError,
    KeyError,
    TypeError,
    AttributeError,
    IndexError,
    EOFError,
    ImportError,
    pickle.UnpicklingError,
    zipfile.BadZipFile,
)


class _NpyDir:
    """Dict-style accessor over a v5 snapshot's ``arrays/`` directory.

    Presents the same ``arrays[key]`` interface as an open ``NpzFile`` so
    the table-restore code is format-agnostic.  With ``mapped=True`` every
    array comes back as a read-only ``np.memmap`` — loading touches only
    ``.npy`` headers and the OS pages data in on first access.  A missing or
    damaged per-array file raises
    :class:`~repro.exceptions.SnapshotCorruptError` carrying the file's
    ``path``, mirroring what a truncated ``arrays.npz`` raises for the
    zipped formats.
    """

    def __init__(self, directory: pathlib.Path, mapped: bool = False):
        self._directory = pathlib.Path(directory)
        self._mapped = mapped

    def path(self, key: str) -> pathlib.Path:
        return self._directory / f"{key}.npy"

    def __getitem__(self, key: str) -> np.ndarray:
        path = self.path(key)
        try:
            return np.load(
                path, mmap_mode="r" if self._mapped else None, allow_pickle=False
            )
        except (OSError, ValueError, EOFError) as error:
            raise SnapshotCorruptError(
                f"cannot read snapshot array {path}: {type(error).__name__}: {error}",
                path=path,
            ) from error

    def __enter__(self) -> "_NpyDir":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


def load_engine(
    directory: Union[str, pathlib.Path],
    store: Union[StoreSpec, str, None] = None,
    block_client=None,
) -> BatchQueryEngine:
    """Reconstruct a :class:`BatchQueryEngine` saved by :func:`save_engine`.

    All compatible formats load: v1–v3 unsharded snapshots restore exactly
    as before, v4 snapshots come back as
    :class:`~repro.engine.sharded.ShardedEngine` instances over the same
    partitioning, and v5 snapshots additionally choose their storage tier.

    *store* selects the dataset backend: a backend name (``"inram"``,
    ``"memmap"``, ``"remote"``), a full :class:`~repro.store.StoreSpec`, or
    ``None`` to follow the snapshot's own spec (falling back to ``inram``).
    ``memmap`` maps the v5 snapshot's raw arrays in place — cold start reads
    headers, not the corpus; ``remote`` fetches vector blocks from a block
    server (*block_client*, or an HTTP client built from the spec's
    ``endpoint``).  Out-of-core backends require a v5 snapshot with a
    columnar dataset layout; anything else raises
    :class:`~repro.exceptions.InvalidParameterError`.

    A snapshot that cannot be loaded — missing files, truncated or
    bit-rotted arrays, invalid JSON, pickle damage — raises
    :class:`~repro.exceptions.SnapshotCorruptError` (with the underlying
    failure as ``__cause__``, and the damaged file as ``path`` when one is
    identifiable) rather than leaking raw ``numpy``/``pickle``/``json``
    exceptions; a *valid* snapshot in an unsupported format still raises
    :class:`~repro.exceptions.InvalidParameterError`.
    """
    directory = pathlib.Path(directory)
    try:
        return _load_engine(directory, store, block_client)
    except ReproError:
        raise
    except _CORRUPT_SIGNALS as error:
        raise SnapshotCorruptError(
            f"snapshot at {directory} is corrupt or incomplete: "
            f"{type(error).__name__}: {error}"
        ) from error


def _load_engine(
    directory: pathlib.Path,
    store_request: Union[StoreSpec, str, None] = None,
    block_client=None,
) -> BatchQueryEngine:
    with open(directory / _MANIFEST, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest["format_version"]
    if version not in COMPATIBLE_VERSIONS:
        raise InvalidParameterError(
            f"snapshot format {version} not supported "
            f"(expected one of {COMPATIBLE_VERSIONS})"
        )
    npy = version == NPY_FORMAT_VERSION
    sharded = bool(manifest.get("sharded", version == SHARDED_FORMAT_VERSION))

    # Format v3 manifests are self-describing; v2 and older lack the spec and
    # serving name, so the spec stays None and the name is derived from the
    # sampler class.
    spec_data = manifest.get("spec")
    spec = None
    if spec_data is not None:
        spec_cls = EngineSpec if manifest.get("spec_kind") == "engine" else SamplerSpec
        spec = spec_cls.from_dict(spec_data)

    # Resolve the storage tier: explicit request > snapshot spec > inram.
    if store_request is not None:
        store_spec = StoreSpec.coerce(store_request)
    elif isinstance(spec, EngineSpec) and spec.store is not None:
        store_spec = spec.store
    else:
        store_spec = StoreSpec()
    if store_spec.backend != "inram":
        if not npy:
            raise InvalidParameterError(
                f"store backend {store_spec.backend!r} requires a format-"
                f"{NPY_FORMAT_VERSION} snapshot (this one is format {version}); "
                f"re-save it with save_engine(..., format_version={NPY_FORMAT_VERSION})"
            )
        if manifest.get("dataset_layout") == "pickled":
            raise InvalidParameterError(
                f"store backend {store_spec.backend!r} requires a columnar "
                "dataset layout; this snapshot's dataset is pickled"
            )
    if store_request is not None and isinstance(spec, EngineSpec):
        # The explicitly requested tier becomes part of the engine's spec, so
        # subsequent checkpoints and recoveries stay on it.
        spec = dataclasses.replace(spec, store=store_spec)

    with open(directory / _OBJECTS, "rb") as handle:
        objects = pickle.load(handle)
    num_tables = int(manifest["num_tables"])
    num_points = int(manifest["num_points"])
    has_ranks = bool(manifest["has_ranks"])
    dynamic = bool(manifest["dynamic"])

    if sharded:
        tables = ShardedLSHTables(
            objects["family"],
            num_tables,
            seed=0,
            use_ranks=bool(manifest["use_ranks"]),
            max_tombstone_fraction=float(manifest["max_tombstone_fraction"]),
            n_shards=int(manifest["n_shards"]),
            placement=manifest["placement"],
            _functions=objects["functions"],
        )
    elif dynamic:
        tables = DynamicLSHTables(
            objects["family"],
            num_tables,
            seed=0,
            use_ranks=bool(manifest["use_ranks"]),
            max_tombstone_fraction=float(manifest["max_tombstone_fraction"]),
            _functions=objects["functions"],
        )
    else:
        tables = LSHTables(objects["family"], num_tables, seed=0, _functions=objects["functions"])
    # All array accesses happen inside the with block (NpzFile materializes
    # plain ndarrays on access), so the file handle is released on exit.
    # Memmap-backed loads map the per-array ``.npy`` files instead: bucket
    # arrays stay lazy views and the corpus is never read up front.
    if npy:
        arrays_source = _NpyDir(
            directory / _ARRAYS_DIR, mapped=store_spec.backend == "memmap"
        )
    else:
        arrays_source = np.load(directory / _ARRAYS, allow_pickle=False)
    with arrays_source as arrays:
        points, prebuilt_store = _restore_dataset(
            directory, manifest, objects, arrays, store_spec, block_client
        )
        if sharded:
            _restore_sharded_tables(tables, manifest, arrays, objects, points)
            if prebuilt_store is not None:
                tables._store = prebuilt_store
            dataset = tables.dataset
        else:
            tables._tables = [
                _restore_table(
                    arrays,
                    table_index,
                    _decode_keys(objects["bucket_keys"][table_index], arrays),
                    has_ranks,
                )
                for table_index in range(num_tables)
            ]
            tables._n = num_points
            tables._ranks = arrays["ranks"] if has_ranks else None
            tables._fitted = True

            if dynamic:
                tables._points = points
                if prebuilt_store is not None:
                    tables._store = prebuilt_store
                if has_ranks:
                    # Re-establish the capacity buffer the rank view grows inside.
                    tables._ranks_buf = np.array(tables._ranks, dtype=np.int64)
                    tables._ranks = tables._ranks_buf[:num_points]
                tables._alive = arrays["alive"].astype(bool)
                tables._num_live = int(manifest["num_live"])
                tables._pending = set(arrays["pending"].tolist())
                tables.rebuilds_triggered = int(manifest["rebuilds_triggered"])
                tables._mut_rng = objects["mut_rng"]
                restored_delta = objects.get("pending_delta")
                tables._delta = (
                    restored_delta if restored_delta is not None else MutationDelta.empty(num_tables)
                )
                # Epochs restart at 0 in the restored tables; re-anchor the delta
                # so the re-anchored sampler (below) sees no epoch gap and can
                # still apply the persisted record incrementally.
                tables._delta.start_epoch = tables.mutation_epoch
                dataset = tables.dataset
            else:
                dataset = points

    sampler = objects["sampler"]
    sampler.tables = tables
    sampler._dataset = dataset
    sampler.ranks = tables.ranks if sampler._use_ranks else None
    if prebuilt_store is not None and not hasattr(tables, "point_store"):
        # Static tables have no shared store; seed the sampler's own cache so
        # vectorized scoring starts on the reconstructed store immediately.
        sampler._store = prebuilt_store
    # Restored tables restart their mutation epoch; re-anchor the sampler so
    # its next empty drain is not mistaken for a missed (stolen) delta.  Any
    # delta persisted above round-trips and is applied on the next sync.
    sampler._synced_epoch = tables.mutation_epoch

    if sharded and manifest.get("executor") == "process":
        from repro.engine.procpool import ProcessShardedEngine

        engine_cls = ProcessShardedEngine
    elif sharded:
        engine_cls = ShardedEngine
    else:
        engine_cls = BatchQueryEngine
    engine = engine_cls(
        sampler,
        batch_hashing=bool(manifest["batch_hashing"]),
        coalesce_duplicates=bool(manifest["coalesce_duplicates"]),
        sampler_name=manifest.get("sampler_name"),
        spec=spec,
    )
    engine.stats = EngineStats.from_dict(manifest["stats"])
    return engine


def _restore_dataset(
    directory: pathlib.Path,
    manifest: dict,
    objects: dict,
    arrays,
    store_spec: StoreSpec,
    block_client,
):
    """Rebuild the point container for the requested backend.

    Returns ``(points, store)`` — the dataset container the tables/sampler
    will hold, plus a ready columnar store over it (``None`` when the
    dataset has no columnar form and scoring falls back to the scalar loop).
    ``inram`` materializes a plain list (of matrix row views / frozensets);
    ``memmap`` and ``remote`` return a
    :class:`~repro.store.StoreBackedPoints` facade whose rows come straight
    from the backing store, so nothing is read up front.
    """
    layout = manifest.get("dataset_layout") or "pickled"
    if manifest["format_version"] != NPY_FORMAT_VERSION or layout == "pickled":
        return list(objects["dataset"]), None
    if layout not in _DATASET_LAYOUTS:
        raise InvalidParameterError(f"unknown snapshot dataset layout {layout!r}")
    released_mask = np.asarray(arrays["dataset__released"], dtype=bool)

    if store_spec.backend == "inram":
        if layout == "dense":
            matrix = np.ascontiguousarray(arrays["dataset__dense"], dtype=np.float64)
            points = [
                None if released_mask[index] else matrix[index]
                for index in range(matrix.shape[0])
            ]
            return points, DenseStore(matrix)
        indptr = np.ascontiguousarray(arrays["dataset__indptr"], dtype=np.int64)
        items = np.ascontiguousarray(arrays["dataset__items"], dtype=np.int64)
        points = [
            None
            if released_mask[index]
            else frozenset(int(item) for item in items[indptr[index] : indptr[index + 1]])
            for index in range(indptr.shape[0] - 1)
        ]
        return points, SetStore._from_csr(points, indptr, items)

    released = np.nonzero(released_mask)[0].tolist()
    if store_spec.backend == "memmap":
        arrays_dir = directory / _ARRAYS_DIR
        if layout == "dense":
            store = MemmapDenseStore(arrays_dir / "dataset__dense.npy")
        else:
            store = MemmapSetStore(
                arrays_dir / "dataset__indptr.npy", arrays_dir / "dataset__items.npy"
            )
    else:  # remote
        client = block_client
        if client is None:
            if store_spec.endpoint is None:
                raise InvalidParameterError(
                    "the remote backend needs a block server: pass block_client= "
                    "or a StoreSpec carrying an endpoint"
                )
            from repro.store import HTTPBlockClient

            client = HTTPBlockClient(store_spec.endpoint)
        from repro.store import RemoteDenseStore, RemoteSetStore

        store_cls = RemoteDenseStore if layout == "dense" else RemoteSetStore
        store = store_cls(
            client,
            cache_blocks=store_spec.cache_blocks,
            block_size=store_spec.block_size,
        )
    if len(store) != int(manifest["num_points"]):
        raise SnapshotCorruptError(
            f"snapshot dataset holds {len(store)} rows but the manifest "
            f"records {manifest['num_points']}"
        )
    return StoreBackedPoints(store, released), store


def _restore_sharded_tables(
    tables: ShardedLSHTables, manifest: dict, arrays, objects: dict, points
) -> None:
    """Rebuild a :class:`ShardedLSHTables` (and its shards) from a v4/v5 snapshot."""
    num_tables = int(manifest["num_tables"])
    num_points = int(manifest["num_points"])
    has_ranks = bool(manifest["has_ranks"])

    tables._points = points
    tables._n = num_points
    tables._alive = arrays["alive"].astype(bool)
    tables._num_live = int(manifest["num_live"])
    tables._pending = set(arrays["pending"].tolist())
    tables.rebuilds_triggered = int(manifest["rebuilds_triggered"])
    tables._mut_rng = objects["mut_rng"]
    if has_ranks:
        tables._ranks_buf = np.array(arrays["ranks"], dtype=np.int64)
        tables._ranks = tables._ranks_buf[:num_points]
    else:
        tables._ranks_buf = np.empty(0, dtype=np.int64)
        tables._ranks = None

    shard_of = arrays["shard_of"].astype(np.intp)
    local_of = arrays["local_of"].astype(np.intp)
    tables._shard_of = [int(s) for s in shard_of]
    tables._local_of = [int(i) for i in local_of]
    tables._globals_list = [[] for _ in range(tables.n_shards)]
    for index, shard_index in enumerate(tables._shard_of):
        tables._globals_list[shard_index].append(index)
    tables._globals_np = [None] * tables.n_shards

    for shard_index, shard in enumerate(tables.shards):
        entry = manifest["shards"][shard_index]
        if not entry["fitted"]:
            tables._shard_fitted[shard_index] = False
            continue
        keys = objects["bucket_keys"][shard_index]
        prefix = f"s{shard_index}_"
        shard._tables = [
            _restore_table(
                arrays,
                table_index,
                _decode_keys(keys[table_index], arrays),
                has_ranks,
                prefix=prefix,
            )
            for table_index in range(num_tables)
        ]
        globals_ = np.asarray(tables._globals_list[shard_index], dtype=np.intp)
        shard._n = int(globals_.size)
        shard._points = [tables._points[int(g)] for g in globals_]
        shard._alive = tables._alive[globals_].copy()
        shard._num_live = int(shard._alive.sum())
        if has_ranks:
            shard._ranks_buf = np.array(tables._ranks_buf[globals_], dtype=np.int64)
            shard._ranks = shard._ranks_buf[: shard._n]
        else:
            shard._ranks = None
        shard._pending = set(arrays[f"{prefix}pending"].tolist())
        shard.rebuilds_triggered = int(entry["rebuilds_triggered"])
        shard._fitted = True
        tables._shard_fitted[shard_index] = True

    tables._restore_views()
    tables._fitted = True
    restored_delta = objects.get("pending_delta")
    tables._delta = (
        restored_delta if restored_delta is not None else MutationDelta.empty(num_tables)
    )
    tables._delta.start_epoch = tables.mutation_epoch
    tables._unresolved_insert_points = []


def _restore_table(
    arrays, table_index: int, keys: List[Hashable], has_ranks: bool, prefix: str = ""
) -> dict:
    """Rebuild one table's ``key -> Bucket`` dict from the flattened arrays."""
    # np.asarray demotes memmap-loaded arrays to base-ndarray views over the
    # same mapping: the data stays lazy, but the thousands of per-bucket
    # slices below are cheap ndarray views instead of memmap subclass
    # instances.  copy=False keeps the intp cast lazy too (int64 == intp on
    # 64-bit platforms).
    offsets = np.asarray(arrays[f"{prefix}t{table_index}_offsets"]).tolist()
    indices = np.asarray(arrays[f"{prefix}t{table_index}_indices"]).astype(np.intp, copy=False)
    ranks = np.asarray(arrays[f"{prefix}t{table_index}_ranks"]) if has_ranks else None
    table = {}
    for position, key in enumerate(keys):
        lo, hi = int(offsets[position]), int(offsets[position + 1])
        table[key] = Bucket(
            indices[lo:hi], None if ranks is None else ranks[lo:hi]
        )
    return table

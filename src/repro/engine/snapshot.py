"""Persist a serving engine to a directory and load it back.

Indexes are expensive to build and cheap to serve, so production deployments
build them offline and ship the artifact to servers.  A snapshot directory
holds three files:

``manifest.json``
    Human-readable metadata: format version, class names, the serving name
    and originating declarative spec (format v3 — see :mod:`repro.spec`),
    table shape, liveness counters and the engine's serving statistics.
    Sharded engines (format v4) additionally record the shard topology —
    ``n_shards``, the placement policy and one per-shard manifest entry.
``arrays.npz``
    The numeric bulk — per-table bucket member/rank arrays (flattened with
    bucket offsets), the global rank array and the liveness mask.  Sharded
    snapshots store each shard's bucket arrays under an ``s<j>_`` prefix
    plus the recorded per-point placement (``shard_of`` / ``local_of``).
``objects.pkl``
    The Python objects with no natural array form: the drawn hash functions,
    the LSH family, per-table bucket keys, the dataset points, the sampler
    (stripped of its table/dataset references, which are restored from the
    arrays) and — for dynamic tables — the mutation RNG plus any
    not-yet-consumed :class:`~repro.engine.dynamic.MutationDelta`, so the
    restored engine keeps maintaining sampler state incrementally.

``load_engine`` rebuilds bit-identical state: the restored sampler carries
the same query RNG stream and (for Section 4) the same bucket sketches, so
subsequent samples reproduce exactly what the saved engine would have
returned.
"""

from __future__ import annotations

import json
import pathlib
import pickle
import zipfile
from typing import Dict, Hashable, List, Union

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.engine.batch import BatchQueryEngine
from repro.engine.dynamic import DynamicLSHTables, MutationDelta
from repro.engine.requests import EngineStats
from repro.engine.sharded import ShardedEngine, ShardedLSHTables
from repro.exceptions import InvalidParameterError, ReproError, SnapshotCorruptError
from repro.lsh.tables import Bucket, LSHTables
from repro.spec import EngineSpec, SamplerSpec

#: Version 2 added the pending :class:`~repro.engine.dynamic.MutationDelta`
#: to ``objects.pkl`` so a restored engine keeps maintaining derived sampler
#: state incrementally across the save/load boundary.  Version 3 added the
#: engine's serving name (``sampler_name``) and its originating declarative
#: spec (``spec`` / ``spec_kind``) to the manifest, making snapshots
#: self-describing.  Version 4 is the *sharded* layout: per-shard bucket
#: arrays and manifests plus the recorded point placement.  Unsharded
#: engines keep writing version 3, so pre-existing loaders stay compatible.
FORMAT_VERSION = 3

#: Format written for engines over :class:`~repro.engine.sharded.ShardedLSHTables`.
SHARDED_FORMAT_VERSION = 4

#: Formats ``load_engine`` reads.  Version 1 merely lacks the pending delta
#: (the loader substitutes an empty one); version 2 lacks the spec and
#: serving name (the loader leaves the spec ``None`` and derives the name
#: from the sampler class); version 4 adds shards.
COMPATIBLE_VERSIONS = (1, 2, FORMAT_VERSION, SHARDED_FORMAT_VERSION)

_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"
_OBJECTS = "objects.pkl"


def _pack_tables(tables, prefix: str, arrays: Dict[str, np.ndarray]) -> List[List[Hashable]]:
    """Flatten one table set's buckets into *arrays* under *prefix*.

    Returns the per-table bucket key lists (pickled separately — keys are
    ints or tuples, not rectangular arrays).
    """
    bucket_keys: List[List[Hashable]] = []
    has_ranks = tables.ranks is not None
    for table_index, table in enumerate(tables._tables):
        keys = list(table.keys())
        bucket_keys.append(keys)
        buckets = [table[key] for key in keys]
        sizes = np.asarray([len(bucket) for bucket in buckets], dtype=np.int64)
        arrays[f"{prefix}t{table_index}_offsets"] = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
        )
        arrays[f"{prefix}t{table_index}_indices"] = (
            np.concatenate([bucket.indices for bucket in buckets])
            if buckets
            else np.empty(0, dtype=np.intp)
        )
        if has_ranks:
            arrays[f"{prefix}t{table_index}_ranks"] = (
                np.concatenate([bucket.ranks for bucket in buckets])
                if buckets
                else np.empty(0, dtype=np.int64)
            )
    return bucket_keys


def save_engine(engine: BatchQueryEngine, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write *engine* to *directory* (created if needed); returns the path.

    Engines over :class:`~repro.engine.sharded.ShardedLSHTables` are written
    in the sharded format (v4): every shard's buckets are persisted
    separately together with the recorded placement, so the restored engine
    resumes with the same partitioning — and the same byte-identical
    responses — as the saved one.
    """
    sampler = engine.sampler
    if not isinstance(sampler, LSHNeighborSampler) or sampler.tables is None:
        raise InvalidParameterError(
            "only engines over LSH-table-backed samplers can be snapshotted"
        )
    # Flush pending mutations into the sampler first: the pickled sampler
    # carries derived state (caches, sketches) that must reflect the tables
    # being written, or the loaded clone would serve stale answers forever.
    engine._sync()
    tables = sampler.tables
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    sharded = isinstance(tables, ShardedLSHTables)
    dynamic = isinstance(tables, DynamicLSHTables)

    arrays: Dict[str, np.ndarray] = {}
    shard_manifests = None
    if sharded:
        bucket_keys: List[Union[List[List[Hashable]], None]] = []
        shard_manifests = []
        for shard_index, shard in enumerate(tables.shards):
            if tables._shard_fitted[shard_index]:
                bucket_keys.append(_pack_tables(shard, f"s{shard_index}_", arrays))
                arrays[f"s{shard_index}_pending"] = np.asarray(
                    sorted(shard._pending), dtype=np.intp
                )
            else:
                bucket_keys.append(None)
            shard_manifests.append(
                {
                    "fitted": tables._shard_fitted[shard_index],
                    "num_points": len(tables._globals_list[shard_index]),
                    "rebuilds_triggered": shard.rebuilds_triggered,
                }
            )
        arrays["shard_of"] = np.asarray(tables._shard_of, dtype=np.int64)
        arrays["local_of"] = np.asarray(tables._local_of, dtype=np.int64)
    else:
        bucket_keys = _pack_tables(tables, "", arrays)
    if tables.ranks is not None:
        arrays["ranks"] = tables.ranks
    if dynamic:
        arrays["alive"] = tables.alive
        arrays["pending"] = np.asarray(sorted(tables._pending), dtype=np.intp)

    # The sampler travels as a stripped copy: its heavy references (tables,
    # dataset, rank view) and rebuildable caches are dropped and rebuilt on
    # load, while query-time state (RNG streams, Section 4 sketches) rides
    # along for bit-identical post-load behaviour.
    sampler_copy = sampler._stripped_for_snapshot()

    objects = {
        "family": tables.family,
        "functions": tables._functions,
        "bucket_keys": bucket_keys,
        "dataset": list(sampler.dataset),
        "sampler": sampler_copy,
        "mut_rng": tables._mut_rng if dynamic else None,
        # Mutations recorded but not yet consumed by a sampler sync (possible
        # when the tables were mutated directly rather than through the
        # engine).  Persisting the delta means the restored sampler's first
        # notify_update still sees exactly what changed and can stay on the
        # incremental maintenance path.
        "pending_delta": tables.peek_delta() if dynamic else None,
    }

    spec = getattr(engine, "spec", None)
    if spec is not None and not isinstance(spec, (SamplerSpec, EngineSpec)):
        raise InvalidParameterError(
            f"engine.spec must be a SamplerSpec or EngineSpec, got {type(spec).__name__}"
        )

    manifest = {
        "format_version": SHARDED_FORMAT_VERSION if sharded else FORMAT_VERSION,
        "sampler_class": type(sampler).__name__,
        "sampler_name": engine.sampler_name,
        "spec": None if spec is None else spec.to_dict(),
        "spec_kind": None if spec is None else ("engine" if isinstance(spec, EngineSpec) else "sampler"),
        "tables_class": type(tables).__name__,
        "dynamic": dynamic,
        "num_tables": tables.num_tables,
        "num_points": tables.num_points,
        "has_ranks": tables.ranks is not None,
        "num_live": tables.num_live if dynamic else tables.num_points,
        "pending_tombstones": tables.pending_tombstones if dynamic else 0,
        "rebuilds_triggered": tables.rebuilds_triggered if dynamic else 0,
        "max_tombstone_fraction": tables.max_tombstone_fraction if dynamic else None,
        "use_ranks": tables._use_ranks if dynamic else (tables.ranks is not None),
        "batch_hashing": engine.batch_hashing,
        "coalesce_duplicates": engine.coalesce_duplicates,
        "stats": engine.stats.as_dict(),
    }
    if sharded:
        manifest["n_shards"] = tables.n_shards
        manifest["placement"] = tables.placement
        manifest["shards"] = shard_manifests
        # Additive key (older readers ignore it): which sharded executor the
        # snapshotted engine used, so load_engine restores the same serving
        # topology — "process" reconstructs a ProcessShardedEngine whose
        # worker baselines capture the freshly restored shard state.
        manifest["executor"] = (
            "process" if type(engine).__name__ == "ProcessShardedEngine" else "thread"
        )

    np.savez(directory / _ARRAYS, **arrays)
    with open(directory / _OBJECTS, "wb") as handle:
        pickle.dump(objects, handle)
    with open(directory / _MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return directory


#: Exception types a damaged snapshot surfaces as: missing/unreadable files
#: (``OSError``), invalid JSON (``ValueError`` subclasses), a truncated
#: ``arrays.npz`` (``zipfile.BadZipFile`` — *not* a ``ValueError``),
#: truncated pickles (``UnpicklingError``/``EOFError``), missing manifest or
#: array keys (``KeyError``), and structurally wrong values
#: (``TypeError``/``AttributeError``/``IndexError``).
_CORRUPT_SIGNALS = (
    OSError,
    ValueError,
    KeyError,
    TypeError,
    AttributeError,
    IndexError,
    EOFError,
    ImportError,
    pickle.UnpicklingError,
    zipfile.BadZipFile,
)


def load_engine(directory: Union[str, pathlib.Path]) -> BatchQueryEngine:
    """Reconstruct a :class:`BatchQueryEngine` saved by :func:`save_engine`.

    All compatible formats load: v1–v3 unsharded snapshots restore exactly
    as before, and v4 snapshots come back as
    :class:`~repro.engine.sharded.ShardedEngine` instances over the same
    partitioning.

    A snapshot that cannot be loaded — missing files, truncated or
    bit-rotted arrays, invalid JSON, pickle damage — raises
    :class:`~repro.exceptions.SnapshotCorruptError` (with the underlying
    failure as ``__cause__``) rather than leaking raw ``numpy``/``pickle``/
    ``json`` exceptions; a *valid* snapshot in an unsupported format still
    raises :class:`~repro.exceptions.InvalidParameterError`.
    """
    directory = pathlib.Path(directory)
    try:
        return _load_engine(directory)
    except ReproError:
        raise
    except _CORRUPT_SIGNALS as error:
        raise SnapshotCorruptError(
            f"snapshot at {directory} is corrupt or incomplete: "
            f"{type(error).__name__}: {error}"
        ) from error


def _load_engine(directory: pathlib.Path) -> BatchQueryEngine:
    with open(directory / _MANIFEST, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest["format_version"] not in COMPATIBLE_VERSIONS:
        raise InvalidParameterError(
            f"snapshot format {manifest['format_version']} not supported "
            f"(expected one of {COMPATIBLE_VERSIONS})"
        )
    with open(directory / _OBJECTS, "rb") as handle:
        objects = pickle.load(handle)
    num_tables = int(manifest["num_tables"])
    num_points = int(manifest["num_points"])
    has_ranks = bool(manifest["has_ranks"])
    dynamic = bool(manifest["dynamic"])
    sharded = manifest["format_version"] == SHARDED_FORMAT_VERSION

    if sharded:
        tables = ShardedLSHTables(
            objects["family"],
            num_tables,
            seed=0,
            use_ranks=bool(manifest["use_ranks"]),
            max_tombstone_fraction=float(manifest["max_tombstone_fraction"]),
            n_shards=int(manifest["n_shards"]),
            placement=manifest["placement"],
            _functions=objects["functions"],
        )
    elif dynamic:
        tables = DynamicLSHTables(
            objects["family"],
            num_tables,
            seed=0,
            use_ranks=bool(manifest["use_ranks"]),
            max_tombstone_fraction=float(manifest["max_tombstone_fraction"]),
            _functions=objects["functions"],
        )
    else:
        tables = LSHTables(objects["family"], num_tables, seed=0, _functions=objects["functions"])
    # All array accesses happen inside the with block (NpzFile materializes
    # plain ndarrays on access), so the file handle is released on exit.
    with np.load(directory / _ARRAYS, allow_pickle=False) as arrays:
        if sharded:
            _restore_sharded_tables(tables, manifest, arrays, objects)
            dataset = tables.dataset
        else:
            tables._tables = [
                _restore_table(arrays, table_index, objects["bucket_keys"][table_index], has_ranks)
                for table_index in range(num_tables)
            ]
            tables._n = num_points
            tables._ranks = arrays["ranks"] if has_ranks else None
            tables._fitted = True

            if dynamic:
                tables._points = list(objects["dataset"])
                if has_ranks:
                    # Re-establish the capacity buffer the rank view grows inside.
                    tables._ranks_buf = np.array(tables._ranks, dtype=np.int64)
                    tables._ranks = tables._ranks_buf[:num_points]
                tables._alive = arrays["alive"].astype(bool)
                tables._num_live = int(manifest["num_live"])
                tables._pending = set(arrays["pending"].tolist())
                tables.rebuilds_triggered = int(manifest["rebuilds_triggered"])
                tables._mut_rng = objects["mut_rng"]
                restored_delta = objects.get("pending_delta")
                tables._delta = (
                    restored_delta if restored_delta is not None else MutationDelta.empty(num_tables)
                )
                # Epochs restart at 0 in the restored tables; re-anchor the delta
                # so the re-anchored sampler (below) sees no epoch gap and can
                # still apply the persisted record incrementally.
                tables._delta.start_epoch = tables.mutation_epoch
                dataset = tables.dataset
            else:
                dataset = list(objects["dataset"])

    sampler = objects["sampler"]
    sampler.tables = tables
    sampler._dataset = dataset
    sampler.ranks = tables.ranks if sampler._use_ranks else None
    # Restored tables restart their mutation epoch; re-anchor the sampler so
    # its next empty drain is not mistaken for a missed (stolen) delta.  Any
    # delta persisted above round-trips and is applied on the next sync.
    sampler._synced_epoch = tables.mutation_epoch

    # Format v3 manifests are self-describing; v2 and older lack the spec and
    # serving name, so the spec stays None and the name is derived from the
    # sampler class.
    spec_data = manifest.get("spec")
    spec = None
    if spec_data is not None:
        spec_cls = EngineSpec if manifest.get("spec_kind") == "engine" else SamplerSpec
        spec = spec_cls.from_dict(spec_data)

    if sharded and manifest.get("executor") == "process":
        from repro.engine.procpool import ProcessShardedEngine

        engine_cls = ProcessShardedEngine
    elif sharded:
        engine_cls = ShardedEngine
    else:
        engine_cls = BatchQueryEngine
    engine = engine_cls(
        sampler,
        batch_hashing=bool(manifest["batch_hashing"]),
        coalesce_duplicates=bool(manifest["coalesce_duplicates"]),
        sampler_name=manifest.get("sampler_name"),
        spec=spec,
    )
    engine.stats = EngineStats.from_dict(manifest["stats"])
    return engine


def _restore_sharded_tables(
    tables: ShardedLSHTables, manifest: dict, arrays, objects: dict
) -> None:
    """Rebuild a :class:`ShardedLSHTables` (and its shards) from a v4 snapshot."""
    num_tables = int(manifest["num_tables"])
    num_points = int(manifest["num_points"])
    has_ranks = bool(manifest["has_ranks"])

    tables._points = list(objects["dataset"])
    tables._n = num_points
    tables._alive = arrays["alive"].astype(bool)
    tables._num_live = int(manifest["num_live"])
    tables._pending = set(arrays["pending"].tolist())
    tables.rebuilds_triggered = int(manifest["rebuilds_triggered"])
    tables._mut_rng = objects["mut_rng"]
    if has_ranks:
        tables._ranks_buf = np.array(arrays["ranks"], dtype=np.int64)
        tables._ranks = tables._ranks_buf[:num_points]
    else:
        tables._ranks_buf = np.empty(0, dtype=np.int64)
        tables._ranks = None

    shard_of = arrays["shard_of"].astype(np.intp)
    local_of = arrays["local_of"].astype(np.intp)
    tables._shard_of = [int(s) for s in shard_of]
    tables._local_of = [int(i) for i in local_of]
    tables._globals_list = [[] for _ in range(tables.n_shards)]
    for index, shard_index in enumerate(tables._shard_of):
        tables._globals_list[shard_index].append(index)
    tables._globals_np = [None] * tables.n_shards

    for shard_index, shard in enumerate(tables.shards):
        entry = manifest["shards"][shard_index]
        if not entry["fitted"]:
            tables._shard_fitted[shard_index] = False
            continue
        keys = objects["bucket_keys"][shard_index]
        prefix = f"s{shard_index}_"
        shard._tables = [
            _restore_table(arrays, table_index, keys[table_index], has_ranks, prefix=prefix)
            for table_index in range(num_tables)
        ]
        globals_ = np.asarray(tables._globals_list[shard_index], dtype=np.intp)
        shard._n = int(globals_.size)
        shard._points = [tables._points[int(g)] for g in globals_]
        shard._alive = tables._alive[globals_].copy()
        shard._num_live = int(shard._alive.sum())
        if has_ranks:
            shard._ranks_buf = np.array(tables._ranks_buf[globals_], dtype=np.int64)
            shard._ranks = shard._ranks_buf[: shard._n]
        else:
            shard._ranks = None
        shard._pending = set(arrays[f"{prefix}pending"].tolist())
        shard.rebuilds_triggered = int(entry["rebuilds_triggered"])
        shard._fitted = True
        tables._shard_fitted[shard_index] = True

    tables._restore_views()
    tables._fitted = True
    restored_delta = objects.get("pending_delta")
    tables._delta = (
        restored_delta if restored_delta is not None else MutationDelta.empty(num_tables)
    )
    tables._delta.start_epoch = tables.mutation_epoch
    tables._unresolved_insert_points = []


def _restore_table(
    arrays, table_index: int, keys: List[Hashable], has_ranks: bool, prefix: str = ""
) -> dict:
    """Rebuild one table's ``key -> Bucket`` dict from the flattened arrays."""
    offsets = arrays[f"{prefix}t{table_index}_offsets"]
    indices = arrays[f"{prefix}t{table_index}_indices"].astype(np.intp)
    ranks = arrays[f"{prefix}t{table_index}_ranks"] if has_ranks else None
    table = {}
    for position, key in enumerate(keys):
        lo, hi = int(offsets[position]), int(offsets[position + 1])
        table[key] = Bucket(
            indices[lo:hi], None if ranks is None else ranks[lo:hi]
        )
    return table

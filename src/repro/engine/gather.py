"""The shared bounded-gather core of sharded serving.

Both sharded executors — the thread pool (:class:`~repro.engine.sharded.
ShardedEngine`) and the process pool (:class:`~repro.engine.procpool.
ProcessShardedEngine`) — answer prefix-capable queries from the same three
primitives, defined once here:

* :func:`bounded_shard_prefix` — one shard's bottom-``B``-by-rank slice of
  its colliding multiset, computed in O(tables × B) by exploiting the
  :class:`~repro.lsh.tables.Bucket` invariant that ranked buckets are stored
  sorted ascending by rank (each bucket's bottom-``B`` is a plain slice, and
  the final ``argpartition`` runs over at most ``l × B`` pre-cut entries
  instead of the full multiset).
* :func:`merge_prefix_parts` — the provably-complete merge: every global
  reference ranked strictly below the lowest truncation boundary is present
  in some part, so cutting the concatenated multiset at that boundary yields
  a **true rank prefix** of the full colliding view.  The returned
  :class:`PrefixView` carries the certification flag the samplers use to
  decide whether their answer is provable from the prefix alone.
* :class:`PrefixBudgetController` — the self-tuning gather budget: batches
  open at the smallest limit that certified ~7/8 of the previous batch
  (outliers escalate in cheap shared rounds instead of inflating every
  gather), a whole batch certifying in round one probes one step down
  immediately, and every fourth tuned batch probes down regardless so
  long-running serving tracks workload drift back *down* as well as up.
  Every move is a deterministic, order-insensitive function of the per-round
  certification counts, so both executors produce the **same budget
  sequence** for the same batch stream.

The merge's correctness rests on the rank domain being exchangeable: ranks
are i.i.d. draws from the fixed ``2^62`` domain shared by every shard, so
"bottom ``B`` by rank" composes across shards exactly (see the
:mod:`repro.engine.sharded` module docstring for the full argument).

For samplers that replay a *per-bucket* scan rather than a rank-ordered one
(:class:`~repro.core.standard_lsh.StandardLSHSampler`), the gather can also
carry per-reference table ids and per-table bucket sizes
(``with_tables=True``).  Because the kept multiset is downward-closed in
rank at every cut stage, each probed bucket's surviving members form a rank
prefix of that bucket in scan order, and a bucket whose surviving count
equals its full (liveness-filtered) size is provably complete — the sampler
can replay its exact bucket-by-bucket scan on complete buckets and refuse
the moment it reaches a truncated one.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "PrefixBudgetController",
    "PrefixView",
    "bounded_shard_prefix",
    "merge_prefix_parts",
    "split_budget",
]

#: Minimum per-shard slice of a split global budget: below this the fixed
#: per-shard gather overheads dominate and the boundary cut discards most of
#: what was gathered.
_MIN_PER_SHARD = 32


class PrefixView(tuple):
    """A rank-sorted candidate prefix, unpackable as ``(ranks, indices)``.

    Subclasses :class:`tuple` so every existing consumer of the bare
    ``(ranks, indices)`` view shape keeps working unchanged; the optional
    per-table metadata rides along as attributes:

    Attributes
    ----------
    ranks, indices:
        The rank-sorted (ascending) candidate multiset — a true rank prefix
        of the full colliding view.
    table_ids:
        Per-reference probing table index (aligned with ``indices``), or
        ``None`` when the gather ran without table metadata.
    table_sizes:
        Per-table full (liveness-filtered, pre-exclusion) colliding bucket
        sizes summed over all shards, or ``None``.  A bucket whose members
        appear ``table_sizes[t]`` times in the view is provably complete.
    """

    ranks: np.ndarray
    indices: np.ndarray
    table_ids: Optional[np.ndarray]
    table_sizes: Optional[np.ndarray]

    def __new__(
        cls,
        ranks: np.ndarray,
        indices: np.ndarray,
        table_ids: Optional[np.ndarray] = None,
        table_sizes: Optional[np.ndarray] = None,
    ) -> "PrefixView":
        view = super().__new__(cls, (ranks, indices))
        view.ranks = ranks
        view.indices = indices
        view.table_ids = table_ids
        view.table_sizes = table_sizes
        return view

    @classmethod
    def empty(cls, num_tables: Optional[int] = None) -> "PrefixView":
        """The empty (complete) view, with zeroed table sizes when asked."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.intp),
            table_ids=None if num_tables is None else np.empty(0, dtype=np.int64),
            table_sizes=None if num_tables is None else np.zeros(num_tables, dtype=np.int64),
        )


def bounded_shard_prefix(shard, keys, limit: int, with_tables: bool = False):
    """One shard's contribution to a bounded rank-prefix gather.

    Returns the bottom-*limit* of the shard's liveness-filtered colliding
    multiset by rank as ``(local_indices, ranks, boundary)`` — ``boundary``
    is ``None`` when nothing was truncated, and the whole return is ``None``
    when the shard holds no colliding references.  With ``with_tables`` the
    tuple grows to ``(local_indices, ranks, boundary, table_ids,
    table_sizes)`` where ``table_sizes[t]`` is the full liveness-filtered
    size of the shard's bucket in table ``t`` (before any truncation).

    The bounded cost comes from the :class:`~repro.lsh.tables.Bucket`
    invariant that ranked buckets are stored sorted ascending by rank:

    * each bucket's bottom-``limit`` is a plain O(1) slice, so dropping a
      bucket's tail can never drop a bottom-``limit`` member of the union
      (anything past a bucket's ``limit``-th member has ``limit`` smaller
      ranks ahead of it in that bucket alone);
    * the final ``argpartition`` then runs over at most ``l * limit``
      pre-cut entries instead of the full colliding multiset.

    The kept multiset — and therefore the boundary, ``max`` of the kept
    ranks — is byte-identical to the uncut recipe; only the gather-side cost
    changes from O(multiset) to O(tables * limit).  Every cut stage keeps a
    downward-closed set of ranks, which is what makes the per-bucket
    completeness accounting of ``with_tables`` sound.
    """
    alive = shard._alive if shard._pending else None
    shard_ranks: List[np.ndarray] = []
    shard_indices: List[np.ndarray] = []
    shard_tables: List[np.ndarray] = []
    table_sizes = np.zeros(len(keys), dtype=np.int64) if with_tables else None
    truncated = False
    for table_index, (table, key) in enumerate(zip(shard._tables, keys)):
        bucket = table.get(key)
        if bucket is None or not bucket.indices.size:
            continue
        ranks = bucket.ranks
        indices = bucket.indices
        if alive is not None:
            keep = alive[indices]
            if not keep.all():
                ranks = ranks[keep]
                indices = indices[keep]
                if not ranks.size:
                    continue
        if with_tables:
            table_sizes[table_index] = ranks.size
        if ranks.size > limit:
            truncated = True
            ranks = ranks[:limit]
            indices = indices[:limit]
        shard_ranks.append(ranks)
        shard_indices.append(indices)
        if with_tables:
            shard_tables.append(np.full(ranks.size, table_index, dtype=np.int64))
    if not shard_ranks:
        return None
    ranks = np.concatenate(shard_ranks) if len(shard_ranks) > 1 else shard_ranks[0]
    locals_ = (
        np.concatenate(shard_indices) if len(shard_indices) > 1 else shard_indices[0]
    )
    table_ids = None
    if with_tables:
        table_ids = (
            np.concatenate(shard_tables) if len(shard_tables) > 1 else shard_tables[0]
        )
    boundary = None
    if ranks.size > limit:
        keep = np.argpartition(ranks, limit - 1)[:limit]
        ranks = ranks[keep]
        locals_ = locals_[keep]
        if with_tables:
            table_ids = table_ids[keep]
        boundary = int(ranks.max())
    elif truncated:
        # Every bucket tail dropped above had >= limit smaller ranks ahead
        # of it, so the union is still an exact prefix — but not the whole
        # multiset, so it must carry its completeness boundary.
        boundary = int(ranks.max())
    if with_tables:
        return locals_, ranks, boundary, table_ids, table_sizes
    return locals_, ranks, boundary


def merge_prefix_parts(
    shard_parts: Sequence[Tuple[int, tuple]],
    globals_of: Callable[[int], np.ndarray],
    num_tables: Optional[int] = None,
) -> Tuple[PrefixView, bool]:
    """Merge per-shard gather parts into a certified global rank prefix.

    *shard_parts* is ``[(shard_index, part), ...]`` with each part as
    produced by :func:`bounded_shard_prefix` (non-``None``); *globals_of*
    maps a shard index to its local→global slot translation array.  Pass
    *num_tables* iff the parts carry table metadata (``with_tables``) — a
    shard absent from *shard_parts* held no colliding references, so it
    contributes zero to every table size.

    Returns ``(view, complete)``: references at the lowest truncation
    boundary rank itself may be missing from other truncated shards, so the
    merged multiset is cut strictly below it, after which every surviving
    reference is provably present — the view is a true global rank prefix,
    restored to ascending rank order by a stable sort.  ``complete`` means
    no shard truncated and the view *is* the full colliding view.
    """
    rank_parts: List[np.ndarray] = []
    index_parts: List[np.ndarray] = []
    tid_parts: List[np.ndarray] = []
    sizes_total = (
        np.zeros(num_tables, dtype=np.int64) if num_tables is not None else None
    )
    boundary: Optional[int] = None
    for shard_index, part in shard_parts:
        locals_, ranks, shard_boundary = part[0], part[1], part[2]
        if shard_boundary is not None:
            boundary = (
                shard_boundary if boundary is None else min(boundary, shard_boundary)
            )
        rank_parts.append(ranks)
        index_parts.append(globals_of(shard_index)[locals_])
        if num_tables is not None:
            tid_parts.append(part[3])
            sizes_total += part[4]
    if not rank_parts:
        return PrefixView.empty(num_tables), True
    ranks = np.concatenate(rank_parts) if len(rank_parts) > 1 else rank_parts[0]
    indices = np.concatenate(index_parts) if len(index_parts) > 1 else index_parts[0]
    table_ids = None
    if num_tables is not None:
        table_ids = np.concatenate(tid_parts) if len(tid_parts) > 1 else tid_parts[0]
    complete = boundary is None
    if not complete:
        keep = ranks < boundary
        ranks = ranks[keep]
        indices = indices[keep]
        if table_ids is not None:
            table_ids = table_ids[keep]
    order = np.argsort(ranks, kind="stable")
    view = PrefixView(
        ranks[order],
        indices[order],
        table_ids=None if table_ids is None else table_ids[order],
        table_sizes=sizes_total,
    )
    return view, complete


def split_budget(limit: int, n_fitted: int, floor: int = _MIN_PER_SHARD) -> int:
    """Split a **global** prefix budget evenly across *n_fitted* shards.

    Ceiling division, floored at *floor*: the merged view depth — and with
    it gather bytes and the per-query merge/argsort work — tracks the global
    budget rather than ``n_shards`` times it.  A skewed shard can truncate
    early and force an escalation, but the boundary cut keeps every merged
    view a provably exact global rank prefix at any split.
    """
    return max(-(-int(limit) // int(n_fitted)), floor)


class PrefixBudgetController:
    """Self-tuning opening budget for the rank-prefix gather.

    Tracks the workload's *certifying depth*, not its deepest straggler: the
    next batch opens at the smallest budget that certified ~7/8 of the
    previous batch's queries — outliers escalate in cheap shared widened
    rounds instead of inflating every future gather.  The quantile follows
    the cost model: a query that fails round one wastes one bounded certify
    scan and joins a shared widened round, while a budget one step too deep
    doubles every query's gather and merge work — so paying escalations for
    up to ~12% of queries is cheaper than over-gathering for all of them.

    Certification alone can never reveal a *smaller* sufficient budget
    (rounds only ever observe limits at or above the opening one), so any
    budget clearing the quantile in round one is a fixed point — including
    ones a full step too deep.  Two decay paths fix that: when a whole batch
    certified in round one, probe one step down immediately; and on every
    *probe_every*-th tuned batch, probe one step down regardless, so
    long-running serving tracks workload drift back down as well as up.  A
    probe that undershoots costs one batch a cheap escalation round, and the
    quantile pick recovers the depth next batch.

    The controller also knows when *not* to prefix: a batch whose quantile
    depth lands beyond :attr:`cap` marks the regime hopeless (the prefix
    path would escalate for a fixed fraction of every batch, forever) and
    switches attempts off entirely — :meth:`attempt_prefix` then lets one
    probe batch through every *probe_every* batches so the decision stays
    reversible under workload drift.

    Every move is a deterministic function of per-round ``(limit,
    certified_count)`` pairs — counts, not orderings — so thread and process
    executors produce identical budget sequences for the same batch stream.
    The state is injectable (*start*) and observable (:meth:`state_dict`)
    for the cross-executor equivalence tests.
    """

    def __init__(
        self,
        floor: int = 128,
        cap: int = 4096,
        probe_every: int = 4,
        start: Optional[int] = None,
    ):
        if floor < 1:
            raise InvalidParameterError(f"floor must be >= 1, got {floor}")
        if cap < floor:
            raise InvalidParameterError(
                f"cap must be >= floor, got cap={cap} floor={floor}"
            )
        if probe_every < 1:
            raise InvalidParameterError(f"probe_every must be >= 1, got {probe_every}")
        self.floor = int(floor)
        self.cap = int(cap)
        self.probe_every = int(probe_every)
        #: The opening budget of the next batch's gather round.
        self.limit = self._clamp(self.floor if start is None else int(start))
        #: Batches that certified at least one query (the probe-down clock).
        self.batches_tuned = 0
        #: Whether the prefix path is switched off for this workload regime
        #: (certifying depth beyond :attr:`cap` — see :meth:`observe_batch`).
        self.disabled = False
        self._disabled_batches = 0

    def _clamp(self, value: int) -> int:
        return min(max(int(value), self.floor), self.cap)

    def observe_batch(
        self, certified_per_round: Sequence[Tuple[int, int]], opening: int
    ) -> None:
        """Retune from one batch's ``(limit, certified_count)`` rounds.

        *opening* is the budget the batch's first round ran at (normally
        :attr:`limit` as it stood when the batch started).  Batches that
        certified nothing leave the budget untouched — they carry no depth
        signal.
        """
        total = sum(count for _, count in certified_per_round)
        if not total:
            return
        self.batches_tuned += 1
        if len(certified_per_round) == 1:
            # The whole batch certified at the opening budget: probe down.
            tuned = max(int(opening) // 2, self.floor)
            self.disabled = False
        else:
            cumulative = 0
            tuned = certified_per_round[-1][0]
            for round_limit, count in certified_per_round:
                cumulative += count
                if cumulative * 8 >= total * 7:
                    tuned = round_limit
                    break
            if tuned > self.cap:
                # The workload's certifying depth lives beyond the cap —
                # e.g. classical bucket replay over buckets far larger than
                # any sane budget.  Opening at the (clamped) cap would drag
                # >= 1/8 of every future batch through escalation rounds
                # forever, strictly worse than the merged-bucket path those
                # queries end on anyway.  Switch the prefix path off; the
                # probe clock (:meth:`attempt_prefix`) keeps re-testing the
                # regime so a workload shift can switch it back on.
                self.disabled = True
                self._disabled_batches = 0
            else:
                self.disabled = False
                if self.batches_tuned % self.probe_every == 0:
                    tuned = max(tuned // 2, self.floor)
        self.limit = self._clamp(tuned)

    def attempt_prefix(self) -> bool:
        """Whether the next batch should try the prefix path at all.

        ``True`` whenever the controller is enabled.  While disabled, every
        *probe_every*-th batch still returns ``True`` — a probe batch whose
        certification profile lets :meth:`observe_batch` re-evaluate the
        regime — and the rest skip straight to the merged-bucket path.
        Call exactly once per batch: the skip clock advances on each call.
        """
        if not self.disabled:
            return True
        self._disabled_batches += 1
        return self._disabled_batches % self.probe_every == 0

    def observe_escalation(self, certified_limit: int) -> None:
        """Raise the opening budget to a depth a serial escalation needed."""
        self.limit = self._clamp(max(self.limit, int(certified_limit)))

    def state_dict(self) -> dict:
        """The controller's full state (test/diagnostic surface)."""
        return {
            "limit": self.limit,
            "batches_tuned": self.batches_tuned,
            "floor": self.floor,
            "cap": self.cap,
            "probe_every": self.probe_every,
            "disabled": self.disabled,
            "disabled_batches": self._disabled_batches,
        }

"""Online serving layer: dynamic indexes, batched queries, snapshots.

The :mod:`repro.core` samplers reproduce the paper's data structures as
static, single-query objects.  This package turns them into a serving
system:

* :class:`~repro.engine.dynamic.DynamicLSHTables` — LSH tables that absorb
  inserts and deletes online (rank-sorted bucket insertion, tombstone
  deletes, amortized compaction) while preserving the rank exchangeability
  the fair samplers' uniformity guarantees rest on, and that report every
  mutation batch as a structured
  :class:`~repro.engine.dynamic.MutationDelta` so attached samplers can
  maintain derived per-bucket state incrementally;
* :class:`~repro.engine.batch.BatchQueryEngine` — batched query execution
  that hashes a whole batch of queries in one vectorized pass and dispatches
  to any sampler, with per-engine serving statistics;
* :class:`~repro.engine.sharded.ShardedLSHTables` /
  :class:`~repro.engine.sharded.ShardedEngine` — the scale-out layer: the
  index partitioned across ``n_shards`` dynamic shards with recorded
  placement, batches executed across shards through a thread pool, and
  per-shard candidates merged into answers byte-identical to unsharded
  serving (the exchangeable ``2^62`` rank domain makes the merge exact);
* :mod:`~repro.engine.gather` — the bounded rank-prefix gather core both
  sharded executors share: per-shard bottom-``B``-by-rank slices
  (:func:`~repro.engine.gather.bounded_shard_prefix`), the
  provably-complete prefix merge
  (:func:`~repro.engine.gather.merge_prefix_parts`) and the self-tuning
  :class:`~repro.engine.gather.PrefixBudgetController`;
* :class:`~repro.engine.procpool.ProcessShardedEngine` — the sharded layer
  over worker **processes**: each shard's dynamic tables replicated in a
  supervised worker reading the dataset's columnar buffers zero-copy through
  ``multiprocessing.shared_memory``, mutations replicated over a
  length-prefixed message protocol, crashed workers restarted from their
  shard snapshot with the mutation log replayed (in-flight requests fail
  with a typed :class:`~repro.exceptions.WorkerCrashedError` instead of
  hanging) — responses still byte-identical to unsharded serving;
* :mod:`~repro.engine.requests` — the typed request/response surface;
* :mod:`~repro.engine.snapshot` — save/load of a fitted engine, so indexes
  can be built offline and shipped to servers;
* :mod:`~repro.engine.wal` — an append-only, checksummed write-ahead log of
  mutation batches: a durable facade journals every insert/delete *before*
  applying it, so a crashed server recovers byte-identically from its
  newest checkpoint plus the WAL suffix (see ``docs/operations.md``).

Quickstart
----------
>>> from repro import MinHashFamily, PermutationFairSampler
>>> from repro.engine import BatchQueryEngine
>>> sets = [frozenset({1, 2, 3}), frozenset({1, 2, 4}), frozenset({7, 8, 9})]
>>> sampler = PermutationFairSampler(MinHashFamily(), radius=0.4, seed=0)
>>> engine = BatchQueryEngine.build(sampler, sets, seed=0)
>>> new_index = engine.insert(frozenset({1, 2, 3, 4}))
>>> responses = engine.run([frozenset({1, 2, 3, 4})])
>>> responses[0].found
True
"""

from repro.engine.batch import BatchQueryEngine
from repro.engine.dynamic import RANK_DOMAIN, DynamicLSHTables, MutationDelta
from repro.engine.gather import PrefixBudgetController, PrefixView
from repro.engine.procpool import FaultPlan, ProcessShardedEngine, WorkerSupervisor
from repro.engine.requests import EngineStats, QueryRequest, QueryResponse
from repro.engine.sharded import PLACEMENTS, ShardedEngine, ShardedLSHTables
from repro.engine.snapshot import load_engine, save_engine
from repro.engine.wal import WALRecord, WALScanReport, WriteAheadLog

__all__ = [
    "BatchQueryEngine",
    "DynamicLSHTables",
    "MutationDelta",
    "RANK_DOMAIN",
    "PLACEMENTS",
    "PrefixBudgetController",
    "PrefixView",
    "FaultPlan",
    "ProcessShardedEngine",
    "WorkerSupervisor",
    "ShardedEngine",
    "ShardedLSHTables",
    "EngineStats",
    "QueryRequest",
    "QueryResponse",
    "save_engine",
    "load_engine",
    "WriteAheadLog",
    "WALRecord",
    "WALScanReport",
]

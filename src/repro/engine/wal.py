"""Append-only, checksummed write-ahead log for engine mutations.

The durability contract of the serving stack is *log before apply*: every
insert/delete batch is appended to the :class:`WriteAheadLog` — and flushed
according to the fsync policy — **before** the in-memory tables are touched.
Recovery is then ``newest valid snapshot + WAL-suffix replay``: because the
snapshot persists the mutation RNG stream, replaying the *logical* ops after
the checkpoint reproduces the exact ranks the live engine drew, so the
recovered engine is byte-identical to one that never crashed.

On-disk format
--------------
A WAL is a directory of segment files named ``segment-<first_seq>.wal``
(zero-padded so lexicographic order equals numeric order).  Each segment
starts with the 6-byte magic ``b"RWAL1\\n"`` followed by records::

    +--------+--------+--------+------------------+
    |  seq   | length |  crc32 |     payload      |
    | uint64 | uint32 | uint32 | ``length`` bytes |
    +--------+--------+--------+------------------+

``seq`` is a monotone record sequence number (global across segments),
``crc32`` covers the payload bytes, and the payload is a pickled plain-dict
mutation op (``{"op": "insert", "points": [...]}`` etc.).  All integers are
big-endian.

Torn tails vs corruption
------------------------
A crash mid-append leaves a *torn tail*: a final record whose header or
payload is incomplete, or whose CRC does not match.  The scanner detects
this, reports it, and :meth:`WriteAheadLog.open` truncates it — a torn tail
is the expected residue of a crash, not an error.  Damage *before* valid
data (a bad CRC followed by a good record, a bad segment header, a sequence
gap) is different: replaying past it could apply a divergent history, so it
raises :class:`~repro.exceptions.WALCorruptError` instead.

Fsync policies
--------------
``always``
    ``fsync`` after every append.  Survives power loss; slowest.
``interval``
    ``flush`` after every append (data reaches the OS page cache, so a
    process crash — even ``kill -9`` — loses nothing), plus an
    opportunistic ``fsync`` at most every ``fsync_interval`` seconds to
    bound power-loss exposure.  The default.
``off``
    ``flush`` only.  Still survives process crash; power loss may lose the
    un-synced suffix.
"""

from __future__ import annotations

import io
import os
import pickle
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import InvalidParameterError, WALCorruptError, WALWriteError

__all__ = [
    "FSYNC_POLICIES",
    "WALRecord",
    "WALScanReport",
    "WriteAheadLog",
]

#: Valid fsync policies, weakest-durability last.
FSYNC_POLICIES = ("always", "interval", "off")

#: Segment file magic — identifies the format and its version.
_MAGIC = b"RWAL1\n"

#: Record header: sequence (uint64), payload length (uint32), crc32 (uint32).
_HEADER = struct.Struct(">QII")

_SEGMENT_RE = re.compile(r"^segment-(\d{20})\.wal$")

#: Refuse absurd lengths up front so a corrupted length prefix cannot make
#: the scanner attempt a multi-gigabyte read.
_MAX_RECORD_BYTES = 1 << 30


def _segment_name(first_seq: int) -> str:
    return f"segment-{first_seq:020d}.wal"


@dataclass(frozen=True)
class WALRecord:
    """One decoded WAL record: a sequence number plus its mutation op."""

    seq: int
    payload: Dict[str, Any]


@dataclass
class WALScanReport:
    """What a directory scan found — exposed for tests and operator tooling.

    Attributes
    ----------
    records:
        Number of valid records across all segments.
    last_seq:
        Sequence number of the last valid record (``-1`` when empty).
    torn_tail:
        ``(path, offset)`` of a detected torn tail, or ``None``.  The open
        path truncates the file at ``offset``.
    segments:
        Segment paths in replay order.
    """

    records: int = 0
    last_seq: int = -1
    torn_tail: Optional[Tuple[str, int]] = None
    segments: List[str] = field(default_factory=list)


class WriteAheadLog:
    """An append-only mutation journal with segment rotation.

    Parameters
    ----------
    directory:
        Directory holding the segment files; created if missing.
    fsync:
        One of :data:`FSYNC_POLICIES` (see the module docstring).
    fsync_interval:
        Maximum seconds between opportunistic fsyncs under the
        ``"interval"`` policy.
    segment_max_bytes:
        Rotate to a new segment once the current one exceeds this size.
    fault_injector:
        Optional :class:`repro.testing.faults.FaultInjector`; when set,
        the sites ``"wal.append"``, ``"wal.flush"`` and ``"wal.fsync"``
        fire inside the corresponding operations so chaos tests can
        simulate torn writes and full disks.

    Thread safety: appends are serialized by an internal lock; the facade
    additionally holds its mutation lock across log-then-apply so the log
    order always equals the apply order.
    """

    def __init__(
        self,
        directory,
        fsync: str = "interval",
        fsync_interval: float = 1.0,
        segment_max_bytes: int = 16 * 1024 * 1024,
        fault_injector=None,
        _clock: Callable[[], float] = time.monotonic,
    ):
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if not float(fsync_interval) > 0.0:
            raise InvalidParameterError("fsync_interval must be positive")
        if not int(segment_max_bytes) > len(_MAGIC):
            raise InvalidParameterError("segment_max_bytes too small to hold a segment header")
        self.directory = Path(directory)
        self.fsync = fsync
        self.fsync_interval = float(fsync_interval)
        self.segment_max_bytes = int(segment_max_bytes)
        self.fault_injector = fault_injector
        self._clock = _clock
        self._lock = threading.Lock()
        self._file: Optional[io.BufferedWriter] = None
        self._file_path: Optional[Path] = None
        self._next_seq = 0
        self._last_fsync = _clock()
        self._appended_records = 0
        self._appended_bytes = 0
        self._closed = False
        self._dirty_tail = False
        #: Offset the active segment must be truncated to before the next
        #: append, when a failed append left bytes behind (``None`` = the
        #: repair has to rediscover the boundary by scanning).
        self._dirty_offset: Optional[int] = None

    # ------------------------------------------------------------------
    # Opening and scanning
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory, **kwargs) -> "WriteAheadLog":
        """Open (creating if needed) the WAL in ``directory``.

        Scans existing segments, truncates a torn tail if one is present,
        and positions the log to append after the last valid record.
        Raises :class:`~repro.exceptions.WALCorruptError` on mid-log
        damage.
        """
        wal = cls(directory, **kwargs)
        wal.directory.mkdir(parents=True, exist_ok=True)
        report = wal.scan()
        if report.torn_tail is not None:
            path, offset = report.torn_tail
            with open(path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
        wal._next_seq = report.last_seq + 1
        return wal

    def _segment_paths(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        paths = [p for p in self.directory.iterdir() if _SEGMENT_RE.match(p.name)]
        return sorted(paths, key=lambda p: p.name)

    def scan(self) -> WALScanReport:
        """Validate every segment and report what replay would see.

        Read-only: detected torn tails are *reported*, not repaired (the
        :meth:`open` path repairs them).
        """
        report = WALScanReport()
        paths = self._segment_paths()
        expected_seq: Optional[int] = None
        for position, path in enumerate(paths):
            is_last_segment = position == len(paths) - 1
            first_seq = int(_SEGMENT_RE.match(path.name).group(1))
            if expected_seq is not None and first_seq != expected_seq:
                raise WALCorruptError(
                    f"segment {path.name} starts at seq {first_seq}, expected {expected_seq} "
                    "(missing or renamed segment)",
                    path=path,
                )
            report.segments.append(str(path))
            last_seq_in_file, torn_offset = self._scan_segment(
                path, first_seq, allow_torn_tail=is_last_segment
            )
            if torn_offset is not None:
                report.torn_tail = (str(path), torn_offset)
            if last_seq_in_file >= 0:
                report.last_seq = last_seq_in_file
                report.records += last_seq_in_file - first_seq + 1
                expected_seq = last_seq_in_file + 1
            else:
                # Segment holds no valid records (header only, or torn
                # first record): the next segment must continue from the
                # same sequence number.
                expected_seq = first_seq
        return report

    def _scan_segment(
        self, path: Path, first_seq: int, allow_torn_tail: bool
    ) -> Tuple[int, Optional[int]]:
        """Walk one segment; return (last valid seq or -1, torn-tail offset)."""
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise WALCorruptError(
                    f"bad segment magic in {path.name}: {magic!r}", path=path, offset=0
                )
            expected = first_seq
            last_valid = -1
            while True:
                record_offset = handle.tell()
                header = handle.read(_HEADER.size)
                if not header:
                    return last_valid, None
                damage = None
                payload = b""
                if len(header) < _HEADER.size:
                    damage = "truncated record header"
                else:
                    seq, length, crc = _HEADER.unpack(header)
                    if seq != expected:
                        damage = f"sequence jump (got {seq}, expected {expected})"
                    elif length > _MAX_RECORD_BYTES:
                        damage = f"implausible record length {length}"
                    else:
                        payload = handle.read(length)
                        if len(payload) < length:
                            damage = "truncated record payload"
                        elif zlib.crc32(payload) != crc:
                            damage = "payload checksum mismatch"
                if damage is None:
                    last_valid = expected
                    expected += 1
                    continue
                # Damaged record: a torn tail only if nothing follows it in
                # this segment AND this is the final segment.
                trailing = handle.read(1)
                if allow_torn_tail and not trailing:
                    return last_valid, record_offset
                raise WALCorruptError(
                    f"corrupt record in {path.name} at offset {record_offset}: {damage} "
                    "(followed by more data — not a torn tail)",
                    path=path,
                    offset=record_offset,
                )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next append will receive."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (``-1`` when empty)."""
        return self._next_seq - 1

    @property
    def appended_records(self) -> int:
        """Records appended through this handle (not counting replayed ones)."""
        return self._appended_records

    @property
    def appended_bytes(self) -> int:
        """Payload + header bytes appended through this handle."""
        return self._appended_bytes

    def _fire(self, site: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.fire(site)

    def _open_segment_for_append(self) -> None:
        """Position ``self._file`` on the segment the next record belongs in."""
        paths = self._segment_paths()
        if paths and self._dirty_tail:
            # A previous append failed mid-write; truncate the bytes it left
            # behind so the next record does not land after garbage.  The
            # leftovers can even be a *complete* record (closing the failed
            # handle flushes its buffer), so prefer the recorded pre-append
            # offset over rescanning — the failed append consumed no
            # sequence number, and its bytes must not survive either.
            last = paths[-1]
            truncate_at = self._dirty_offset
            if truncate_at is None:
                first_seq = int(_SEGMENT_RE.match(last.name).group(1))
                _, truncate_at = self._scan_segment(
                    last, first_seq, allow_torn_tail=True
                )
            if truncate_at is not None and truncate_at < last.stat().st_size:
                with open(last, "r+b") as handle:
                    handle.truncate(truncate_at)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._dirty_tail = False
            self._dirty_offset = None
        if paths:
            last = paths[-1]
            if last.stat().st_size < self.segment_max_bytes:
                self._file = open(last, "ab")
                self._file_path = last
                return
        self._rotate()

    def _rotate(self) -> None:
        if self._file is not None:
            self._sync_file(self._file)
            self._file.close()
        path = self.directory / _segment_name(self._next_seq)
        self._file = open(path, "ab")
        self._file_path = path
        if self._file.tell() == 0:
            self._file.write(_MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())

    def _sync_file(self, handle) -> None:
        self._fire("wal.fsync")
        handle.flush()
        os.fsync(handle.fileno())
        self._last_fsync = self._clock()

    def append(self, payload: Dict[str, Any]) -> int:
        """Durably append one mutation op; return its sequence number.

        Raises :class:`~repro.exceptions.WALWriteError` when the write
        fails (disk full, I/O error) — in that case nothing was logically
        appended: the sequence number is not consumed and a torn partial
        write left behind by the failure is truncated on the next open.
        """
        if self._closed:
            raise WALWriteError("append on a closed WAL")
        with self._lock:
            start_offset: Optional[int] = None
            try:
                self._fire("wal.append")
                if self._file is None:
                    self._open_segment_for_append()
                elif self._file.tell() >= self.segment_max_bytes:
                    self._rotate()
                start_offset = self._file.tell()
                blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                header = _HEADER.pack(self._next_seq, len(blob), zlib.crc32(blob))
                self._file.write(header)
                self._file.write(blob)
                self._fire("wal.flush")
                if self.fsync == "always":
                    self._sync_file(self._file)
                else:
                    self._file.flush()
                    if (
                        self.fsync == "interval"
                        and self._clock() - self._last_fsync >= self.fsync_interval
                    ):
                        self._sync_file(self._file)
            except OSError as error:
                # The mutation was NOT applied; invalidate the handle and
                # mark the tail dirty so the partial write is truncated
                # before anything else is appended.
                if self._file is not None:
                    try:
                        self._file.close()
                    except OSError:
                        pass
                    self._file = None
                self._dirty_tail = True
                self._dirty_offset = start_offset
                raise WALWriteError(f"WAL append failed: {error}") from error
            seq = self._next_seq
            self._next_seq += 1
            self._appended_records += 1
            self._appended_bytes += _HEADER.size + len(blob)
            return seq

    def sync(self) -> None:
        """Force an fsync of the active segment (no-op when nothing is open)."""
        with self._lock:
            if self._file is not None:
                self._sync_file(self._file)

    # ------------------------------------------------------------------
    # Replay and truncation
    # ------------------------------------------------------------------
    def replay(self, after_seq: int = -1) -> Iterator[WALRecord]:
        """Yield every valid record with ``seq > after_seq`` in order.

        Tolerates a torn tail on the final segment (stops before it);
        raises :class:`~repro.exceptions.WALCorruptError` on mid-log
        damage, same as :meth:`scan`.
        """
        paths = self._segment_paths()
        for position, path in enumerate(paths):
            is_last_segment = position == len(paths) - 1
            first_seq = int(_SEGMENT_RE.match(path.name).group(1))
            with open(path, "rb") as handle:
                magic = handle.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise WALCorruptError(
                        f"bad segment magic in {path.name}: {magic!r}", path=path, offset=0
                    )
                expected = first_seq
                while True:
                    record_offset = handle.tell()
                    header = handle.read(_HEADER.size)
                    if not header:
                        break
                    torn = None
                    if len(header) < _HEADER.size:
                        torn = "truncated record header"
                        payload = b""
                    else:
                        seq, length, crc = _HEADER.unpack(header)
                        if seq != expected:
                            torn = f"sequence jump (got {seq}, expected {expected})"
                            payload = b""
                        elif length > _MAX_RECORD_BYTES:
                            torn = f"implausible record length {length}"
                            payload = b""
                        else:
                            payload = handle.read(length)
                            if len(payload) < length:
                                torn = "truncated record payload"
                            elif zlib.crc32(payload) != crc:
                                torn = "payload checksum mismatch"
                    if torn is not None:
                        if is_last_segment and not handle.read(1):
                            return
                        raise WALCorruptError(
                            f"corrupt record in {path.name} at offset {record_offset}: {torn}",
                            path=path,
                            offset=record_offset,
                        )
                    if expected > after_seq:
                        yield WALRecord(seq=expected, payload=pickle.loads(payload))
                    expected += 1

    def truncate_through(self, seq: int) -> int:
        """Delete whole segments whose records are all ``<= seq``.

        Called after a snapshot checkpoint covering everything through
        ``seq`` — the deleted prefix is no longer needed for recovery.
        Only removes *entire* segments (a segment straddling ``seq`` is
        kept; replay skips its already-checkpointed prefix via
        ``after_seq``).  Returns the number of segments removed.
        """
        removed = 0
        with self._lock:
            paths = self._segment_paths()
            for position, path in enumerate(paths):
                next_first = (
                    int(_SEGMENT_RE.match(paths[position + 1].name).group(1))
                    if position + 1 < len(paths)
                    else self._next_seq
                )
                # Segment covers [first_seq, next_first); removable when the
                # whole range is checkpointed and it is not the active file.
                if next_first - 1 <= seq and path != self._file_path:
                    path.unlink()
                    removed += 1
                else:
                    break
        return removed

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync and close the active segment."""
        with self._lock:
            if self._file is not None:
                try:
                    self._sync_file(self._file)
                finally:
                    self._file.close()
                    self._file = None
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Mutable LSH tables: inserts, tombstone deletes, amortized compaction.

:class:`DynamicLSHTables` extends the static
:class:`~repro.lsh.tables.LSHTables` storage with online updates so the
serving engine can absorb churn without rebuilding the index:

* **insert** hashes the new point with the same ``L`` functions and splices
  it into each bucket's rank-sorted arrays (``O(L * (K + bucket size))``,
  versus ``O(n * L * K)`` for a full refit);
* **delete** is a tombstone: the point is marked dead in a global liveness
  mask and queries filter it out lazily, so a delete is ``O(1)``;
* when the fraction of un-swept tombstones exceeds
  ``max_tombstone_fraction``, every bucket is compacted in one sweep.  The
  sweep visits all ``O(n * L)`` stored references, so with a trigger every
  ``max_tombstone_fraction * n`` deletes the amortized cost is
  ``O(L / max_tombstone_fraction)`` per delete — constant per (delete,
  table) pair, far below a refit, but a sweep is a real pause on large
  indexes; size serving budgets accordingly.

**Ranks under churn.**  The fair samplers' uniformity rests on every point's
rank being exchangeable with every other's.  A static index uses a
permutation of ``0 .. n-1``; under inserts that domain would have to be
re-randomized on every update.  Instead, dynamic tables draw each point's
rank independently and uniformly from a fixed ``2^62``-sized domain (both at
``fit`` time and per insert), which keeps all ranks i.i.d. — hence
exchangeable — forever, at a collision probability of ``~n^2 / 2^62``
(irrelevant; ties only cost a broken tie, not correctness).  The table layer
reports this via :attr:`rank_domain` so rank-segment queries (Section 4)
partition the right interval.

Dataset indices are *stable*: a deleted slot keeps its index forever and
compaction never renumbers, so historical responses and ``exclude_index``
arguments stay meaningful.  The slot's *point object* survives only until
the next compaction sweep, which releases it (the dataset entry becomes
``None``) — queries never dereference dead slots, but callers holding old
indices should not either once they have deleted them.  The engine's
snapshot layer persists the liveness mask alongside the buckets.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.lsh.family import LSHFamily
from repro.lsh.tables import Bucket, LSHTables
from repro.rng import SeedLike, spawn_rngs
from repro.types import Dataset, Point

#: Exclusive upper bound of the dynamic rank domain.  62 bits keeps every
#: rank representable in a signed int64 with headroom for searchsorted bounds.
RANK_DOMAIN = 1 << 62


class DynamicLSHTables(LSHTables):
    """``L`` LSH tables over a mutable dataset.

    Parameters beyond :class:`~repro.lsh.tables.LSHTables`:

    use_ranks:
        Whether buckets carry rank-sorted members (required by the fair
        samplers; the standard-LSH baseline can turn it off).
    max_tombstone_fraction:
        When pending tombstones exceed this fraction of stored slots, every
        bucket is compacted in one sweep.
    seed:
        Also drives the rank draws for ``fit`` and every ``insert``.
    """

    def __init__(
        self,
        family: LSHFamily,
        l: int,
        seed: SeedLike = None,
        use_ranks: bool = True,
        max_tombstone_fraction: float = 0.25,
        *,
        _functions=None,
    ):
        super().__init__(family, l, seed=seed, _functions=_functions)
        if not 0.0 < max_tombstone_fraction <= 1.0:
            raise InvalidParameterError(
                f"max_tombstone_fraction must be in (0, 1], got {max_tombstone_fraction}"
            )
        self._use_ranks = bool(use_ranks)
        self.max_tombstone_fraction = float(max_tombstone_fraction)
        # The rank/mutation stream is spawned off the construction stream so
        # the two stay independent and a snapshot can restore them separately.
        self._mut_rng = spawn_rngs(self._rng, 1)[0]
        self._points: list = []
        self._alive: np.ndarray = np.empty(0, dtype=bool)
        self._ranks_buf: np.ndarray = np.empty(0, dtype=np.int64)
        self._num_live = 0
        # Indices tombstoned since the last compaction sweep.  Keeping the
        # set (rather than a counter) lets compact() touch only the buckets
        # of *new* tombstones, so per-delete cost stays amortized O(1) over
        # the index's whole lifetime.
        self._pending: set = set()
        self.rebuilds_triggered = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, ranks: Optional[np.ndarray] = None) -> "DynamicLSHTables":
        """Build the tables, drawing i.i.d. dynamic ranks unless given.

        Passing explicit *ranks* is supported for tests; they must then come
        from the same ``[0, RANK_DOMAIN)`` distribution or insert
        exchangeability is lost.
        """
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot build LSH tables over an empty dataset")
        if ranks is not None and not self._use_ranks:
            # Ranked buckets over a rankless mutation path would make the
            # first insert fail halfway through the tables.
            raise InvalidParameterError(
                "tables were configured with use_ranks=False; cannot fit with explicit ranks"
            )
        if ranks is None and self._use_ranks:
            ranks = self._draw_ranks(n)
        super().fit(dataset, ranks=ranks)
        # Keep an owned, growable copy; set data stays a Python list (the
        # container samplers index into), vector data becomes a list of rows.
        self._points = list(dataset)
        self._alive = np.ones(n, dtype=bool)
        if self._ranks is not None:
            # Ranks live in a capacity-doubled buffer (self._ranks is a view
            # of its prefix) so single-point inserts are amortized O(1).
            self._ranks_buf = np.array(self._ranks, dtype=np.int64)
            self._ranks = self._ranks_buf[:n]
        self._num_live = n
        self._pending.clear()
        return self

    def _draw_ranks(self, count: int) -> np.ndarray:
        return self._mut_rng.integers(0, RANK_DOMAIN, size=count, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rank_domain(self) -> int:
        return RANK_DOMAIN

    @property
    def dataset(self) -> list:
        """The live point container (grows in place on insert).

        Samplers attached to these tables hold a reference to this very list,
        so inserted points become visible to them without a refit.  A deleted
        slot keeps its point only until the next compaction sweep releases it
        (the entry becomes ``None``); consult :attr:`alive` before trusting
        one.
        """
        self._check_fitted()
        return self._points

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness mask over all stored slots (dead = tombstoned)."""
        return self._alive[: self._n]

    @property
    def num_live(self) -> int:
        """Number of live (non-tombstoned) points."""
        return self._num_live

    def ensure_clean_buckets(self) -> None:
        """Sweep pending tombstones so buckets reference live points only."""
        self.compact()

    @property
    def pending_tombstones(self) -> int:
        """Dead references still present in bucket arrays (cleared by compaction)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, point: Point, rank: Optional[int] = None) -> int:
        """Add *point* to every table; returns its (stable) dataset index.

        The point receives a fresh uniform rank from the dynamic domain (or
        *rank*, for tests), keeping it exchangeable with every indexed point —
        the property the fair samplers' uniformity proof needs.
        """
        return self.insert_many([point], ranks=None if rank is None else [rank])[0]

    def insert_many(self, points: Dataset, ranks=None) -> List[int]:
        """Bulk insert; returns the new (stable) dataset indices in order.

        Amortizes the two per-insert costs across the batch: all points are
        hashed against all ``L`` tables in one vectorized
        :meth:`query_keys_many` pass, and points landing in the same bucket
        are spliced with a single merge instead of one array rewrite each.
        """
        self._check_fitted()
        points = list(points)
        count = len(points)
        if count == 0:
            return []
        if self._use_ranks:
            if ranks is None:
                new_ranks = self._draw_ranks(count)
            else:
                new_ranks = np.asarray(ranks, dtype=np.int64)
                if new_ranks.shape != (count,):
                    raise InvalidParameterError(
                        f"ranks must have shape ({count},), got {new_ranks.shape}"
                    )
        else:
            if ranks is not None:
                raise InvalidParameterError("tables were built without ranks; cannot insert ranks")
            new_ranks = None
        start = self._n
        keys_per_point = self.query_keys_many(points)
        for table_index, table in enumerate(self._tables):
            groups: dict = {}
            for offset, keys in enumerate(keys_per_point):
                groups.setdefault(keys[table_index], []).append(offset)
            for key, offsets in groups.items():
                bucket = table.get(key)
                if bucket is not None and len(offsets) == 1:
                    # Most inserts splice one point into an existing bucket.
                    offset = offsets[0]
                    table[key] = bucket.inserted(
                        start + offset,
                        None if new_ranks is None else int(new_ranks[offset]),
                    )
                    continue
                added_indices = np.asarray([start + o for o in offsets], dtype=np.intp)
                added_ranks = None if new_ranks is None else new_ranks[offsets]
                if bucket is None:
                    if len(offsets) == 1:
                        # Fresh singleton bucket: already trivially sorted.
                        table[key] = Bucket(added_indices, added_ranks)
                    else:
                        table[key] = Bucket.from_members(added_indices, added_ranks)
                else:
                    table[key] = Bucket.from_members(
                        np.concatenate([bucket.indices, added_indices]),
                        None
                        if bucket.ranks is None
                        else np.concatenate([bucket.ranks, added_ranks]),
                    )
        self._points.extend(points)
        self._grow_slots(new_ranks, count)
        return list(range(start, start + count))

    def _grow_slots(self, new_ranks: Optional[np.ndarray], count: int) -> None:
        """Extend the per-slot arrays (liveness, ranks) by *count* live entries.

        Both arrays grow by capacity doubling, so a stream of single-point
        inserts stays amortized O(1) per slot rather than O(n) reallocations.
        """
        needed = self._n + count
        if needed > self._alive.size:
            new_capacity = max(8, 2 * self._alive.size, needed)
            grown = np.zeros(new_capacity, dtype=bool)
            grown[: self._n] = self._alive[: self._n]
            self._alive = grown
        self._alive[self._n : needed] = True
        if self._ranks is not None:
            if needed > self._ranks_buf.size:
                new_capacity = max(8, 2 * self._ranks_buf.size, needed)
                grown_ranks = np.zeros(new_capacity, dtype=np.int64)
                grown_ranks[: self._n] = self._ranks_buf[: self._n]
                self._ranks_buf = grown_ranks
            self._ranks_buf[self._n : needed] = new_ranks
            self._ranks = self._ranks_buf[:needed]
        self._n = needed
        self._num_live += count

    def delete(self, index: int) -> None:
        """Tombstone the point at *index*; queries stop returning it at once.

        Triggers a full bucket compaction when the pending-tombstone fraction
        crosses :attr:`max_tombstone_fraction`.
        """
        self._check_fitted()
        if not 0 <= index < self._n:
            raise InvalidParameterError(f"index {index} out of range [0, {self._n})")
        if not self._alive[index]:
            raise InvalidParameterError(f"point {index} was already deleted")
        self._alive[index] = False
        self._num_live -= 1
        self._pending.add(index)
        # Trigger on the *live* count: with total slots as the denominator,
        # long-lived churny indexes would compact ever more rarely relative
        # to the data actually being served.
        if len(self._pending) > self.max_tombstone_fraction * max(1, self._num_live):
            self.compact()

    def compact(self) -> None:
        """Sweep every bucket, dropping tombstoned members.

        Indices are *not* renumbered — live points keep their identity — so
        no rehashing is needed: a live point's bucket keys are unchanged.
        """
        self._check_fitted()
        if not self._pending:
            return
        # Buckets average O(1) members (n references spread over up to n
        # buckets per table), where numpy fancy-indexing overhead per bucket
        # dwarfs the work; a plain-Python membership scan is ~10x faster,
        # and a set-disjointness pre-check skips clean buckets entirely.
        # Only tombstones created since the last sweep can appear in buckets
        # (earlier ones were already swept), so the slot-release loop below is
        # bounded by the pending set and per-sweep work never grows with
        # lifetime deletes.  The bucket scan itself still visits every stored
        # reference once — that is the O(L / max_tombstone_fraction)-per-delete
        # amortized cost documented in the module docstring.
        alive = self._alive.tolist()
        dead = self._pending
        for table in self._tables:
            dead_keys: List[Hashable] = []
            for key, bucket in table.items():
                members = bucket.indices.tolist()
                if dead.isdisjoint(members):
                    continue
                keep = [position for position, index in enumerate(members) if alive[index]]
                if not keep:
                    dead_keys.append(key)
                else:
                    table[key] = Bucket(
                        bucket.indices[keep],
                        None if bucket.ranks is None else bucket.ranks[keep],
                    )
            for key in dead_keys:
                del table[key]
        # Release the swept points' memory.  Slots are deliberately not
        # renumbered — index stability is what lets samplers, responses and
        # snapshots keep referring to points across mutations — so the slot
        # itself (a None entry, a rank, a liveness bit) is the only per-delete
        # residue kept for the index's lifetime.
        for index in dead:
            self._points[index] = None
        self._pending.clear()
        self.rebuilds_triggered += 1

    # ------------------------------------------------------------------
    # Queries (liveness-aware)
    # ------------------------------------------------------------------
    def query_buckets(self, query: Point) -> List[Bucket]:
        """Colliding buckets with tombstoned members filtered out."""
        buckets = super().query_buckets(query)
        if not self._pending:
            return buckets
        alive = self._alive
        filtered: List[Bucket] = []
        for bucket in buckets:
            if len(bucket) == 0:
                filtered.append(bucket)
                continue
            keep = alive[bucket.indices]
            filtered.append(bucket if keep.all() else bucket.filtered(keep))
        return filtered

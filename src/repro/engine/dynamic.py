"""Mutable LSH tables: inserts, tombstone deletes, amortized compaction.

:class:`DynamicLSHTables` extends the static
:class:`~repro.lsh.tables.LSHTables` storage with online updates so the
serving engine can absorb churn without rebuilding the index:

* **insert** hashes the new point with the same ``L`` functions and splices
  it into each bucket's rank-sorted arrays (``O(L * (K + bucket size))``,
  versus ``O(n * L * K)`` for a full refit);
* **delete** is a tombstone: the point is marked dead in a global liveness
  mask and queries filter it out lazily, so a delete is ``O(1)`` (the
  buckets it vacated are resolved later, in one vectorized hashing pass
  over the whole batch, when the mutation delta is read);
* when the fraction of un-swept tombstones exceeds
  ``max_tombstone_fraction``, every bucket is compacted in one sweep.  The
  sweep visits all ``O(n * L)`` stored references, so with a trigger every
  ``max_tombstone_fraction * n`` deletes the amortized cost is
  ``O(L / max_tombstone_fraction)`` per delete — constant per (delete,
  table) pair, far below a refit, but a sweep is a real pause on large
  indexes; size serving budgets accordingly.

**Mutation deltas.**  Every mutation is additionally recorded in a
:class:`MutationDelta` — per table, which bucket keys gained which members,
which lost which, and which buckets a compaction sweep rewrote.  The
attached sampler drains the delta through
:meth:`~repro.core.base.LSHNeighborSampler.notify_update` (the serving
engine triggers this once per mutation batch) and uses it to maintain
derived per-bucket state incrementally: the Section 4 sampler merges
inserted members into the ``L`` affected count-distinct sketches and
rebuilds only the buckets that saw deletions, turning sketch upkeep from
``O(total bucket refs)`` per batch into ``O(batch x L)``.

**Ranks under churn.**  The fair samplers' uniformity rests on every point's
rank being exchangeable with every other's.  A static index uses a
permutation of ``0 .. n-1``; under inserts that domain would have to be
re-randomized on every update.  Instead, dynamic tables draw each point's
rank independently and uniformly from a fixed ``2^62``-sized domain (both at
``fit`` time and per insert), which keeps all ranks i.i.d. — hence
exchangeable — forever, at a collision probability of ``~n^2 / 2^62``
(irrelevant; ties only cost a broken tie, not correctness).  The table layer
reports this via :attr:`rank_domain` so rank-segment queries (Section 4)
partition the right interval.

Dataset indices are *stable*: a deleted slot keeps its index forever and
compaction never renumbers, so historical responses and ``exclude_index``
arguments stay meaningful.  The slot's *point object* survives only until
the next compaction sweep, which releases it (the dataset entry becomes
``None``) — queries never dereference dead slots, but callers holding old
indices should not either once they have deleted them.  The engine's
snapshot layer persists the liveness mask alongside the buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

import numpy as np

from repro.store import DatasetStore, make_store
from repro.store.points import points_share_store
from repro.exceptions import (
    AlreadyDeletedError,
    EmptyDatasetError,
    InvalidParameterError,
    SlotOutOfRangeError,
)
from repro.lsh.family import LSHFamily
from repro.lsh.tables import Bucket, LSHTables
from repro.rng import SeedLike, spawn_rngs
from repro.types import Dataset, Point

#: Exclusive upper bound of the dynamic rank domain.  62 bits keeps every
#: rank representable in a signed int64 with headroom for searchsorted bounds.
RANK_DOMAIN = 1 << 62


@dataclass
class MutationDelta:
    """Structured record of index mutations since the last drain.

    :class:`DynamicLSHTables` accumulates one of these across mutation calls
    and hands it to the attached sampler through
    :meth:`~repro.lsh.tables.LSHTables.drain_delta` /
    :meth:`~repro.core.base.LSHNeighborSampler.notify_update`.  Samplers with
    per-bucket derived state (the Section 4 count-distinct sketches) use it
    to update only the buckets a mutation batch actually touched — ``O(batch
    x L)`` work — instead of rebuilding every bucket's state from scratch.

    The per-table maps are keyed by bucket key, exactly as the table dicts
    are, so a consumer can look the affected buckets up directly.

    Attributes
    ----------
    inserted:
        Slot indices added since the last drain, in insertion order.
    deleted:
        Slot indices tombstoned since the last drain.
    inserted_members:
        One dict per table: bucket key -> slot indices spliced into that
        bucket by inserts.  Inserted members are *mergeable* into derived
        per-bucket state (sketches are union-closed).
    tombstoned_members:
        One dict per table: bucket key -> slot indices tombstoned out of
        that bucket.  Tombstones cannot be subtracted from a sketch, so
        consumers must rebuild these buckets' derived state from the
        surviving members.
    compacted_keys:
        One set per table: bucket keys rewritten (or dropped entirely) by
        compaction sweeps.  Compaction never changes a bucket's *live*
        membership, but consumers that track per-bucket state keyed by
        bucket key should treat these like deletion-affected buckets — a
        swept bucket may have disappeared from the table altogether.
    overflowed:
        True when the record was collapsed because it outgrew its bound
        (mutations kept accumulating with no consumer draining them).  An
        overflowed delta's per-item fields are incomplete; the only safe
        response is a full rebuild of derived state, exactly as for a
        missing (``None``) delta.
    start_epoch:
        The table layer's :attr:`~repro.lsh.tables.LSHTables.mutation_epoch`
        at the moment this record started accumulating.  A consumer whose
        last synchronized epoch differs has a *gap* — some earlier record
        went to a different consumer — and must rebuild in full rather than
        apply this delta incrementally.
    """

    inserted: List[int] = field(default_factory=list)
    deleted: List[int] = field(default_factory=list)
    inserted_members: List[Dict[Hashable, List[int]]] = field(default_factory=list)
    tombstoned_members: List[Dict[Hashable, List[int]]] = field(default_factory=list)
    compacted_keys: List[Set[Hashable]] = field(default_factory=list)
    overflowed: bool = False
    start_epoch: int = 0

    @classmethod
    def empty(cls, num_tables: int, start_epoch: int = 0) -> "MutationDelta":
        """A delta for *num_tables* tables with nothing recorded yet."""
        return cls(
            inserted=[],
            deleted=[],
            inserted_members=[{} for _ in range(num_tables)],
            tombstoned_members=[{} for _ in range(num_tables)],
            compacted_keys=[set() for _ in range(num_tables)],
            start_epoch=start_epoch,
        )

    @property
    def num_tables(self) -> int:
        """Number of tables the per-table maps describe."""
        return len(self.inserted_members)

    @property
    def is_empty(self) -> bool:
        """True when no mutation has been recorded since the last drain."""
        return not (
            self.inserted
            or self.deleted
            or self.overflowed
            or any(self.compacted_keys)
        )

    def rebuild_keys(self, table_index: int) -> Set[Hashable]:
        """Bucket keys of *table_index* whose derived state must be rebuilt.

        These are the buckets that saw deletions or compaction; merging is
        impossible there, only a targeted rebuild from the surviving members
        is correct.
        """
        return set(self.tombstoned_members[table_index]) | self.compacted_keys[table_index]


class DynamicLSHTables(LSHTables):
    """``L`` LSH tables over a mutable dataset.

    Parameters beyond :class:`~repro.lsh.tables.LSHTables`:

    use_ranks:
        Whether buckets carry rank-sorted members (required by the fair
        samplers; the standard-LSH baseline can turn it off).
    max_tombstone_fraction:
        When pending tombstones exceed this fraction of stored slots, every
        bucket is compacted in one sweep.
    seed:
        Also drives the rank draws for ``fit`` and every ``insert``.
    """

    def __init__(
        self,
        family: LSHFamily,
        l: int,
        seed: SeedLike = None,
        use_ranks: bool = True,
        max_tombstone_fraction: float = 0.25,
        *,
        _functions=None,
    ):
        super().__init__(family, l, seed=seed, _functions=_functions)
        if not 0.0 < max_tombstone_fraction <= 1.0:
            raise InvalidParameterError(
                f"max_tombstone_fraction must be in (0, 1], got {max_tombstone_fraction}"
            )
        self._use_ranks = bool(use_ranks)
        self.max_tombstone_fraction = float(max_tombstone_fraction)
        # The rank/mutation stream is spawned off the construction stream so
        # the two stay independent and a snapshot can restore them separately.
        self._mut_rng = spawn_rngs(self._rng, 1)[0]
        self._points: list = []
        self._alive: np.ndarray = np.empty(0, dtype=bool)
        self._ranks_buf: np.ndarray = np.empty(0, dtype=np.int64)
        self._num_live = 0
        # Indices tombstoned since the last compaction sweep.  Keeping the
        # set (rather than a counter) lets compact() touch only the buckets
        # of *new* tombstones, so per-delete cost stays amortized O(1) over
        # the index's whole lifetime.
        self._pending: set = set()
        self.rebuilds_triggered = 0
        # Mutations accumulated since the last drain_delta(); the serving
        # engine's per-batch sampler sync consumes this so derived per-bucket
        # state (the Section 4 sketches) is maintained incrementally.
        self._delta = MutationDelta.empty(self.l)
        # Mutations whose per-table bucket keys have not been folded into the
        # delta yet.  Keeping the raw records and resolving them only when
        # the delta is read keeps the mutation hot path lean: a delete stays
        # O(1) (the point object is captured so it survives compaction), and
        # an insert batch just parks the key lists it computed anyway.
        self._unresolved_deletes: list = []
        self._unresolved_inserts: list = []
        # Shared columnar store for the vectorized candidate-evaluation
        # pipeline: None = not built yet, False = no columnar form applies.
        # Attached samplers score candidates against this one store, so it is
        # kept in sync by insert_many/compact instead of rebuilt per batch.
        self._store = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, ranks: Optional[np.ndarray] = None) -> "DynamicLSHTables":
        """Build the tables, drawing i.i.d. dynamic ranks unless given.

        Passing explicit *ranks* is supported for tests; they must then come
        from the same ``[0, RANK_DOMAIN)`` distribution or insert
        exchangeability is lost.
        """
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot build LSH tables over an empty dataset")
        if ranks is not None and not self._use_ranks:
            # Ranked buckets over a rankless mutation path would make the
            # first insert fail halfway through the tables.
            raise InvalidParameterError(
                "tables were configured with use_ranks=False; cannot fit with explicit ranks"
            )
        if ranks is None and self._use_ranks:
            ranks = self._draw_ranks(n)
        super().fit(dataset, ranks=ranks)
        # Keep an owned, growable copy; set data stays a Python list (the
        # container samplers index into), vector data becomes a list of rows.
        self._points = list(dataset)
        self._alive = np.ones(n, dtype=bool)
        if self._ranks is not None:
            # Ranks live in a capacity-doubled buffer (self._ranks is a view
            # of its prefix) so single-point inserts are amortized O(1).
            self._ranks_buf = np.array(self._ranks, dtype=np.int64)
            self._ranks = self._ranks_buf[:n]
        self._num_live = n
        self._pending.clear()
        # A refit supersedes any unconsumed mutation history.
        self._delta = MutationDelta.empty(self.l, start_epoch=self.mutation_epoch)
        self._unresolved_deletes = []
        self._unresolved_inserts = []
        self._store = None  # rebuilt lazily over the fresh point container
        return self

    def _draw_ranks(self, count: int) -> np.ndarray:
        return self._mut_rng.integers(0, RANK_DOMAIN, size=count, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rank_domain(self) -> int:
        """The fixed ``2^62`` i.i.d. rank domain (see the module docstring)."""
        return RANK_DOMAIN

    @property
    def dataset(self) -> list:
        """The live point container (grows in place on insert).

        Samplers attached to these tables hold a reference to this very list,
        so inserted points become visible to them without a refit.  A deleted
        slot keeps its point only until the next compaction sweep releases it
        (the entry becomes ``None``); consult :attr:`alive` before trusting
        one.
        """
        self._check_fitted()
        return self._points

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness mask over all stored slots (dead = tombstoned)."""
        return self._alive[: self._n]

    @property
    def point_store(self) -> Optional[DatasetStore]:
        """The shared columnar store over all slots, or ``None``.

        Built lazily from the live point container and then maintained in
        place: inserts append rows, compaction releases the swept slots'
        payload.  Attached samplers read it through
        :meth:`~repro.core.base.NeighborSampler._active_store`, so one store
        serves every sampler bound to these tables.  ``None`` means the data
        has no columnar form and candidate scoring falls back to the scalar
        loop.
        """
        self._check_fitted()
        if self._store is None:
            self._store = make_store(self._points)
            if self._store is None:
                self._store = False
        return self._store or None

    @property
    def num_live(self) -> int:
        """Number of live (non-tombstoned) points."""
        return self._num_live

    def ensure_clean_buckets(self) -> None:
        """Sweep pending tombstones so buckets reference live points only."""
        self.compact()

    @property
    def pending_tombstones(self) -> int:
        """Dead references still present in bucket arrays (cleared by compaction)."""
        return len(self._pending)

    def peek_delta(self) -> MutationDelta:
        """The unconsumed :class:`MutationDelta` (without draining it)."""
        self._resolve_delta()
        return self._delta

    def _resolve_delta(self) -> None:
        """Fold mutations recorded since the last read into the delta's maps.

        Deferred so the mutation hot path stays lean: tombstoned points are
        hashed against all ``L`` tables here, in one vectorized
        :meth:`query_keys_many` pass per delta read (a ``delete`` itself does
        no hashing), and insert batches are grouped into per-table
        ``inserted_members`` from the key lists ``insert_many`` computed
        anyway.  The work is paid where the record is consumed — the
        sampler's per-batch sync — not on every mutation call.
        """
        if self._delta.overflowed:
            # The per-item record is already incomplete; resolving the tail
            # would be wasted work, the consumer must rebuild regardless.
            self._unresolved_deletes.clear()
            self._unresolved_inserts.clear()
            return
        if self._unresolved_deletes:
            keys_per_point = self.query_keys_many(
                [point for _, point in self._unresolved_deletes]
            )
            for (index, _), keys in zip(self._unresolved_deletes, keys_per_point):
                for table_index, key in enumerate(keys):
                    self._delta.tombstoned_members[table_index].setdefault(key, []).append(index)
            self._unresolved_deletes.clear()
        if self._unresolved_inserts:
            inserted_members = self._delta.inserted_members
            for start, keys_per_point in self._unresolved_inserts:
                for offset, keys in enumerate(keys_per_point):
                    index = start + offset
                    for table_index, key in enumerate(keys):
                        inserted_members[table_index].setdefault(key, []).append(index)
            self._unresolved_inserts.clear()

    def drain_delta(self) -> MutationDelta:
        """Return and reset the mutations accumulated since the last drain.

        The delta is single-consumer: whoever drains it owns the record, and
        the tables start accumulating a fresh one.  The serving engine drains
        once per mutation batch through the attached sampler's
        :meth:`~repro.core.base.LSHNeighborSampler.notify_update`, which lets
        the Section 4 sampler fold a batch into only the affected bucket
        sketches instead of rebuilding all of them.
        """
        self._resolve_delta()
        delta = self._delta
        self._delta = MutationDelta.empty(self.l, start_epoch=self.mutation_epoch)
        return delta

    def discard_delta(self) -> None:
        """Drop the unconsumed mutation record without resolving it.

        Cheaper than :meth:`drain_delta` — no hashing or grouping happens —
        for consumers (samplers without derived per-bucket state) that only
        need the record out of the way so it cannot accumulate unboundedly.
        """
        self._delta = MutationDelta.empty(self.l, start_epoch=self.mutation_epoch)
        self._unresolved_deletes.clear()
        self._unresolved_inserts.clear()

    def _maybe_overflow_delta(self) -> None:
        """Collapse the unconsumed delta when it outgrows its bound.

        With no consumer draining it (standalone table usage), the record —
        and the deleted point objects the unresolved queue pins — would grow
        with lifetime mutations.  Past ``max(1024, 2 * num_live)`` recorded
        mutations the per-item history stops being cheaper than a rebuild
        anyway, so it is dropped and replaced by an ``overflowed`` marker;
        memory stays bounded by the live index size.
        """
        delta = self._delta
        if len(delta.inserted) + len(delta.deleted) <= max(1024, 2 * self._num_live):
            return
        # The collapsed record still covers everything since the original
        # start, so the start epoch is preserved.
        self._delta = MutationDelta.empty(self.l, start_epoch=delta.start_epoch)
        self._delta.overflowed = True
        self._unresolved_deletes.clear()
        self._unresolved_inserts.clear()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, point: Point, rank: Optional[int] = None) -> int:
        """Add *point* to every table; returns its (stable) dataset index.

        The point receives a fresh uniform rank from the dynamic domain (or
        *rank*, for tests), keeping it exchangeable with every indexed point —
        the property the fair samplers' uniformity proof needs.
        """
        return self.insert_many([point], ranks=None if rank is None else [rank])[0]

    def insert_many(self, points: Dataset, ranks=None) -> List[int]:
        """Bulk insert; returns the new (stable) dataset indices in order.

        Amortizes the two per-insert costs across the batch: all points are
        hashed against all ``L`` tables in one vectorized
        :meth:`query_keys_many` pass, and points landing in the same bucket
        are spliced with a single merge instead of one array rewrite each.
        """
        self._check_fitted()
        points = list(points)
        count = len(points)
        if count == 0:
            return []
        new_ranks = self._checked_insert_ranks(count, ranks)
        start = self._n
        keys_per_point = self.query_keys_many(points)
        for table_index, table in enumerate(self._tables):
            groups: dict = {}
            for offset, keys in enumerate(keys_per_point):
                groups.setdefault(keys[table_index], []).append(offset)
            for key, offsets in groups.items():
                bucket = table.get(key)
                if bucket is not None and len(offsets) == 1:
                    # Most inserts splice one point into an existing bucket.
                    offset = offsets[0]
                    table[key] = bucket.inserted(
                        start + offset,
                        None if new_ranks is None else int(new_ranks[offset]),
                    )
                    continue
                added_indices = np.asarray([start + o for o in offsets], dtype=np.intp)
                added_ranks = None if new_ranks is None else new_ranks[offsets]
                if bucket is None:
                    if len(offsets) == 1:
                        # Fresh singleton bucket: already trivially sorted.
                        table[key] = Bucket(added_indices, added_ranks)
                    else:
                        table[key] = Bucket.from_members(added_indices, added_ranks)
                else:
                    table[key] = Bucket.from_members(
                        np.concatenate([bucket.indices, added_indices]),
                        None
                        if bucket.ranks is None
                        else np.concatenate([bucket.ranks, added_ranks]),
                    )
        self._points.extend(points)
        # A store-backed point container (out-of-core tiers) routes extend()
        # into the store itself; appending again would duplicate the rows.
        if self._store not in (None, False) and not points_share_store(
            self._points, self._store
        ):
            try:
                self._store.append(points)
            except Exception:
                # The batch does not fit the columnar layout (e.g. a new
                # dimensionality); scoring falls back to the scalar loop.
                self._store = False
        self._grow_slots(new_ranks, count)
        indices = list(range(start, start + count))
        self._delta.inserted.extend(indices)
        # Park the key lists for the delta; they are grouped into per-table
        # inserted_members only when the delta is read (see
        # _resolve_delta), keeping the insert path itself lean.
        self._unresolved_inserts.append((start, keys_per_point))
        self.mutation_epoch += 1
        self._maybe_overflow_delta()
        return indices

    def _checked_insert_ranks(self, count: int, ranks) -> Optional[np.ndarray]:
        """Validate (or draw) the ranks of an insert batch of size *count*.

        Shared by the unsharded and sharded mutation paths so the rank
        contract — explicit ranks must match the batch shape, rankless
        tables reject them, and fresh draws come from the mutation stream —
        cannot drift between the two.
        """
        if self._use_ranks:
            if ranks is None:
                return self._draw_ranks(count)
            new_ranks = np.asarray(ranks, dtype=np.int64)
            if new_ranks.shape != (count,):
                raise InvalidParameterError(
                    f"ranks must have shape ({count},), got {new_ranks.shape}"
                )
            return new_ranks
        if ranks is not None:
            raise InvalidParameterError("tables were built without ranks; cannot insert ranks")
        return None

    def _grow_slots(self, new_ranks: Optional[np.ndarray], count: int) -> None:
        """Extend the per-slot arrays (liveness, ranks) by *count* live entries.

        Both arrays grow by capacity doubling, so a stream of single-point
        inserts stays amortized O(1) per slot rather than O(n) reallocations.
        """
        needed = self._n + count
        if needed > self._alive.size:
            new_capacity = max(8, 2 * self._alive.size, needed)
            grown = np.zeros(new_capacity, dtype=bool)
            grown[: self._n] = self._alive[: self._n]
            self._alive = grown
        self._alive[self._n : needed] = True
        if self._ranks is not None:
            if needed > self._ranks_buf.size:
                new_capacity = max(8, 2 * self._ranks_buf.size, needed)
                grown_ranks = np.zeros(new_capacity, dtype=np.int64)
                grown_ranks[: self._n] = self._ranks_buf[: self._n]
                self._ranks_buf = grown_ranks
            self._ranks_buf[self._n : needed] = new_ranks
            self._ranks = self._ranks_buf[:needed]
        self._n = needed
        self._num_live += count

    def delete(self, index: int) -> None:
        """Tombstone the point at *index*; queries stop returning it at once.

        O(1): the mutation delta's record of which buckets lost the member
        is resolved lazily — all of a batch's tombstoned points are hashed
        in one vectorized pass when the delta is next read.  Triggers a full
        bucket compaction when the pending-tombstone fraction crosses
        :attr:`max_tombstone_fraction`.

        Raises
        ------
        SlotOutOfRangeError
            (also an :class:`IndexError`) when *index* is outside ``[0, n)``.
        AlreadyDeletedError
            (also a :class:`KeyError`) when the slot is already tombstoned.
        Both are raised before any bookkeeping: a failed delete is never
        recorded in the :class:`MutationDelta`, never enters the pending
        tombstone set, and never moves the compaction trigger.
        """
        self._check_fitted()
        if not 0 <= index < self._n:
            raise SlotOutOfRangeError(f"index {index} out of range [0, {self._n})")
        if not self._alive[index]:
            raise AlreadyDeletedError(f"point {index} was already deleted")
        # Capture the point object while it still exists (a compaction sweep
        # — possibly the one triggered below — releases the slot's entry);
        # its bucket keys are resolved lazily, in one vectorized pass per
        # delta read, so the delete itself does no hashing.
        self._unresolved_deletes.append((index, self._points[index]))
        self._delta.deleted.append(index)
        self.mutation_epoch += 1
        self._maybe_overflow_delta()
        self._alive[index] = False
        self._num_live -= 1
        self._pending.add(index)
        # Trigger on the *live* count: with total slots as the denominator,
        # long-lived churny indexes would compact ever more rarely relative
        # to the data actually being served.
        if len(self._pending) > self.max_tombstone_fraction * max(1, self._num_live):
            self.compact()

    def compact(self) -> None:
        """Sweep every bucket, dropping tombstoned members.

        Indices are *not* renumbered — live points keep their identity — so
        no rehashing is needed: a live point's bucket keys are unchanged.
        """
        self._check_fitted()
        if not self._pending:
            return
        # Buckets average O(1) members (n references spread over up to n
        # buckets per table), where numpy fancy-indexing overhead per bucket
        # dwarfs the work; a plain-Python membership scan is ~10x faster,
        # and a set-disjointness pre-check skips clean buckets entirely.
        # Only tombstones created since the last sweep can appear in buckets
        # (earlier ones were already swept), so the slot-release loop below is
        # bounded by the pending set and per-sweep work never grows with
        # lifetime deletes.  The bucket scan itself still visits every stored
        # reference once — that is the O(L / max_tombstone_fraction)-per-delete
        # amortized cost documented in the module docstring.
        alive = self._alive.tolist()
        dead = self._pending
        for table_index, table in enumerate(self._tables):
            swept = self._delta.compacted_keys[table_index]
            dead_keys: List[Hashable] = []
            for key, bucket in table.items():
                members = bucket.indices.tolist()
                if dead.isdisjoint(members):
                    continue
                swept.add(key)
                keep = [position for position, index in enumerate(members) if alive[index]]
                if not keep:
                    dead_keys.append(key)
                else:
                    table[key] = Bucket(
                        bucket.indices[keep],
                        None if bucket.ranks is None else bucket.ranks[keep],
                    )
            for key in dead_keys:
                del table[key]
        self.mutation_epoch += 1
        # Release the swept points' memory.  Slots are deliberately not
        # renumbered — index stability is what lets samplers, responses and
        # snapshots keep referring to points across mutations — so the slot
        # itself (a None entry, a rank, a liveness bit) is the only per-delete
        # residue kept for the index's lifetime.
        for index in dead:
            self._points[index] = None
            if self._store not in (None, False):
                self._store.release(index)
        self._pending.clear()
        self.rebuilds_triggered += 1

    # ------------------------------------------------------------------
    # Queries (liveness-aware)
    # ------------------------------------------------------------------
    def query_buckets(self, query: Point, keys: Optional[List[Hashable]] = None) -> List[Bucket]:
        """Colliding buckets with tombstoned members filtered out.

        *keys* are optional pre-computed per-table bucket keys, as in
        :meth:`~repro.lsh.tables.LSHTables.query_buckets`.
        """
        buckets = super().query_buckets(query, keys)
        if not self._pending:
            return buckets
        alive = self._alive
        filtered: List[Bucket] = []
        for bucket in buckets:
            if len(bucket) == 0:
                filtered.append(bucket)
                continue
            keep = alive[bucket.indices]
            filtered.append(bucket if keep.all() else bucket.filtered(keep))
        return filtered

"""Process-parallel shard workers over shared memory.

:class:`ProcessShardedEngine` promotes :class:`~repro.engine.sharded.
ShardedEngine`'s thread-pool shards to worker **processes**, the pooled-memory
-pod shape: one authoritative index in the parent, per-shard replicas in
workers that read the dataset's columnar buffers zero-copy through
``multiprocessing.shared_memory`` (:meth:`DatasetStore.to_shared
<repro.store.base.DatasetStore.to_shared>`), and a small length-prefixed
message protocol carrying query batches, mutation deltas and raw-bucket
manifests between them.

**Coordinator/replica split.**  The parent keeps the full
:class:`~repro.engine.sharded.ShardedLSHTables` — construction, placement,
the global rank stream, snapshots and any local fallback all stay
authoritative and byte-identical to thread-pool serving.  Each worker holds a
replica of exactly one shard's :class:`~repro.engine.dynamic.DynamicLSHTables`
and serves two read operations: bounded rank-prefix gathers (``QUERY``) and
raw per-shard bucket fetches (``BUCKETS``, the merged-view priming feed).
Mutations are applied parent-side first and then *replicated*: the tables'
shard-op listener ships every ``insert`` / ``delete`` / ``compact`` — with
the parent-drawn ranks — as a fire-and-forget ``MUTATE`` frame, so replica
buckets evolve bit-identically (shard-local self-compaction triggers from
identical thresholds).

**Why answers stay byte-identical.**  Worker gathers run the exact shared
per-shard computation (:func:`repro.engine.gather.bounded_shard_prefix` —
the same function :meth:`ShardedLSHTables.colliding_prefix_view
<repro.engine.sharded.ShardedLSHTables.colliding_prefix_view>` runs locally)
and the parent merges them with the shared boundary/cut/sort code
(:func:`repro.engine.gather.merge_prefix_parts`), so every gathered view is
a *true rank prefix* of the full colliding view.  Prefix-certifying
samplers (:meth:`~repro.core.base.LSHNeighborSampler.
sample_detailed_from_prefix` / :meth:`~repro.core.base.LSHNeighborSampler.
sample_k_from_prefix`) refuse to answer unless their scan provably fits the
prefix — therefore *any* true prefix that certifies yields the same result
and the same per-query counters, whatever gather budget produced it.  The
whole prefix/certify/escalate loop, including the self-tuning budget
controller, lives in :class:`~repro.engine.sharded.ShardedEngine` and
:mod:`repro.engine.gather`; this engine only overrides *where* gathers and
bucket fetches execute.  Non-prefix work (multi-draw requests of samplers
without a k-aware prefix form, samplers without prefix support) runs on the
parent against merged buckets primed from worker ``BUCKETS`` replies via
the exact :class:`~repro.engine.sharded._MergedTableView` merge recipe —
and the parent's authoritative shards remain the fallback for anything
unprimed.

**Supervision.**  A :class:`WorkerSupervisor` owns worker lifecycle: each
worker is spawned from a *baseline* (a pickled snapshot of its shard) plus a
sequence-numbered mutation log.  Health is checked on every exchange — a
dead socket, an EOF or a reply timeout (hung worker) marks the worker
crashed.  The supervisor then restarts it from the baseline, replays the
logged mutations (counted in ``EngineStats.mutations_replayed``), and fails
the in-flight request with a typed
:class:`~repro.exceptions.WorkerCrashedError` instead of hanging — the
*next* request is served normally.  Crashes during mutation replication are
swallowed entirely (the parent is the source of truth; replay covers the
op).  :class:`FaultPlan` injects deterministic crashes for the fault tests.
"""

from __future__ import annotations

import gc
import os
import pickle
import signal
import socket
import struct
import threading
import time
import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import multiprocessing
import numpy as np

from repro.engine.batch import build_tables
from repro.engine.dynamic import DynamicLSHTables, MutationDelta
from repro.engine.gather import (
    PrefixView,
    bounded_shard_prefix,
    merge_prefix_parts,
    split_budget,
)
from repro.engine.sharded import _MERGED_CACHE_LIMIT, ShardedEngine, ShardedLSHTables
from repro.store import DatasetStore
from repro.exceptions import WorkerCrashedError
from repro.lsh.tables import Bucket
from repro.testing.faults import FaultPlan

__all__ = ["FaultPlan", "ProcessShardedEngine", "WorkerSupervisor"]

#: Mutations logged per worker before the supervisor re-baselines (re-pickles
#: the parent shard and truncates the log) so restart replay stays bounded.
_CHECKPOINT_EVERY = 192

#: How long a hang-mode fault sleeps; must exceed any test reply timeout.
_HANG_SECONDS = 60.0


# FaultPlan moved to repro.testing.faults in the durability PR so the chaos
# machinery is reusable outside the process engine; re-exported above for
# backward compatibility (``from repro.engine.procpool import FaultPlan``
# keeps working).

# ----------------------------------------------------------------------
# Length-prefixed pickle frames
# ----------------------------------------------------------------------
class _WorkerGone(Exception):
    """Internal: the peer socket is dead (EOF / reset / timeout)."""


def _send_payload(sock: socket.socket, payload: bytes) -> int:
    try:
        sock.sendall(struct.pack(">I", len(payload)) + payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise _WorkerGone(str(exc)) from exc
    return 4 + len(payload)


def _send_frame(sock: socket.socket, payload_obj) -> int:
    return _send_payload(
        sock, pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    )


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        try:
            chunk = sock.recv(count)
        except socket.timeout as exc:
            raise _WorkerGone("reply timeout") from exc
        except (ConnectionResetError, OSError) as exc:
            raise _WorkerGone(str(exc)) from exc
        if not chunk:
            raise _WorkerGone("connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Tuple[object, int]:
    header = _recv_exact(sock, 4)
    (length,) = struct.unpack(">I", header)
    payload = _recv_exact(sock, length)
    return pickle.loads(payload), 4 + length


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_baseline(shard: DynamicLSHTables) -> bytes:
    """Pickle a restartable snapshot of *shard* (the worker's birth state).

    The clone drops everything a replica rebuilds or never needs: the batch
    hasher is reconstructed from the (pickled) hash functions in the worker
    — mirroring the snapshot layer, which never pickles it — the key cache
    starts empty, the columnar store is marked inapplicable (bucket gathers
    never dereference points; mutation payloads carry their own points), and
    the point container is reduced to placeholders of the right length so
    ``delete``/``compact`` bookkeeping stays index-correct.  Unconsumed
    delta state is dropped: replicas discard their delta after every applied
    op, so a baseline must not resurrect one.
    """
    clone = DynamicLSHTables.__new__(DynamicLSHTables)
    clone.__dict__.update(shard.__dict__)
    clone._batch_hasher = None
    clone._key_cache = {}
    clone.key_cache_hits = 0
    clone._store = False
    clone._points = [None] * len(shard._points)
    clone._pending = set(shard._pending)
    clone._delta = MutationDelta.empty(shard.l, start_epoch=shard.mutation_epoch)
    clone._unresolved_deletes = []
    clone._unresolved_inserts = []
    return pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)


def _revive_shard(shard: DynamicLSHTables) -> None:
    shard._batch_hasher = shard.family.make_batch_hasher(shard._functions)


def _apply_op(shard: DynamicLSHTables, op: str, args: tuple) -> None:
    """Re-apply one parent-side shard op on the replica, bit-identically.

    Ranks always arrive from the parent's global stream (never redrawn), and
    the delta record is discarded after every op — replicas have no delta
    consumers, and a ``delete``'s captured point is a ``None`` placeholder
    that must never reach the lazy hashing of ``_resolve_delta``.
    """
    if op == "insert":
        points, ranks, was_fit = args
        if was_fit:
            shard.fit(points, ranks=ranks)
        else:
            shard.insert_many(points, ranks=ranks)
    elif op == "delete":
        shard.delete(args[0])
    elif op == "compact":
        shard.compact()
    else:  # pragma: no cover - protocol error
        raise ValueError(f"unknown shard op {op!r}")
    shard.discard_delta()


# The per-shard bounded gather itself lives in repro.engine.gather
# (bounded_shard_prefix) — shared verbatim with the thread executor's local
# colliding_prefix_view, so worker replies are byte-identical to local parts
# by construction.


def _pack_query_reply(parts: List[Optional[tuple]], with_tables: bool = False) -> dict:
    """Pack per-query gather parts into a few flat arrays for the wire.

    A 300-query reply would otherwise pickle ~600 small ndarrays; packing
    them into one ``indices`` and one ``ranks`` array (plus a per-query
    ``sizes`` vector, ``-1`` marking a ``None`` part) makes the reply two
    big buffer copies.  ``boundaries`` stays a plain list — it is small and
    mixes ``None`` with ints.  With *with_tables* (gathers for samplers that
    replay a per-bucket scan) the reply also carries the concatenated
    per-reference ``table_ids`` (sliced exactly like ``ranks``) and one
    ``(l,)`` row of full per-table bucket sizes per non-``None`` part,
    stacked in part order.
    """
    sizes = np.empty(len(parts), dtype=np.int64)
    boundaries: List[Optional[int]] = [None] * len(parts)
    rank_chunks: List[np.ndarray] = []
    index_chunks: List[np.ndarray] = []
    tid_chunks: List[np.ndarray] = []
    size_rows: List[np.ndarray] = []
    for position, part in enumerate(parts):
        if part is None:
            sizes[position] = -1
            continue
        locals_, ranks, boundary = part[0], part[1], part[2]
        sizes[position] = ranks.size
        boundaries[position] = boundary
        rank_chunks.append(ranks)
        index_chunks.append(locals_)
        if with_tables:
            tid_chunks.append(part[3])
            size_rows.append(part[4])
    reply = {
        "type": "QUERY_OK",
        "sizes": sizes,
        "boundaries": boundaries,
        "ranks": (
            np.concatenate(rank_chunks) if rank_chunks else np.empty(0, dtype=np.int64)
        ),
        "indices": (
            np.concatenate(index_chunks) if index_chunks else np.empty(0, dtype=np.intp)
        ),
    }
    if with_tables:
        reply["table_ids"] = (
            np.concatenate(tid_chunks) if tid_chunks else np.empty(0, dtype=np.int64)
        )
        reply["table_sizes"] = (
            np.stack(size_rows) if size_rows else np.empty((0, 0), dtype=np.int64)
        )
    return reply


def _unpack_query_reply(reply: dict) -> List[Optional[tuple]]:
    """Invert :func:`_pack_query_reply` into per-query part views.

    The slices are views over the big reply arrays — no copies; the
    downstream merge concatenates them into fresh arrays anyway.  Table
    metadata, when present, is re-attached: ``table_ids`` slices like
    ``ranks``, and the stacked ``table_sizes`` rows are consumed in
    non-``None`` part order.
    """
    sizes = reply["sizes"]
    boundaries = reply["boundaries"]
    lengths = np.maximum(sizes, 0)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    ranks = reply["ranks"]
    indices = reply["indices"]
    table_ids = reply.get("table_ids")
    if table_ids is None:
        return [
            None
            if sizes[position] < 0
            else (
                indices[starts[position] : ends[position]],
                ranks[starts[position] : ends[position]],
                boundaries[position],
            )
            for position in range(len(sizes))
        ]
    table_sizes = reply["table_sizes"]
    parts: List[Optional[tuple]] = []
    row = 0
    for position in range(len(sizes)):
        if sizes[position] < 0:
            parts.append(None)
            continue
        parts.append(
            (
                indices[starts[position] : ends[position]],
                ranks[starts[position] : ends[position]],
                boundaries[position],
                table_ids[starts[position] : ends[position]],
                table_sizes[row],
            )
        )
        row += 1
    return parts


def _fault_due(plan: Optional[FaultPlan], queries: int, mutations: int) -> bool:
    if plan is None:
        return False
    if plan.kill_after_queries is not None and queries >= plan.kill_after_queries:
        return True
    if plan.kill_after_mutations is not None and mutations >= plan.kill_after_mutations:
        return True
    return False


def _run_fault(plan: FaultPlan) -> None:
    if plan.mode == "hang":
        time.sleep(_HANG_SECONDS)
        return
    if plan.mode == "exit":
        os._exit(17)
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(
    conn: socket.socket, shard_index: int, parent_conn: Optional[socket.socket] = None
) -> None:
    """Entry point of one shard worker process (fork-started).

    Receives ``INIT`` (baseline pickle + shared-store descriptor), then
    serves frames until ``SHUTDOWN`` or EOF — EOF covers parent death, so
    workers can never outlive their coordinator.  The shared store is
    attached (and only ever closed, never unlinked: segment lifetime belongs
    to the parent) purely as the zero-copy dataset view; replica bucket
    state evolves from the mutation stream alone.
    """
    # fork copies every fd, including the parent side of this very
    # socketpair — if the child kept it, it would hold its own EOF open and
    # outlive a crashed coordinator.  Close it before anything else.
    if parent_conn is not None:
        parent_conn.close()
    store = None
    try:
        init, _ = _recv_frame(conn)
        shard: DynamicLSHTables = pickle.loads(init["baseline"])
        _revive_shard(shard)
        if init.get("store") is not None:
            store = DatasetStore.from_shared(init["store"])
        fault: Optional[FaultPlan] = init.get("fault")
        queries_served = 0
        mutations_applied = 0
        _send_frame(
            conn,
            {
                "type": "INIT_OK",
                "shard_index": shard_index,
                "store_rows": None if store is None else len(store),
            },
        )
        while True:
            try:
                frame, _ = _recv_frame(conn)
            except _WorkerGone:
                break
            ftype = frame["type"]
            if ftype == "QUERY":
                queries_served += 1
                if _fault_due(fault, queries_served, -1):
                    active, fault = fault, None
                    _run_fault(active)
                with_tables = frame.get("with_tables", False)
                parts = [
                    bounded_shard_prefix(shard, keys, limit, with_tables=with_tables)
                    if shard._fitted
                    else None
                    for keys, limit in frame["queries"]
                ]
                _send_frame(conn, _pack_query_reply(parts, with_tables=with_tables))
            elif ftype == "BUCKETS":
                buckets = []
                if shard._fitted:
                    for position, (table_index, key) in enumerate(frame["jobs"]):
                        bucket = shard._tables[table_index].get(key)
                        if bucket is not None and bucket.indices.size:
                            buckets.append((position, bucket.indices, bucket.ranks))
                _send_frame(conn, {"type": "BUCKETS_OK", "buckets": buckets})
            elif ftype == "MUTATE":
                _apply_op(shard, frame["op"], frame["args"])
                mutations_applied += 1
                if _fault_due(fault, -1, mutations_applied):
                    active, fault = fault, None
                    _run_fault(active)
            elif ftype == "FAULT":
                fault = frame["plan"]
                queries_served = 0
                mutations_applied = 0
                _send_frame(conn, {"type": "FAULT_OK"})
            elif ftype == "PING":
                _send_frame(
                    conn, {"type": "PONG", "mutations_applied": mutations_applied}
                )
            elif ftype == "SHUTDOWN":
                _send_frame(conn, {"type": "BYE"})
                break
    except _WorkerGone:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        if store is not None:
            store.detach()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


class WorkerSupervisor:
    """Owns the shard worker fleet: spawn, health, restart, replay.

    One worker per shard, spawned from a pickled *baseline* of that shard
    plus the shared-store descriptor.  Every mutation replicated to a worker
    is also appended to its sequence log; when a worker dies (socket EOF,
    reset, or a reply timeout on a hung process) the supervisor respawns it
    from the baseline and replays the log, so the replica provably re-reaches
    the parent shard's exact state.  Logs are truncated by periodic
    re-baselining (every :data:`_CHECKPOINT_EVERY` ops) so replay cost stays
    bounded.  All counters (restarts, replayed ops, IPC bytes) feed
    :class:`~repro.engine.requests.EngineStats`.
    """

    def __init__(
        self,
        tables: ShardedLSHTables,
        reply_timeout: float = 30.0,
        fault_injector=None,
    ):
        self._tables = tables
        self.reply_timeout = float(reply_timeout)
        #: Optional :class:`repro.testing.faults.FaultInjector`; fires the
        #: ``"proc.send"``/``"proc.recv"`` sites around every frame so chaos
        #: tests can delay or drop IPC traffic (an injected ``OSError``
        #: becomes a worker-crash signal, like a real dead socket).
        self.fault_injector = fault_injector
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            self._ctx = multiprocessing.get_context()
        self._workers: List[Optional[_Worker]] = [None] * tables.n_shards
        self._baselines: List[Optional[bytes]] = [None] * tables.n_shards
        self._logs: List[List[Tuple[str, tuple]]] = [[] for _ in range(tables.n_shards)]
        self._fault_plans: Dict[int, FaultPlan] = {}
        self._store_export = None
        self._store_descriptor = None
        # One lock serializes all frame traffic: request/reply rounds must
        # not interleave with each other or with mutation replication
        # (frames are ordered per socket, but two senders could interleave
        # mid-round).  RLock because a crash handler restarts workers while
        # the round that detected the crash still holds the lock.
        self._lock = threading.RLock()
        self._started = False
        self._shutdown_done = False
        self.worker_restarts = 0
        self.mutations_replayed = 0
        self.ipc_bytes_sent = 0
        self.ipc_bytes_received = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Export the shared store and spawn one worker per shard."""
        with self._lock:
            if self._started:
                return
            self._started = True
            store = self._tables.point_store
            if store is not None:
                self._store_export = store.to_shared()
                self._store_descriptor = self._store_export.descriptor
            for shard_index in range(self._tables.n_shards):
                self._baselines[shard_index] = _shard_baseline(
                    self._tables.shards[shard_index]
                )
                self._spawn(shard_index)

    def _spawn(self, shard_index: int) -> None:
        parent_conn, child_conn = socket.socketpair()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, shard_index, parent_conn),
            daemon=True,
            name=f"repro-procshard-{shard_index}",
        )
        # Freeze the parent heap across the fork: the child inherits every
        # tracked object in its GC generations, and the first collections in
        # the worker would touch every inherited GC header — copy-on-write
        # faulting most of a large parent heap into each worker.  Freezing
        # moves the inherited objects to the permanent generation (exempt
        # from worker GC); unfreeze restores the parent, whose pages it
        # already owns.
        gc.freeze()
        try:
            process.start()
        finally:
            gc.unfreeze()
        child_conn.close()
        parent_conn.settimeout(self.reply_timeout)
        self._workers[shard_index] = _Worker(process, parent_conn)
        self._request(
            shard_index,
            {
                "type": "INIT",
                "baseline": self._baselines[shard_index],
                "store": self._store_descriptor,
                "fault": None,
            },
        )

    # ------------------------------------------------------------------
    # Framed exchanges
    # ------------------------------------------------------------------
    def _fire(self, site: str) -> None:
        if self.fault_injector is not None:
            try:
                self.fault_injector.fire(site)
            except OSError as exc:
                raise _WorkerGone(f"injected fault at {site}: {exc}") from exc

    def _send(self, shard_index: int, frame) -> None:
        worker = self._workers[shard_index]
        if worker is None:
            raise _WorkerGone(f"shard {shard_index} has no worker")
        self._fire("proc.send")
        self.ipc_bytes_sent += _send_frame(worker.conn, frame)

    def _recv(self, shard_index: int):
        worker = self._workers[shard_index]
        if worker is None:
            raise _WorkerGone(f"shard {shard_index} has no worker")
        self._fire("proc.recv")
        try:
            reply, nbytes = _recv_frame(worker.conn)
        except _WorkerGone:
            # A silent worker may be hung rather than dead (the hang fault,
            # a wedged syscall): make the state unambiguous before restart.
            if worker.process.is_alive():
                worker.process.kill()
            raise
        self.ipc_bytes_received += nbytes
        return reply

    def _request(self, shard_index: int, frame):
        with self._lock:
            self._send(shard_index, frame)
            return self._recv(shard_index)

    def gather_round(self, shard_indices: Sequence[int], frame) -> Dict[int, dict]:
        """One synchronized request/reply round against several workers.

        Sends *frame* to every listed worker, then collects every reply.  If
        any worker dies mid-round the round still *drains* the surviving
        workers' replies (keeping each socket strictly in request/reply
        lockstep), restarts every dead worker from baseline + replay, and
        raises :class:`~repro.exceptions.WorkerCrashedError` for the
        in-flight request.  The engine is healthy again when this raises.
        """
        with self._lock:
            # The frame is identical for every worker: pickle it once and
            # broadcast the bytes instead of re-serializing per shard.
            payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
            sent: List[int] = []
            dead: List[int] = []
            for shard_index in shard_indices:
                worker = self._workers[shard_index]
                try:
                    if worker is None:
                        raise _WorkerGone(f"shard {shard_index} has no worker")
                    self._fire("proc.send")
                    self.ipc_bytes_sent += _send_payload(worker.conn, payload)
                    sent.append(shard_index)
                except _WorkerGone:
                    dead.append(shard_index)
            replies: Dict[int, dict] = {}
            for shard_index in sent:
                try:
                    replies[shard_index] = self._recv(shard_index)
                except _WorkerGone:
                    dead.append(shard_index)
            if dead:
                restarts = 0
                for shard_index in dead:
                    self._restart(shard_index)
                    restarts += 1
                raise WorkerCrashedError(
                    f"shard worker{'s' if len(dead) > 1 else ''} "
                    f"{sorted(dead)} died mid-batch; restarted from baseline "
                    f"with mutations replayed — retry the request",
                    shard_index=dead[0] if len(dead) == 1 else None,
                    restarts=restarts,
                )
            return replies

    # ------------------------------------------------------------------
    # Mutation replication
    # ------------------------------------------------------------------
    def record_mutation(self, shard_index: int, op: str, args: tuple) -> None:
        """Log one shard op and replicate it (fire-and-forget).

        Called synchronously by the tables' shard-op listener, after the op
        landed in the authoritative parent shard.  A crash detected here is
        swallowed: the parent state is already correct, the op is in the log,
        and the restart's replay delivers it — the *mutation* must not fail
        because a replica died.
        """
        with self._lock:
            log = self._logs[shard_index]
            log.append((op, args))
            try:
                self._send(shard_index, {"type": "MUTATE", "op": op, "args": args})
            except _WorkerGone:
                self._restart(shard_index)
                return
            if len(log) >= _CHECKPOINT_EVERY:
                # The parent shard already reflects every logged op, so a
                # fresh baseline + empty log is the same replica state.
                self._baselines[shard_index] = _shard_baseline(
                    self._tables.shards[shard_index]
                )
                log.clear()

    # ------------------------------------------------------------------
    # Restart / health
    # ------------------------------------------------------------------
    def _restart(self, shard_index: int) -> None:
        with self._lock:
            self._reap(shard_index)
            # Fault plans are one-shot: handling the crash consumes the plan
            # so the restarted worker is not re-armed.
            self._fault_plans.pop(shard_index, None)
            self.worker_restarts += 1
            self._spawn(shard_index)
            log = self._logs[shard_index]
            for op, args in log:
                self._send(shard_index, {"type": "MUTATE", "op": op, "args": args})
            self.mutations_replayed += len(log)

    def _reap(self, shard_index: int) -> None:
        worker = self._workers[shard_index]
        if worker is None:
            return
        self._workers[shard_index] = None
        try:
            worker.conn.close()
        except OSError:
            pass
        process = worker.process
        process.join(timeout=1.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - terminate always lands here
            process.kill()
            process.join(timeout=1.0)
        process.close()

    def health_check(self) -> Dict[int, bool]:
        """Ping every worker; restart the dead ones.  Returns pre-restart health."""
        health: Dict[int, bool] = {}
        with self._lock:
            for shard_index in range(len(self._workers)):
                try:
                    reply = self._request(shard_index, {"type": "PING"})
                    health[shard_index] = reply.get("type") == "PONG"
                except _WorkerGone:
                    health[shard_index] = False
                    self._restart(shard_index)
        return health

    def inject_fault(self, plan: FaultPlan) -> None:
        """Install *plan* on every matching worker (test instrumentation)."""
        with self._lock:
            for shard_index in range(len(self._workers)):
                if plan.matches(shard_index):
                    self._fault_plans[shard_index] = plan
                    self._request(shard_index, {"type": "FAULT", "plan": plan})

    def worker_pids(self) -> List[Optional[int]]:
        """The live workers' PIDs (``None`` for a reaped slot)."""
        return [
            None if worker is None else worker.process.pid for worker in self._workers
        ]

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker and unlink the shared segments (idempotent)."""
        with self._lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
            for shard_index, worker in enumerate(self._workers):
                if worker is None:
                    continue
                try:
                    self._send(shard_index, {"type": "SHUTDOWN"})
                    self._recv(shard_index)
                except _WorkerGone:
                    pass
                self._reap(shard_index)
            if self._store_export is not None:
                self._store_export.unlink()
                self._store_export = None


def _finalize_supervisor(supervisor: WorkerSupervisor) -> None:
    # weakref.finalize target: must not reference the engine.  Registered at
    # engine construction, so it runs at interpreter exit *before*
    # multiprocessing's own atexit hook (LIFO), while workers can still be
    # joined and segments unlinked cleanly.
    supervisor.shutdown()


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ProcessShardedEngine(ShardedEngine):
    """Batched query execution with each shard replicated in a worker process.

    Drop-in for :class:`~repro.engine.sharded.ShardedEngine` (select it with
    ``EngineSpec(executor="process")`` / ``FairNN.serve(executor="process")``)
    with the same byte-identity guarantee: responses — indices, values and
    per-query work counters — match unsharded :class:`~repro.engine.batch.
    BatchQueryEngine` serving exactly, at every shard count, for every
    registered sampler, through churn and through worker crashes.

    Request flow per batch: prefix-eligible queries are gathered in **one**
    ``QUERY`` round trip per worker (the whole batch in one frame — IPC cost
    amortizes across the batch) and certified by the *shared*
    prefix/certify/escalate loop of :class:`~repro.engine.sharded.
    ShardedEngine` — shared widened rounds for RNG-free samplers, serial
    batch-order answering otherwise, the same
    :class:`~repro.engine.gather.PrefixBudgetController` tuning the opening
    budget.  Everything else answers on the parent from merged buckets
    primed via ``BUCKETS`` rounds.  A worker crash mid-batch raises
    :class:`~repro.exceptions.WorkerCrashedError` after the supervisor has
    already restarted and replayed — the engine is immediately serviceable.

    Because any certifying true rank prefix yields identical bytes (see the
    module docstring), sharing the budget controller costs nothing in
    output: both executors open every batch at the same tuned budget and
    produce the same budget sequence for the same batch stream — only
    *where* the bounded gather executes differs.
    """

    #: Non-prefix deterministic queries answer serially on the parent:
    #: merged buckets are already primed via worker rounds, and the serial
    #: loop beats thread-chunk scheduling overhead.
    _parallel_fallback = False

    def __init__(
        self,
        sampler,
        batch_hashing: bool = True,
        coalesce_duplicates: bool = True,
        sampler_name: Optional[str] = None,
        spec=None,
        max_workers: Optional[int] = None,
        reply_timeout: float = 30.0,
        fault_injector=None,
        prefix_budget: Optional[int] = None,
        prefix_budget_cap: Optional[int] = None,
    ):
        super().__init__(
            sampler,
            batch_hashing=batch_hashing,
            coalesce_duplicates=coalesce_duplicates,
            sampler_name=sampler_name,
            spec=spec,
            max_workers=max_workers,
            prefix_budget=prefix_budget,
            prefix_budget_cap=prefix_budget_cap,
        )
        tables: ShardedLSHTables = self.tables
        # Build the columnar store before export so workers attach the same
        # buffers the parent serves from.
        tables.point_store
        self._supervisor = WorkerSupervisor(
            tables, reply_timeout=reply_timeout, fault_injector=fault_injector
        )
        self._synced_worker_counters = {
            "worker_restarts": 0,
            "mutations_replayed": 0,
            "ipc_bytes_sent": 0,
            "ipc_bytes_received": 0,
        }
        self._supervisor.start()
        self._shard_op_listener = self._supervisor.record_mutation
        tables.add_shard_op_listener(self._shard_op_listener)
        # Interpreter-exit safety net: reap workers and unlink segments even
        # if close() is never called.  close() runs the same callable (it
        # fires at most once).
        self._finalizer = weakref.finalize(
            self, _finalize_supervisor, self._supervisor
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sampler,
        dataset,
        n_shards: int = 2,
        placement: str = "round_robin",
        max_tombstone_fraction: float = 0.25,
        seed=None,
        max_workers: Optional[int] = None,
        reply_timeout: float = 30.0,
    ) -> "ProcessShardedEngine":
        """Build sharded tables and wrap them in a process-executor engine.

        Parameters resolve exactly as :meth:`ShardedEngine.build
        <repro.engine.sharded.ShardedEngine.build>`; *reply_timeout* bounds
        how long the supervisor waits on a silent worker before declaring it
        crashed.
        """
        tables, bound_dataset = build_tables(
            sampler,
            dataset,
            dynamic=True,
            max_tombstone_fraction=max_tombstone_fraction,
            seed=seed,
            n_shards=n_shards,
            placement=placement,
        )
        sampler.attach(tables, bound_dataset)
        return cls(sampler, max_workers=max_workers, reply_timeout=reply_timeout)

    # ------------------------------------------------------------------
    @property
    def supervisor(self) -> WorkerSupervisor:
        """The worker supervisor (restart/replay/IPC accounting)."""
        return self._supervisor

    def inject_fault(self, plan: FaultPlan) -> None:
        """Arm a :class:`FaultPlan` on the matching workers (tests only)."""
        self._supervisor.inject_fault(plan)

    def _sync_worker_stats(self) -> None:
        # Fold supervisor counters into EngineStats as *deltas* since the
        # last sync: snapshot restore replaces ``engine.stats`` wholesale
        # after construction, and an absolute copy would clobber the
        # restored lifetime counters.
        supervisor = self._supervisor
        with self._stats_lock:
            for stats_field, supervisor_field in (
                ("worker_restarts", "worker_restarts"),
                ("mutations_replayed", "mutations_replayed"),
                ("ipc_bytes_sent", "ipc_bytes_sent"),
                ("ipc_bytes_received", "ipc_bytes_received"),
            ):
                current = getattr(supervisor, supervisor_field)
                delta = current - self._synced_worker_counters[stats_field]
                if delta:
                    setattr(
                        self.stats,
                        stats_field,
                        getattr(self.stats, stats_field) + delta,
                    )
                    self._synced_worker_counters[stats_field] = current

    def stats_dict(self) -> Dict:
        self._sync_worker_stats()
        payload = super().stats_dict()
        payload["executor"] = "process"
        payload["worker_pids"] = self._supervisor.worker_pids()
        return payload

    def _shutdown(self) -> None:
        self.tables.remove_shard_op_listener(self._shard_op_listener)
        self._finalizer()  # runs the supervisor shutdown exactly once
        super()._shutdown()

    # ------------------------------------------------------------------
    # Worker-backed gathering
    # ------------------------------------------------------------------
    def _gather_prefixes(
        self,
        positions: Sequence[int],
        keys_per_query,
        limit: int,
    ) -> Dict[int, Tuple[PrefixView, bool]]:
        """One ``QUERY`` round gathering rank prefixes at global budget *limit*.

        The worker-backed override of :meth:`ShardedEngine._gather_prefixes
        <repro.engine.sharded.ShardedEngine._gather_prefixes>`: the same
        :func:`~repro.engine.gather.split_budget` split across fitted shards
        (each worker surfaces its bottom-``limit/n`` by rank via the shared
        :func:`~repro.engine.gather.bounded_shard_prefix`), one broadcast
        frame per round, and the shared
        :func:`~repro.engine.gather.merge_prefix_parts` merge — so the
        merged views are byte-identical to locally gathered ones.  A skewed
        shard can truncate early and force an escalation, but the boundary
        cut keeps every returned view a provably exact global rank prefix
        at any split.
        """
        tables: ShardedLSHTables = self.tables
        fitted = tables._fitted_shards()
        with_tables = getattr(self.sampler, "prefix_scan_needs_tables", False)
        views: Dict[int, Tuple[PrefixView, bool]] = {}
        if not fitted:
            empty = PrefixView.empty(tables.l if with_tables else None)
            return {position: (empty, True) for position in positions}
        per_shard = split_budget(limit, len(fitted))
        frame = {
            "type": "QUERY",
            "queries": [(list(keys_per_query[p]), per_shard) for p in positions],
            "with_tables": with_tables,
        }
        replies = self._supervisor.gather_round(fitted, frame)
        parts_by_shard = {
            shard_index: _unpack_query_reply(replies[shard_index])
            for shard_index in fitted
        }
        for offset, position in enumerate(positions):
            shard_parts = [
                (shard_index, parts_by_shard[shard_index][offset])
                for shard_index in fitted
                if parts_by_shard[shard_index][offset] is not None
            ]
            views[position] = merge_prefix_parts(
                shard_parts,
                tables._shard_globals,
                num_tables=tables.l if with_tables else None,
            )
        return views

    def _prime_via_workers(self, keys_per_query: Sequence[List[Hashable]]) -> None:
        """Materialize merged buckets from worker ``BUCKETS`` replies.

        The exact :class:`~repro.engine.sharded._MergedTableView` recipe —
        dedup the batch's (table, key) pairs, skip cached ones, collect raw
        per-shard buckets in shard order, translate locals to globals,
        single-part buckets keep their order, multi-part re-sort stably by
        rank — so cached merged buckets (and the ``shard_merges`` counter)
        are indistinguishable from locally merged ones.
        """
        tables: ShardedLSHTables = self.tables
        needed: List[set] = [set() for _ in range(tables.l)]
        for keys in keys_per_query:
            for table_index, key in enumerate(keys):
                needed[table_index].add(key)
        jobs: List[Tuple[int, Hashable]] = []
        views = []
        for table_index, view in enumerate(tables._tables):
            view._refresh_epoch()
            views.append(view)
            jobs.extend(
                (table_index, key)
                for key in needed[table_index]
                if key not in view._cache
            )
        if not jobs:
            return
        fitted = tables._fitted_shards()
        if not fitted:
            return
        replies = self._supervisor.gather_round(fitted, {"type": "BUCKETS", "jobs": jobs})
        parts_per_job: List[List[Tuple[int, np.ndarray, Optional[np.ndarray]]]] = [
            [] for _ in jobs
        ]
        for shard_index in fitted:
            for position, indices, ranks in replies[shard_index]["buckets"]:
                parts_per_job[position].append((shard_index, indices, ranks))
        for (table_index, key), parts in zip(jobs, parts_per_job):
            if not parts:
                # No shard holds the bucket: like the local merge, nothing is
                # cached and nothing is counted.
                continue
            if len(parts) == 1:
                shard_index, locals_, ranks = parts[0]
                merged = Bucket(tables._shard_globals(shard_index)[locals_], ranks)
            else:
                indices = np.concatenate(
                    [tables._shard_globals(s)[locals_] for s, locals_, _ in parts]
                )
                if parts[0][2] is not None:
                    ranks = np.concatenate([ranks for _, _, ranks in parts])
                    order = np.argsort(ranks, kind="stable")
                    merged = Bucket(indices[order], ranks[order])
                else:
                    order = np.argsort(indices, kind="stable")
                    merged = Bucket(indices[order])
            with tables._merge_count_lock:
                tables.merged_buckets += 1
            cache = views[table_index]._cache
            if len(cache) >= _MERGED_CACHE_LIMIT:
                cache.pop(next(iter(cache)), None)
            cache[key] = merged

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    # The batch loop itself — prefix eligibility, shared-round escalation,
    # budget retuning, serial batch-order answering for RNG samplers — is
    # ShardedEngine's, unchanged.  Only the two executor hooks differ: how
    # merged buckets are primed, and what syncs after a batch.

    def _prime(self, to_prime: List[List[Hashable]]) -> None:
        self._prime_via_workers(to_prime)

    def _after_batch(self) -> None:
        self._sync_worker_stats()

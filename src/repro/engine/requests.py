"""Request/response containers and serving statistics for the engine layer.

The serving engine speaks a tiny typed protocol: callers submit
:class:`QueryRequest` objects (or bare points, which the engine wraps) and
receive one :class:`QueryResponse` per request, in order.  The containers are
deliberately plain dataclasses — they hold indices into the engine's dataset
plus the work counters of :class:`~repro.core.result.QueryStats`, nothing that
would tie them to a transport.

:class:`EngineStats` aggregates per-engine counters across the engine's
lifetime (queries, candidates, primed-cache hits, index mutations and
amortized rebuilds) so operators can watch a server's behaviour without
instrumenting the samplers themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.result import QueryStats
from repro.exceptions import InvalidParameterError
from repro.types import Point


@dataclass
class QueryRequest:
    """One near-neighbor sampling request.

    Attributes
    ----------
    query:
        The query point (same representation as the indexed dataset).
    k:
        Number of neighbors to sample; ``k=1`` uses the sampler's single-draw
        path and also reports per-query work counters.
    replacement:
        Whether multi-draw sampling is with replacement (forwarded to
        :meth:`~repro.core.base.NeighborSampler.sample_k`).
    exclude_index:
        Optional dataset index removed from consideration (querying with a
        point that is itself indexed).
    """

    query: Point
    k: int = 1
    replacement: bool = True
    exclude_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.k > 1 and self.exclude_index is not None:
            # sample_k has no exclusion surface; silently dropping the
            # exclusion would hand the query back to itself.
            raise InvalidParameterError("exclude_index is only supported for k=1 requests")


@dataclass
class QueryResponse:
    """The engine's answer to one :class:`QueryRequest`.

    Attributes
    ----------
    request_index:
        Position of the originating request in the submitted batch.
    indices:
        Sampled dataset indices (empty when no near neighbor was found;
        length 1 for ``k=1`` requests that found one).
    value:
        Measure value between the sampled point and the query for ``k=1``
        requests, when the sampler computed it.
    stats:
        Work counters for the query (``k=1`` requests only; multi-draw
        requests aggregate inside the sampler and report empty counters).
    sampler:
        Serving name of the sampler that answered (the engine's
        ``sampler_name`` — the registry key of the sampler class unless the
        engine was given an explicit name, e.g. by the
        :class:`~repro.api.FairNN` facade).  Lets multiplexed callers route
        answers without tracking which engine they asked.
    """

    request_index: int
    indices: List[int] = field(default_factory=list)
    value: Optional[float] = None
    stats: QueryStats = field(default_factory=QueryStats)
    sampler: Optional[str] = None

    @property
    def found(self) -> bool:
        """True when at least one near neighbor was returned."""
        return bool(self.indices)

    @property
    def index(self) -> Optional[int]:
        """The first sampled index, or ``None`` (the paper's ``⊥``)."""
        return self.indices[0] if self.indices else None

    def to_dict(self) -> Dict:
        """A JSON-serializable rendering of the response.

        This is the wire schema of the HTTP serving surface
        (:mod:`repro.server`): plain ints/floats only, with the work counters
        rendered through :meth:`QueryStats.to_dict
        <repro.core.result.QueryStats.to_dict>`.
        """
        return {
            "request_index": int(self.request_index),
            "indices": [int(i) for i in self.indices],
            "index": None if self.index is None else int(self.index),
            "value": None if self.value is None else float(self.value),
            "found": self.found,
            "sampler": self.sampler,
            "stats": self.stats.to_dict(),
        }


@dataclass
class EngineStats:
    """Lifetime serving counters of one engine instance.

    Attributes
    ----------
    queries_served:
        Total requests answered.
    batches_served:
        Number of :meth:`~repro.engine.batch.BatchQueryEngine.run` calls.
    candidates_scanned:
        Sum of ``candidates_examined`` over all detailed queries.
    distance_evaluations:
        Sum of exact measure (pair) evaluations over all detailed queries.
    distance_kernel_calls:
        Sum of batched distance-kernel invocations over all detailed
        queries.  With the vectorized candidate-evaluation pipeline this
        grows like the number of rejection rounds / probed buckets, not like
        ``candidates_scanned`` — the ratio is the counter the perf-guard CI
        job watches.
    key_cache_hits:
        Query-key lookups served from the primed hash cache (each hit is an
        ``L``-table hashing pass that batching avoided).
    coalesced_queries:
        Duplicate requests answered from an identical request in the same
        batch (exact for query-deterministic samplers).
    inserts, deletes:
        Index mutations applied through the engine.
    rebuilds_triggered:
        Bucket compaction sweeps — those triggered by tombstone pressure
        *and* those forced per mutation batch by samplers that need clean
        buckets to rebuild derived state (e.g. the Section 4 sketches).
    shard_merges:
        Cross-shard candidate buckets materialized by a
        :class:`~repro.engine.sharded.ShardedEngine` (per batch, each
        distinct ``(table, bucket key)`` pair a query needs is merged at most
        once; repeats hit the merged-bucket cache).  Deterministic for a
        seeded workload — the counter the perf-guard CI job pins.
    prefix_scans, prefix_escalations:
        Rank-prefix candidate merges served by a sharded engine (bounded
        bottom-``B``-by-rank gathers instead of full multiset merges) and
        the retries where the prefix proved too short and was widened.
    worker_restarts:
        Shard worker processes restarted by the
        :class:`~repro.engine.procpool.WorkerSupervisor` after a crash or
        hang (process executor only; 0 for thread-pool engines).
    mutations_replayed:
        Mutation operations replayed into restarted workers to bring their
        shard replicas back to the authoritative parent state.
    ipc_bytes_sent, ipc_bytes_received:
        Total protocol bytes shipped to / received from shard worker
        processes (length-prefixed frames; counts payload plus prefix).
    store_cache_hits, store_cache_misses, store_bytes_fetched:
        Mirrors of the active dataset store's block-cache lifetime counters
        (remote backend only; 0 for stores without a cache).  Refreshed —
        overwritten, not accumulated — every time the engine reports stats,
        so they always equal the store's own
        :meth:`~repro.store.base.DatasetStore.cache_stats` numbers.
    prefix_budget:
        Mirror of the sharded engines' live self-tuned opening prefix
        budget (the total bottom-by-rank references a batch's first gather
        requests, before any per-query escalation).  Refreshed — overwritten,
        not accumulated — every time a sharded engine reports stats; 0 for
        unsharded engines.
    """

    queries_served: int = 0
    batches_served: int = 0
    candidates_scanned: int = 0
    distance_evaluations: int = 0
    distance_kernel_calls: int = 0
    key_cache_hits: int = 0
    coalesced_queries: int = 0
    inserts: int = 0
    deletes: int = 0
    rebuilds_triggered: int = 0
    shard_merges: int = 0
    prefix_scans: int = 0
    prefix_escalations: int = 0
    worker_restarts: int = 0
    mutations_replayed: int = 0
    ipc_bytes_sent: int = 0
    ipc_bytes_received: int = 0
    store_cache_hits: int = 0
    store_cache_misses: int = 0
    store_bytes_fetched: int = 0
    prefix_budget: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-serializable dict.

        The canonical serialization shared by snapshot manifests, the HTTP
        ``/v1/stats`` endpoint (:mod:`repro.server`) and the
        ``benchmarks/results/*.json`` writers.
        """
        return {
            field_name: int(getattr(self, field_name))
            for field_name in self.__dataclass_fields__
        }

    def as_dict(self) -> Dict[str, int]:
        """Backward-compatible alias of :meth:`to_dict`."""
        return self.to_dict()

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "EngineStats":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f: int(data[f]) for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)

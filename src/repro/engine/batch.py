"""Batched query execution over any fitted neighbor sampler.

:class:`BatchQueryEngine` is the serving loop's front door.  Its job is to
make a batch of ``m`` queries much cheaper than ``m`` independent calls:

1. **Vectorized hashing.**  All queries are hashed against all ``L`` tables
   in one pass through the family's
   :class:`~repro.lsh.family.BatchHasher` (``LSHTables.query_keys_many``),
   then the per-query keys are primed into the table layer's key cache.  When
   the samplers subsequently call ``query_keys`` internally, the hash work is
   a dict lookup — hashing, the dominant per-query cost with hundreds of
   tables, is paid once per batch instead of once per query.
2. **Uniform dispatch.**  Each request is answered through the sampler's
   public surface (``sample_detailed`` for single draws, ``sample_k`` for
   multi-draws), so every structure in :mod:`repro.core` — fair or baseline —
   can sit behind the engine unchanged.
3. **Mutation coalescing.**  ``insert``/``delete`` are forwarded to the
   attached :class:`~repro.engine.dynamic.DynamicLSHTables` and the sampler
   is re-synchronized lazily, once per batch: the tables' accumulated
   :class:`~repro.engine.dynamic.MutationDelta` is drained through
   :meth:`~repro.core.base.LSHNeighborSampler.notify_update`, so samplers
   with expensive derived state (the Section 4 sketches) pay incremental,
   per-affected-bucket maintenance per *batch of updates*, not a full
   rebuild per update.

Engines over a static :class:`~repro.lsh.tables.LSHTables` support
everything except mutation.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Union

from repro.core.base import LSHNeighborSampler, NeighborSampler
from repro.engine.dynamic import DynamicLSHTables
from repro.engine.requests import EngineStats, QueryRequest, QueryResponse
from repro.exceptions import (
    AlreadyDeletedError,
    InvalidParameterError,
    NotFittedError,
    SlotOutOfRangeError,
)
from repro.lsh.family import LSHFamily
from repro.lsh.tables import LSHTables, point_digest
from repro.registry import SAMPLERS
from repro.rng import SeedLike
from repro.types import Dataset, Point


def build_tables(
    owner: LSHNeighborSampler,
    dataset: Dataset,
    dynamic: bool = True,
    max_tombstone_fraction: float = 0.25,
    use_ranks: Optional[bool] = None,
    seed: SeedLike = None,
    n_shards: Optional[int] = None,
    placement: str = "round_robin",
):
    """Build a table layer for *owner* exactly as its offline ``fit`` would.

    This is the one table-construction recipe shared by
    :meth:`BatchQueryEngine.build` and the :class:`~repro.api.FairNN`
    facade: ``(K, L)`` resolve through the owner's parameter machinery, the
    hash functions default to the owner's own table stream (so
    ``build(seed=s)`` and an offline ``fit(seed=s)`` draw identical
    functions), and for static tables the rank permutation comes from the
    owner's permutation stream.  ``use_ranks`` defaults to the owner's need;
    pass an explicit value when other rank-requiring samplers will share the
    tables.  Returns ``(tables, bound_dataset)`` where *bound_dataset* is
    what attached samplers must be given (the tables' own live container for
    dynamic tables).

    Passing *n_shards* (an int, even ``1``) builds a
    :class:`~repro.engine.sharded.ShardedLSHTables` partitioned by
    *placement* instead of one monolithic dynamic table set — same hash
    functions, same ranks, byte-identical merged buckets.  ``None`` (the
    default) keeps the unsharded layout.  Sharding requires ``dynamic=True``.
    """
    n = len(dataset)
    if n == 0:
        raise InvalidParameterError("cannot build tables over an empty dataset")
    params = owner._resolve_parameters(n)
    family: LSHFamily = owner.family
    concatenated = family.concatenate(params.k) if params.k > 1 else family
    tables_seed = seed if seed is not None else owner._tables_rng
    if use_ranks is None:
        use_ranks = owner._use_ranks
    if n_shards is not None and not dynamic:
        raise InvalidParameterError(
            "sharded tables are a serving-layer structure; build with dynamic=True"
        )
    if dynamic:
        if n_shards is not None:
            from repro.engine.sharded import ShardedLSHTables  # circular at import time

            tables = ShardedLSHTables(
                concatenated,
                params.l,
                seed=tables_seed,
                use_ranks=use_ranks,
                max_tombstone_fraction=max_tombstone_fraction,
                n_shards=n_shards,
                placement=placement,
            )
        else:
            tables = DynamicLSHTables(
                concatenated,
                params.l,
                seed=tables_seed,
                use_ranks=use_ranks,
                max_tombstone_fraction=max_tombstone_fraction,
            )
        tables.fit(dataset)
        return tables, tables.dataset
    ranks = owner._perm_rng.permutation(n) if use_ranks else None
    tables = LSHTables(concatenated, params.l, seed=tables_seed)
    tables.fit(dataset, ranks=ranks)
    return tables, list(dataset)


class BatchQueryEngine:
    """Serve sampling queries in batches over one fitted sampler.

    Parameters
    ----------
    sampler:
        Any fitted :class:`~repro.core.base.NeighborSampler`.  Samplers bound
        to an :class:`~repro.lsh.tables.LSHTables` get vectorized batch
        hashing; others still get the uniform request/response surface.
    batch_hashing:
        Set False to disable key priming (used by the benchmarks to measure
        the win, and as an escape hatch for exotic samplers).
    coalesce_duplicates:
        Set False to answer every request independently even when the sampler
        is query-deterministic (duplicates are then re-executed).
    sampler_name:
        Serving name stamped on every :class:`QueryResponse`; defaults to the
        sampler's registry key (falling back to its class name).
    spec:
        Optional originating :class:`~repro.spec.SamplerSpec` or
        :class:`~repro.spec.EngineSpec`.  Purely declarative — the engine
        never reads it — but :func:`~repro.engine.snapshot.save_engine`
        persists it in the snapshot manifest (format v3) so artifacts stay
        self-describing.
    """

    def __init__(
        self,
        sampler: NeighborSampler,
        batch_hashing: bool = True,
        coalesce_duplicates: bool = True,
        sampler_name: Optional[str] = None,
        spec=None,
    ):
        if not getattr(sampler, "_fitted", False):
            raise NotFittedError("BatchQueryEngine requires a fitted (or attached) sampler")
        self.sampler = sampler
        self.batch_hashing = bool(batch_hashing)
        self.coalesce_duplicates = bool(coalesce_duplicates)
        self.sampler_name = (
            sampler_name
            if sampler_name is not None
            else SAMPLERS.name_of(type(sampler)) or type(sampler).__name__
        )
        self.spec = spec
        self.stats = EngineStats()
        self._wal = None
        self._tables_dirty = False
        # Serializes the mutate path (insert/delete/note_external_mutation)
        # and the lazy per-batch re-sync against each other: concurrent HTTP
        # mutations must not interleave MutationDelta bookkeeping or the
        # insert/delete counters, and a mutation landing mid-drain must not
        # race notify_update.  Reentrant because a sync may itself trigger
        # compaction paths that re-enter engine accounting.
        self._mutate_lock = threading.RLock()
        # Guards lifetime-counter accumulation in run(); subclasses answering
        # on worker threads share it for their own counter updates.
        self._stats_lock = threading.Lock()
        # Samplers with query-time randomness share one RNG stream, which is
        # not safe (or meaningful) to advance from concurrent batches; their
        # batches execute serially.  Query-deterministic samplers run
        # concurrent batches freely.
        self._serial_run_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction convenience
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sampler: LSHNeighborSampler,
        dataset: Dataset,
        dynamic: bool = True,
        max_tombstone_fraction: float = 0.25,
        seed: SeedLike = None,
    ) -> "BatchQueryEngine":
        """Build tables for an *unfitted* LSH sampler and wrap it in an engine.

        This is the one-call path to a serving engine: parameters ``(K, L)``
        are resolved exactly as ``sampler.fit`` would, but the tables are
        created as :class:`~repro.engine.dynamic.DynamicLSHTables` (unless
        ``dynamic=False``) and the sampler is attached to them, so the
        resulting engine supports online inserts and deletes.
        """
        tables, bound_dataset = build_tables(
            sampler,
            dataset,
            dynamic=dynamic,
            max_tombstone_fraction=max_tombstone_fraction,
            seed=seed,
        )
        sampler.attach(tables, bound_dataset)
        return cls(sampler)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tables(self) -> Optional[LSHTables]:
        """The sampler's table layer, when it has one."""
        return getattr(self.sampler, "tables", None)

    @property
    def is_dynamic(self) -> bool:
        """Whether the engine supports online index mutation."""
        return isinstance(self.tables, DynamicLSHTables)

    @property
    def num_live_points(self) -> int:
        """Live (non-tombstoned) indexed points."""
        tables = self.tables
        if isinstance(tables, DynamicLSHTables):
            return tables.num_live
        return self.sampler.num_points

    def stats_dict(self) -> Dict:
        """The engine's serving state as one JSON-serializable dict.

        Combines the lifetime :class:`~repro.engine.requests.EngineStats`
        counters (via :meth:`EngineStats.to_dict
        <repro.engine.requests.EngineStats.to_dict>`) with the engine's
        identity and index occupancy — the payload the HTTP ``/v1/stats``
        endpoint returns per sampler and the benchmark writers persist.
        """
        tables = self.tables
        store = self._current_store()
        if store is not None:
            # Mirror the block cache's lifetime counters into EngineStats
            # before serializing, so ``counters`` and ``store.cache`` agree.
            cache = store.cache_stats()
            if cache is not None:
                self.stats.store_cache_hits = int(cache["hits"])
                self.stats.store_cache_misses = int(cache["misses"])
                self.stats.store_bytes_fetched = int(cache["bytes_fetched"])
        payload = {
            "sampler": self.sampler_name,
            "sampler_class": type(self.sampler).__name__,
            "is_dynamic": self.is_dynamic,
            "live_points": int(self.num_live_points),
            "counters": self.stats.to_dict(),
        }
        if store is not None:
            payload["store"] = store.stats_dict()
        if isinstance(tables, DynamicLSHTables):
            payload["pending_tombstones"] = int(tables.pending_tombstones)
        return payload

    def _current_store(self):
        """The already-built columnar store serving this engine, or ``None``.

        Deliberately reads the cached slots (``tables._store`` /
        ``sampler._store``) instead of the lazy-building accessors: stats
        reporting must never force a columnar pack of the dataset.
        """
        tables = self.tables
        store = getattr(tables, "_store", None) if tables is not None else None
        if store in (None, False):
            store = getattr(self.sampler, "_store", None)
        return store or None

    # ------------------------------------------------------------------
    # Index mutation
    # ------------------------------------------------------------------
    def _dynamic_tables(self) -> DynamicLSHTables:
        tables = self.tables
        if not isinstance(tables, DynamicLSHTables):
            raise InvalidParameterError(
                "engine is backed by static tables; build with dynamic=True for insert/delete"
            )
        return tables

    def insert(self, point: Point) -> int:
        """Index a new point online; returns its dataset index."""
        return self.insert_many([point])[0]

    def insert_many(self, points: Dataset) -> List[int]:
        """Bulk-index new points (vectorized hashing, merged bucket splices).

        An empty batch is a documented no-op: ``insert_many([])`` returns
        ``[]`` without touching the tables — no
        :class:`~repro.engine.dynamic.MutationDelta` is recorded, no engine
        counter moves, and the attached sampler is not re-synchronized.
        """
        points = list(points)
        if not points:
            return []
        tables = self._dynamic_tables()
        with self._mutate_lock:
            if self._wal is not None:
                self._wal.append({"op": "insert", "points": points, "key": None})
            indices = tables.insert_many(points)
            self.stats.inserts += len(indices)
            if indices:
                self._tables_dirty = True
        return indices

    def delete(self, index: int) -> None:
        """Remove a point online (tombstone + amortized compaction)."""
        tables = self._dynamic_tables()
        with self._mutate_lock:
            if self._wal is not None:
                # Mirror the table layer's validation so a doomed delete is
                # rejected before it is journaled (see DynamicLSHTables.delete).
                index = int(index)
                n = tables.num_points
                if not 0 <= index < n:
                    raise SlotOutOfRangeError(f"index {index} out of range [0, {n})")
                if not tables.alive[index]:
                    raise AlreadyDeletedError(f"point {index} was already deleted")
                self._wal.append({"op": "delete", "index": index, "key": None})
            tables.delete(index)
            self.stats.deletes += 1
            self._tables_dirty = True

    def attach_wal(self, wal) -> None:
        """Journal this engine's own mutations to *wal* before applying them.

        For standalone engines (no :class:`~repro.api.FairNN` facade) this
        provides the same log-before-apply durability contract the facade
        gets from ``serve(data_dir=...)``: replaying the log onto the
        snapshot the WAL position names reproduces the engine exactly.
        Pass ``None`` to detach.  Facade-managed engines do **not** need
        this — the facade journals at its own mutation entry points.
        """
        with self._mutate_lock:
            self._wal = wal

    def note_external_mutation(self, inserts: int = 0, deletes: int = 0) -> None:
        """Record index mutations applied directly to the shared table layer.

        When several engines serve different samplers over one table set
        (the :class:`~repro.api.FairNN` facade), the mutation is applied to
        the tables once and every engine is told about it here, so each one
        re-synchronizes its own sampler lazily on its next batch.
        """
        with self._mutate_lock:
            self.stats.inserts += int(inserts)
            self.stats.deletes += int(deletes)
            if inserts or deletes:
                self._tables_dirty = True

    def _sync(self) -> None:
        """Propagate pending index mutations to the sampler (lazily, per batch).

        ``notify_update`` drains the tables' accumulated
        :class:`~repro.engine.dynamic.MutationDelta`, so the sampler sees one
        structured description of everything that changed since the last
        batch and can update only the affected per-bucket state.
        """
        if not self._tables_dirty:
            return
        with self._mutate_lock:
            if not self._tables_dirty:
                return
            tables = self.tables
            if isinstance(self.sampler, LSHNeighborSampler):
                self.sampler.notify_update()
            if isinstance(tables, DynamicLSHTables):
                self.stats.rebuilds_triggered = tables.rebuilds_triggered
            self._tables_dirty = False

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Union[QueryRequest, Point]]) -> List[QueryResponse]:
        """Answer a batch of requests; responses are returned in order.

        Bare points are treated as ``QueryRequest(query=point)``.  Two
        batch-level amortizations apply: duplicate single-draw requests are
        coalesced when the sampler declares itself query-deterministic
        (serving traffic is heavy-tailed; hot queries repeat), and the
        distinct queries are hashed against all ``L`` tables in one
        vectorized pass.

        Concurrent ``run`` calls (the HTTP serving surface answers from
        handler threads) are safe: batches over query-deterministic samplers
        execute concurrently, while samplers with query-time randomness are
        serialized per engine so their RNG stream is never advanced from two
        threads at once.
        """
        if getattr(self.sampler, "deterministic_queries", False):
            return self._run_batch(requests)
        with self._serial_run_lock:
            return self._run_batch(requests)

    def _run_batch(self, requests: Sequence[Union[QueryRequest, Point]]) -> List[QueryResponse]:
        self._sync()
        normalized = [
            request if isinstance(request, QueryRequest) else QueryRequest(query=request)
            for request in requests
        ]
        distinct, assignment = self._coalesce(normalized)
        tables = self.tables
        primed = False
        keys_per_query = None
        if self.batch_hashing and tables is not None and len(distinct) > 1:
            queries = [request.query for request in distinct]
            keys_per_query = tables.query_keys_many(queries)
            tables.prime_key_cache(queries, keys_per_query)
            primed = True
        hits_before = tables.key_cache_hits if tables is not None else 0
        try:
            answers = self._execute(distinct, keys_per_query)
        finally:
            if primed:
                tables.clear_key_cache()
        with self._stats_lock:
            if tables is not None:
                self.stats.key_cache_hits += tables.key_cache_hits - hits_before
            for answer in answers:
                # Work counters accumulate here (not inside _answer) so that
                # subclasses may compute answers concurrently; multi-draw
                # responses carry empty QueryStats and contribute nothing,
                # exactly as before.
                self.stats.candidates_scanned += answer.stats.candidates_examined
                self.stats.distance_evaluations += answer.stats.distance_evaluations
                self.stats.distance_kernel_calls += answer.stats.kernel_calls
            self.stats.queries_served += len(normalized)
            self.stats.batches_served += 1
        responses = []
        for position, answer_index in enumerate(assignment):
            answer = answers[answer_index]
            if answer.request_index == position:
                responses.append(answer)
            else:
                responses.append(
                    QueryResponse(
                        request_index=position,
                        indices=list(answer.indices),
                        value=answer.value,
                        # Own copy: sharing one mutable QueryStats across
                        # coalesced responses would let a caller's edit to
                        # one response corrupt the counters of the others.
                        stats=replace(answer.stats),
                        sampler=answer.sampler,
                    )
                )
        return responses

    def _coalesce(self, normalized: Sequence[QueryRequest]):
        """Collapse duplicate single-draw requests for deterministic samplers.

        Returns ``(distinct_requests, assignment)`` where ``assignment[i]``
        is the index into ``distinct_requests`` answering request ``i``.
        Coalescing is exact — the sampler has declared that identical queries
        always receive identical answers — and never applies to multi-draw
        requests or samplers with query-time randomness.
        """
        eligible = self.coalesce_duplicates and getattr(
            self.sampler, "deterministic_queries", False
        )
        distinct: List[QueryRequest] = []
        assignment: List[int] = []
        slot_of: dict = {}
        for request in normalized:
            slot_key = None
            if eligible and request.k == 1:
                digest = point_digest(request.query)
                if digest is not None:
                    slot_key = (digest, request.exclude_index)
            slot = slot_of.get(slot_key) if slot_key is not None else None
            if slot is None:
                slot = len(distinct)
                distinct.append(request)
                if slot_key is not None:
                    slot_of[slot_key] = slot
            else:
                with self._stats_lock:
                    self.stats.coalesced_queries += 1
            assignment.append(slot)
        return distinct, assignment

    def sample_batch(self, queries: Sequence[Point]) -> List[Optional[int]]:
        """Convenience wrapper: one single-draw sample index per query."""
        return [response.index for response in self.run(list(queries))]

    def _execute(self, distinct, keys_per_query) -> List[QueryResponse]:
        """Answer the batch's distinct requests, in order.

        *keys_per_query* holds the pre-hashed per-table bucket keys of each
        distinct query (``None`` when batch hashing was skipped).  The base
        implementation answers serially; the sharded engine overrides this
        to fan candidate gathering — and, for query-deterministic samplers,
        whole queries — out over its worker pool.
        """
        return [self._answer(position, request) for position, request in enumerate(distinct)]

    def _answer(self, position: int, request: QueryRequest) -> QueryResponse:
        if request.k == 1:
            result = None
            tables = self.tables
            has_fast_path = (
                isinstance(self.sampler, LSHNeighborSampler)
                and type(self.sampler).sample_detailed_from_candidates
                is not LSHNeighborSampler.sample_detailed_from_candidates
            )
            if has_fast_path and tables is not None and tables.ranks is not None:
                # Candidate-gathering stage: hand the sampler the rank-sorted
                # colliding multiset, assembled with array operations; samplers
                # without a view-based fast path return None and fall through.
                result = self.sampler.sample_detailed_from_candidates(
                    request.query,
                    tables.colliding_view(request.query),
                    exclude_index=request.exclude_index,
                )
            if result is None:
                result = self.sampler.sample_detailed(
                    request.query, exclude_index=request.exclude_index
                )
            return QueryResponse(
                request_index=position,
                indices=[] if result.index is None else [int(result.index)],
                value=result.value,
                stats=result.stats,
                sampler=self.sampler_name,
            )
        indices = self.sampler.sample_k(request.query, request.k, replacement=request.replacement)
        return QueryResponse(
            request_index=position,
            indices=[int(i) for i in indices],
            sampler=self.sampler_name,
        )

"""Section 5.2: the alpha-NNIS query on top of the filter index.

``L = Theta(log n)`` independent :class:`~repro.core.filter_nn.GaussianFilterIndex`
structures are built; every point is stored in exactly one bucket per
structure (nearly-linear space).  A query gathers all buckets above the query
threshold across the ``L`` structures and then performs the rejection loop of
Theorem 4:

(A) pick a bucket with probability proportional to its current size,
(B) pick a uniform point ``p`` of that bucket and compute ``c_p``, the number
    of gathered buckets containing ``p``,
(C) if ``p`` is a near point (inner product >= alpha) report it with
    probability ``1 / c_p``,
(D) if ``p`` is a far point (inner product < beta) delete it from the working
    copy so it is never drawn again.

Every near point is reported with probability ``1 / K'`` per round (where
``K'`` is the current total bucket mass), independently of how many buckets
it appears in, so the output is uniform over ``B_S(q, alpha)``; and because
the randomness is fresh per query the answers are independent across queries.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import NeighborSampler
from repro.core.filter_nn import GaussianFilterIndex
from repro.core.result import QueryResult, QueryStats
from repro.distances.inner_product import InnerProductSimilarity
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.rng import SeedLike, ensure_rng, spawn_rngs
from repro.types import Dataset, Point
from repro.registry import register_sampler


@register_sampler("filter", inputs="self")
class FilterFairSampler(NeighborSampler):
    """Independent uniform sampling from ``B_S(q, alpha)`` in nearly-linear space.

    Parameters
    ----------
    alpha, beta:
        Near and relaxed inner-product thresholds (``-1 < beta < alpha < 1``).
    num_structures:
        ``L``; defaults to ``ceil(log2 n)`` at fit time (at least 3).
    epsilon, filters_per_block, num_blocks:
        Passed through to every underlying :class:`GaussianFilterIndex`.
    max_rounds:
        Safety cap on rejection rounds per query.
    """

    def __init__(
        self,
        alpha: float,
        beta: float,
        num_structures: Optional[int] = None,
        epsilon: float = 0.1,
        filters_per_block: Optional[int] = None,
        num_blocks: Optional[int] = None,
        max_rounds: int = 100_000,
        seed: SeedLike = None,
    ):
        super().__init__()
        if not -1.0 < beta < alpha < 1.0:
            raise InvalidParameterError(
                f"need -1 < beta < alpha < 1, got alpha={alpha}, beta={beta}"
            )
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.measure = InnerProductSimilarity()
        self.radius = self.alpha
        self.far_radius = self.beta
        self.epsilon = float(epsilon)
        self._requested_structures = num_structures
        self._filters_per_block = filters_per_block
        self._num_blocks = num_blocks
        self.max_rounds = int(max_rounds)
        self._seed = seed
        self._query_rng = ensure_rng(None if seed is None else spawn_rngs(seed, 1)[0])
        self.structures: List[GaussianFilterIndex] = []

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "FilterFairSampler":
        """Build the ``O(log n)`` independent filter indexes; returns ``self``.

        Each query round consumes one structure's independent randomness, so
        the number of structures bounds how many rejection rounds stay
        provably independent.
        """
        data = np.asarray(dataset, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise EmptyDatasetError("FilterFairSampler requires a non-empty 2-D dataset")
        n = data.shape[0]
        num_structures = (
            int(self._requested_structures)
            if self._requested_structures is not None
            else max(3, int(math.ceil(math.log2(max(2, n)))))
        )
        rngs = spawn_rngs(self._seed, num_structures + 1)
        self._query_rng = rngs[-1]
        self.structures = []
        for structure_index in range(num_structures):
            index = GaussianFilterIndex(
                alpha=self.alpha,
                beta=self.beta,
                epsilon=self.epsilon,
                filters_per_block=self._filters_per_block,
                num_blocks=self._num_blocks,
                seed=rngs[structure_index],
            )
            index.fit(data)
            self.structures.append(index)
        self._store_dataset(data)
        return self

    # ------------------------------------------------------------------
    @property
    def num_structures(self) -> int:
        """Number of independent filter structures ``L``."""
        self._check_fitted()
        return len(self.structures)

    def _gather_buckets(self, query: np.ndarray) -> List[Tuple[int, List[int]]]:
        """All above-threshold non-empty buckets as ``(structure_index, members)``."""
        gathered: List[Tuple[int, List[int]]] = []
        for structure_index, structure in enumerate(self.structures):
            for key in structure.candidate_buckets(query):
                members = structure._buckets.get(key)
                if members:
                    gathered.append((structure_index, list(members)))
        return gathered

    def _occurrence_counts(self, gathered: List[Tuple[int, List[int]]]) -> Dict[int, int]:
        """Map point index -> number of gathered buckets containing it (``c_p``)."""
        if not gathered:
            return {}
        stacked = np.concatenate([np.asarray(members, dtype=np.intp) for _, members in gathered])
        unique, counts = np.unique(stacked, return_counts=True)
        return {int(index): int(count) for index, count in zip(unique, counts)}

    # ------------------------------------------------------------------
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Section 5.2 alpha-NNIS query: rejection-sample over the filters.

        Each round queries one of the independent filter structures and
        accepts a candidate with the bias-correcting probability, so every
        alpha-near point is returned uniformly and independently across
        queries.  See :meth:`~repro.core.base.NeighborSampler.sample_detailed`
        for the parameters and the returned
        :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        query = np.asarray(query, dtype=float)
        stats = QueryStats()

        gathered = self._gather_buckets(query)
        stats.buckets_probed = len(gathered)
        if not gathered:
            return QueryResult(index=None, value=None, stats=stats)
        occurrences = self._occurrence_counts(gathered)

        # Existence check: is there any near point in the gathered buckets?
        # All distinct gathered points are scored with one batched kernel
        # call; the rejection loop below reads the same memo.
        evaluator = self._evaluator(query)
        distinct = np.fromiter(occurrences.keys(), dtype=np.intp, count=len(occurrences))
        values = evaluator.values(distinct)
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        near_mask = values >= self.alpha
        if exclude_index is not None:
            near_mask &= distinct != exclude_index
        if not near_mask.any():
            return QueryResult(index=None, value=None, stats=stats)
        value_cache: Dict[int, float] = dict(zip(distinct.tolist(), values.tolist()))

        # Working copies that far-point removals may shrink.
        buckets = [list(members) for _, members in gathered]
        sizes = np.array([len(members) for members in buckets], dtype=float)
        total = float(sizes.sum())

        while stats.rounds < self.max_rounds and total > 0:
            stats.rounds += 1
            bucket_index = int(self._query_rng.choice(len(buckets), p=sizes / total))
            members = buckets[bucket_index]
            position = int(self._query_rng.integers(0, len(members)))
            point = members[position]
            stats.candidates_examined += 1
            value = value_cache[point]
            if point == exclude_index:
                # The excluded point behaves like a (beta, alpha) point: it is
                # never reported but also never removed.
                continue
            if value >= self.alpha:
                if self._query_rng.random() < 1.0 / occurrences[point]:
                    return QueryResult(index=int(point), value=value, stats=stats)
            elif value < self.beta:
                # Far point: remove so it is never drawn again this query.
                members.pop(position)
                sizes[bucket_index] -= 1.0
                total -= 1.0
        return QueryResult(index=None, value=None, stats=stats)

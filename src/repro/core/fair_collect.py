"""The "fair LSH" baseline used in the paper's experiments.

Section 6.1: "we also consider fair LSH, which we implemented in the naive
way of collecting all points with similarity at least r found in the buckets,
removing duplicates, and returning one of the remaining points at random."
This is the simple (but slow — its cost grows with the neighborhood size)
way of making LSH fair; the Section 3 and 4 data structures achieve the same
output distribution without paying for the whole neighborhood on every query.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("collect_all", inputs="family")
class CollectAllFairSampler(LSHNeighborSampler):
    """Collect every colliding r-near point, dedupe, sample uniformly."""

    def sample_detailed(self, query: Point, exclude_index: int = None) -> QueryResult:
        """Gather all colliding points, keep the r-near ones, draw uniformly.

        Exact uniformity over the colliding near points, bought with a full
        scan of every colliding bucket — the Section 6 "fair LSH" baseline
        cost the paper's structures avoid.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        # Hash once: the distinct candidates and the multiset size both come
        # from the same bucket gather.
        buckets = self.tables.query_buckets(query)
        parts = [bucket.indices for bucket in buckets if bucket.indices.size]
        stats.buckets_probed = self.tables.num_tables
        stats.candidates_examined = sum(part.size for part in parts)
        candidates = self.tables.distinct_indices(parts)
        if exclude_index is not None:
            candidates = candidates[candidates != exclude_index]
        if candidates.size == 0:
            return QueryResult(index=None, value=None, stats=stats)
        evaluator = self._evaluator(query)
        values = evaluator.values(candidates)
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        near_mask = self.measure.within_mask(values, self.radius)
        near = candidates[near_mask]
        if near.size == 0:
            return QueryResult(index=None, value=None, stats=stats)
        position = int(self._query_rng.integers(0, near.size))
        chosen = int(near[position])
        chosen_value = float(values[near_mask][position])
        return QueryResult(index=chosen, value=chosen_value, stats=stats)

    def collect_neighborhood(self, query: Point) -> np.ndarray:
        """All distinct colliding r-near points (the set the sample is drawn from)."""
        self._check_fitted()
        candidates = self.tables.query_candidates(query)
        if candidates.size == 0:
            return candidates
        values = self._evaluator(query).values(candidates)
        return candidates[self.measure.within_mask(values, self.radius)]

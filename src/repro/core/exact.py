"""Exact brute-force uniform sampler (the ground truth baseline).

It scans the whole dataset, computes the exact ball ``B_S(q, r)`` and returns
a uniform element of it.  Query time is linear, which is precisely the cost
the paper's data structures avoid, but it is the reference against which
their output distributions are validated.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import NeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.distances.base import Measure
from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point
from repro.registry import register_sampler


@register_sampler("exact", inputs="measure")
class ExactUniformSampler(NeighborSampler):
    """Uniform sampling from the exact neighborhood by exhaustive search.

    Parameters
    ----------
    measure:
        Distance or similarity measure defining the ball.
    radius:
        Near threshold ``r`` in that measure.
    seed:
        Controls the uniform draw from the computed neighborhood.
    """

    def __init__(self, measure: Measure, radius: float, seed: SeedLike = None):
        super().__init__()
        self.measure = measure
        self.radius = float(radius)
        self._rng = ensure_rng(seed)

    def fit(self, dataset: Dataset) -> "ExactUniformSampler":
        """Store the dataset (no index is built); returns ``self``."""
        self._store_dataset(dataset)
        return self

    def _all_values(self, query: Point) -> np.ndarray:
        """Measure values of every dataset point against *query*.

        Runs through the per-query evaluator so the scan uses the columnar
        batch kernels (one kernel call for the whole dataset) and honours the
        scalar-fallback switch for datasets with no columnar form.
        """
        evaluator = self._evaluator(query)
        return evaluator.values(np.arange(len(self._dataset), dtype=np.intp))

    def neighborhood(self, query: Point) -> np.ndarray:
        """Indices of the exact ball ``B_S(q, r)``."""
        self._check_fitted()
        values = self._all_values(query)
        return np.flatnonzero(self.measure.within_mask(values, self.radius))

    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Compute the exact ball and return a uniform element of it.

        Linear in ``n`` — the reference answer distribution the fair
        samplers are audited against.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        values = self._all_values(query)
        near = np.flatnonzero(self.measure.within_mask(values, self.radius))
        if exclude_index is not None:
            near = near[near != exclude_index]
        stats = QueryStats(
            candidates_examined=len(self._dataset),
            distance_evaluations=len(self._dataset),
            buckets_probed=0,
            rounds=1,
            kernel_calls=1,
        )
        if near.size == 0:
            return QueryResult(index=None, value=None, stats=stats)
        chosen = int(self._rng.choice(near))
        return QueryResult(index=chosen, value=float(values[chosen]), stats=stats)

    def sample_k(self, query: Point, k: int, replacement: bool = True) -> List[int]:
        """Exact k-sample: directly draws from the computed ball."""
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        near = self.neighborhood(query)
        if near.size == 0 or k == 0:
            return []
        if replacement:
            return [int(i) for i in self._rng.choice(near, size=k, replace=True)]
        take = min(k, near.size)
        return [int(i) for i in self._rng.choice(near, size=take, replace=False)]

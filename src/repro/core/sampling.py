"""Convenience helpers for drawing several near neighbors (Section 3.1).

These work with any :class:`~repro.core.base.NeighborSampler`; samplers with
a native multi-sample algorithm (e.g. the Section 3 structure's
"k lowest ranks" without-replacement sampling) override ``sample_k`` and are
used directly.
"""

from __future__ import annotations

from typing import List

from repro.core.base import NeighborSampler
from repro.exceptions import InvalidParameterError
from repro.types import Point


def sample_with_replacement(sampler: NeighborSampler, query: Point, k: int) -> List[int]:
    """Draw *k* near neighbors of *query* with replacement.

    For samplers that solve the independent-sampling problem (Sections 4
    and 5) each draw is an independent uniform sample; for the Section 3
    structure the draws are identical unless ranks are re-randomized, which
    is exactly the limitation Appendix A and Section 4 address.
    """
    if k < 0:
        raise InvalidParameterError(f"k must be non-negative, got {k}")
    return sampler.sample_k(query, k, replacement=True)


def sample_without_replacement(sampler: NeighborSampler, query: Point, k: int) -> List[int]:
    """Draw up to *k* distinct near neighbors of *query*."""
    if k < 0:
        raise InvalidParameterError(f"k must be non-negative, got {k}")
    return sampler.sample_k(query, k, replacement=False)

"""Weighted fair sampling — the extension the paper leaves as future work.

Section 1.3: "in the case of a recommender system, we might want to consider
a weighted case where closer points are more likely to be returned.  [...]
We leave the weighted case as an interesting direction for future work."

This module provides a simple, provably correct construction on top of any
*independent* fair sampler (Section 4 or Section 5): rejection sampling.
Given a weight function ``w`` mapping the measure value (distance or
similarity) to a non-negative weight bounded by ``w_max`` on the neighborhood,

1. draw a uniform near neighbor ``p`` from the underlying sampler,
2. accept it with probability ``w(value(p, q)) / w_max``, otherwise retry.

Conditioned on acceptance, ``p`` is distributed proportionally to its weight
over ``B_S(q, r)``; and because the underlying draws are independent, so are
the weighted samples.  The expected number of draws per output is
``w_max / mean weight``, so smooth weight functions cost only a small
constant factor.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.base import NeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.exceptions import InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point


class WeightedFairSampler(NeighborSampler):
    """Distance-sensitive fair sampling by rejection over a fair sampler.

    Parameters
    ----------
    base:
        Any fitted or unfitted :class:`NeighborSampler` whose repeated
        queries are independent uniform draws (the Section 4 or Section 5
        structures; the exact brute-force sampler also qualifies).
    weight:
        Function mapping the measure value between a candidate and the query
        to a non-negative weight.
    max_weight:
        An upper bound on ``weight`` over the neighborhood (the rejection
        envelope).  Weights above this bound are clipped.
    max_attempts:
        Safety cap on rejection rounds per query.
    """

    def __init__(
        self,
        base: NeighborSampler,
        weight: Callable[[float], float],
        max_weight: float,
        max_attempts: int = 1000,
        seed: SeedLike = None,
    ):
        super().__init__()
        if max_weight <= 0:
            raise InvalidParameterError(f"max_weight must be positive, got {max_weight}")
        if max_attempts < 1:
            raise InvalidParameterError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base = base
        self.weight = weight
        self.max_weight = float(max_weight)
        self.max_attempts = int(max_attempts)
        self._rng = ensure_rng(seed)
        self.measure = base.measure
        self.radius = base.radius

    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "WeightedFairSampler":
        """Fit the underlying sampler (no extra state of its own)."""
        self.base.fit(dataset)
        self._store_dataset(dataset)
        return self

    def _ensure_bound_to_base(self) -> None:
        """Adopt the base sampler's dataset when it was fitted externally."""
        if not self._fitted and getattr(self.base, "_fitted", False):
            self._store_dataset(self.base.dataset)

    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Weighted draw: rejection-sample the base sampler's uniform output.

        Each round draws a uniform near neighbor from the base sampler and
        accepts it with probability proportional to its weight, so the
        output distribution is proportional to the weight function over the
        neighborhood.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._ensure_bound_to_base()
        self._check_fitted()
        stats = QueryStats()
        for _ in range(self.max_attempts):
            stats.rounds += 1
            result = self.base.sample_detailed(query, exclude_index=exclude_index)
            stats.candidates_examined += result.stats.candidates_examined
            stats.distance_evaluations += result.stats.distance_evaluations
            stats.buckets_probed += result.stats.buckets_probed
            stats.kernel_calls += result.stats.kernel_calls
            if result.index is None:
                return QueryResult(index=None, value=None, stats=stats)
            value = (
                result.value
                if result.value is not None
                else self.measure.value(self._dataset[result.index], query)
            )
            raw_weight = float(self.weight(value))
            if raw_weight < 0:
                raise InvalidParameterError(
                    f"weight function returned a negative weight {raw_weight} for value {value}"
                )
            acceptance = min(1.0, raw_weight / self.max_weight)
            if self._rng.random() < acceptance:
                return QueryResult(index=result.index, value=value, stats=stats)
        return QueryResult(index=None, value=None, stats=stats)


def exponential_similarity_weight(scale: float) -> Callable[[float], float]:
    """Weight ``exp(scale * value)`` — larger similarity, larger weight.

    A convenient weight for similarity measures; pair it with
    ``max_weight = exp(scale * 1.0)`` for similarities bounded by 1.
    """
    import math

    if scale < 0:
        raise InvalidParameterError(f"scale must be non-negative, got {scale}")
    return lambda value: math.exp(scale * value)


def inverse_distance_weight(epsilon: float = 1e-6) -> Callable[[float], float]:
    """Weight ``1 / (value + epsilon)`` — closer points get larger weight.

    Intended for distance measures; pair it with ``max_weight = 1 / epsilon``
    or a bound derived from the smallest distance of interest.
    """
    if epsilon <= 0:
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return lambda value: 1.0 / (value + epsilon)

"""Abstract sampler interfaces.

:class:`NeighborSampler` is the public face of every data structure in
:mod:`repro.core`; :class:`LSHNeighborSampler` adds the shared construction
logic for the samplers that sit on top of the LSH table layer (standard LSH,
collect-all fair LSH, the approximate-neighborhood baseline, and the
Section 3 / Appendix A / Section 4 structures).
"""

from __future__ import annotations

import abc
import copy
from typing import List, Optional

import numpy as np

from repro.core.evaluator import CandidateEvaluator
from repro.store import DatasetStore, make_store
from repro.distances.base import Measure
from repro.exceptions import EmptyDatasetError, InvalidParameterError, NotFittedError
from repro.lsh.family import LSHFamily
from repro.lsh.params import LSHParameters, select_parameters
from repro.lsh.tables import LSHTables
from repro.rng import SeedLike, spawn_rngs
from repro.core.result import QueryResult
from repro.types import Dataset, Point


class NeighborSampler(abc.ABC):
    """A data structure answering r-near-neighbor sampling queries.

    Subclasses are constructed with all their parameters and then bound to a
    dataset via :meth:`fit` (constructors that accept a ``dataset`` argument
    call ``fit`` themselves).  After fitting, :meth:`sample` returns the
    index of a point of ``B_S(q, r)`` — for the fair samplers, a uniformly
    distributed one — or ``None`` when no near neighbor is found.
    """

    #: The measure used to decide near/far; set during fit.
    measure: Measure
    #: The near threshold ``r`` (a distance or a similarity).
    radius: float
    #: True when repeated queries provably return the same answer (no
    #: query-time randomness).  The serving engine may then coalesce
    #: duplicate requests in a batch without changing any output.  Samplers
    #: that draw randomness per query MUST leave this False.
    deterministic_queries: bool = False

    def __init__(self) -> None:
        self._dataset: Optional[Dataset] = None
        self._fitted = False
        # Columnar store for the vectorized candidate-evaluation pipeline.
        # None = not built yet (lazy), False = dataset has no columnar form.
        self._store = None

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        """The indexed dataset."""
        self._check_fitted()
        return self._dataset

    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        self._check_fitted()
        return len(self._dataset)

    @abc.abstractmethod
    def fit(self, dataset: Dataset) -> "NeighborSampler":
        """Build the data structure over *dataset* and return ``self``."""

    @abc.abstractmethod
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Answer one query, returning the sampled index plus work counters.

        ``exclude_index`` removes one dataset point from consideration — the
        standard way to query with a point that is itself part of the indexed
        dataset (e.g. recommending for an existing user) without having the
        structure hand the query back to itself.
        """

    # ------------------------------------------------------------------
    def sample(self, query: Point, exclude_index: Optional[int] = None) -> Optional[int]:
        """Return the index of a sampled r-near neighbor of *query* (or None)."""
        return self.sample_detailed(query, exclude_index=exclude_index).index

    def sample_k(self, query: Point, k: int, replacement: bool = True) -> List[int]:
        """Sample *k* near neighbors of *query*.

        With ``replacement=True`` the query is simply repeated ``k`` times
        (each call is an independent draw for the independent samplers).
        Without replacement the default implementation also repeats the query
        and discards duplicates; the Section 3 sampler overrides this with
        the direct "k lowest ranks" algorithm from Section 3.1.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        results: List[int] = []
        seen = set()
        attempts = 0
        max_attempts = max(10 * k, 100)
        while len(results) < k and attempts < max_attempts:
            attempts += 1
            index = self.sample(query)
            if index is None:
                break
            if replacement:
                results.append(index)
            elif index not in seen:
                seen.add(index)
                results.append(index)
        return results

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")

    def _store_dataset(self, dataset: Dataset) -> None:
        if len(dataset) == 0:
            raise EmptyDatasetError("cannot fit a sampler on an empty dataset")
        self._dataset = dataset
        self._fitted = True
        self._store = None  # rebuilt lazily for the new dataset

    def _active_store(self) -> Optional[DatasetStore]:
        """The columnar store candidates are scored against, or ``None``.

        Samplers attached to a table layer that maintains its own store under
        mutation (:class:`~repro.engine.dynamic.DynamicLSHTables`) share that
        store, so inserted points become scoreable without a rebuild; everyone
        else packs their (immutable) dataset once, on first use.
        """
        tables = getattr(self, "tables", None)
        if tables is not None and hasattr(tables, "point_store"):
            return tables.point_store
        if self._store is None:
            self._store = make_store(self._dataset)
            if self._store is None:
                self._store = False  # remember the miss; don't re-probe per query
        return self._store or None

    def _evaluator(self, query: Point) -> CandidateEvaluator:
        """A fresh per-query memoized batch evaluator over the dataset."""
        return CandidateEvaluator(
            self.measure,
            query,
            store=self._active_store(),
            dataset=self._dataset,
            size=len(self._dataset),
        )

    def _is_near(self, index: int, query: Point, value_cache: Optional[dict] = None) -> bool:
        """Whether dataset point *index* is r-near to *query* (with caching)."""
        return self.measure.within(self._value(index, query, value_cache), self.radius)

    def _value(self, index: int, query: Point, value_cache: Optional[dict] = None) -> float:
        if value_cache is not None and index in value_cache:
            return value_cache[index]
        value = self.measure.value(self._dataset[index], query)
        if value_cache is not None:
            value_cache[index] = value
        return value


class LSHNeighborSampler(NeighborSampler):
    """Shared construction for samplers built on :class:`~repro.lsh.tables.LSHTables`.

    Parameters
    ----------
    family:
        Base LSH family (not yet concatenated).
    radius:
        Near threshold ``r`` in the family's measure.
    far_radius:
        Relaxed threshold ``cr`` used only for parameter selection; defaults
        to a mild relaxation when omitted.
    num_hashes, num_tables:
        Explicit ``(K, L)``.  When either is ``None`` the pair is chosen with
        :func:`repro.lsh.params.select_parameters` at fit time (it needs
        ``n``).
    recall, max_expected_far_collisions:
        Passed to the parameter selection when it runs.
    use_ranks:
        Whether the hash tables must store rank-sorted buckets (Sections 3
        and 4 need this; the baselines do not).
    seed:
        Controls every random choice (hash functions, permutation, query
        randomness).
    """

    #: Whether the sampler's query procedure works over an arbitrary rank
    #: domain (ranks as i.i.d. draws from a large interval, as the dynamic
    #: table layer uses) rather than requiring a permutation of ``0 .. n-1``.
    #: Samplers that index arrays by rank value must set this False.
    supports_dynamic_ranks: bool = True

    #: Whether this sampler's :meth:`_after_update` consumes the structured
    #: :class:`~repro.engine.dynamic.MutationDelta`.  Samplers with derived
    #: per-bucket state set this True; for everyone else ``notify_update``
    #: discards the record unresolved, skipping the per-batch hashing and
    #: grouping that resolution costs.
    consumes_mutation_deltas: bool = False

    def __init__(
        self,
        family: LSHFamily,
        radius: float,
        far_radius: Optional[float] = None,
        num_hashes: Optional[int] = None,
        num_tables: Optional[int] = None,
        recall: float = 0.99,
        max_expected_far_collisions: float = 1.0,
        use_ranks: bool = False,
        seed: SeedLike = None,
    ):
        super().__init__()
        self.family = family
        self.measure = family.measure
        self.radius = float(radius)
        self.far_radius = float(far_radius) if far_radius is not None else self._default_far_radius()
        self._explicit_k = num_hashes
        self._explicit_l = num_tables
        self._recall = recall
        self._max_far = max_expected_far_collisions
        self._use_ranks = use_ranks
        rngs = spawn_rngs(seed, 3)
        self._tables_rng, self._perm_rng, self._query_rng = rngs
        self.params: Optional[LSHParameters] = None
        self.tables: Optional[LSHTables] = None
        self.ranks: Optional[np.ndarray] = None
        # Table-layer mutation epoch this sampler last synchronized at; see
        # notify_update.
        self._synced_epoch = 0

    # ------------------------------------------------------------------
    def _default_far_radius(self) -> float:
        """A mild default relaxation of the near threshold."""
        from repro.distances.base import MeasureKind

        if self.measure.kind is MeasureKind.DISTANCE:
            return 2.0 * self.radius
        return 0.5 * self.radius

    def _resolve_parameters(self, n: int) -> LSHParameters:
        if self._explicit_k is not None and self._explicit_l is not None:
            k = int(self._explicit_k)
            l = int(self._explicit_l)
            p1 = self.family.collision_probability(self.radius) ** k
            p2 = self.family.collision_probability(self.far_radius) ** k
            return LSHParameters(
                k=k,
                l=l,
                p_near=p1,
                p_far=p2,
                recall=1.0 - (1.0 - p1) ** l,
                expected_far_collisions=n * p2,
            )
        params = select_parameters(
            self.family,
            near_threshold=self.radius,
            far_threshold=self.far_radius,
            n=n,
            recall=self._recall,
            max_expected_far_collisions=self._max_far,
        )
        if self._explicit_k is not None or self._explicit_l is not None:
            k = int(self._explicit_k) if self._explicit_k is not None else params.k
            l = int(self._explicit_l) if self._explicit_l is not None else params.l
            p1 = self.family.collision_probability(self.radius) ** k
            p2 = self.family.collision_probability(self.far_radius) ** k
            params = LSHParameters(
                k=k,
                l=l,
                p_near=p1,
                p_far=p2,
                recall=1.0 - (1.0 - p1) ** l,
                expected_far_collisions=n * p2,
            )
        return params

    def fit(self, dataset: Dataset) -> "LSHNeighborSampler":
        """Hash the dataset into ``L`` tables (with ranks when required)."""
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot fit a sampler on an empty dataset")
        self.params = self._resolve_parameters(n)
        concatenated = self.family.concatenate(self.params.k) if self.params.k > 1 else self.family
        self.tables = LSHTables(concatenated, self.params.l, seed=self._tables_rng)
        # Reset first: a previous attach() to ranked tables may have left
        # foreign ranks behind on a rankless sampler.
        self.ranks = None
        if self._use_ranks:
            self.ranks = self._perm_rng.permutation(n)
        self.tables.fit(dataset, ranks=self.ranks)
        self._store_dataset(dataset)
        self._synced_epoch = self.tables.mutation_epoch
        self._after_fit()
        return self

    def attach(self, tables: LSHTables, dataset: Dataset) -> "LSHNeighborSampler":
        """Bind this sampler to externally built (possibly mutable) tables.

        This is the serving-engine entry point: the engine owns an
        :class:`~repro.engine.dynamic.DynamicLSHTables` over a mutable dataset
        and re-points samplers at it instead of letting each sampler build a
        private static index.  ``dataset`` must be the table layer's own live
        container so that points inserted later are visible to the sampler
        without a refit.  The caller is responsible for passing tables whose
        family matches this sampler's.
        """
        n = len(dataset)
        if n == 0:
            raise EmptyDatasetError("cannot attach a sampler to an empty dataset")
        if self._use_ranks and tables.ranks is None:
            raise InvalidParameterError(
                f"{type(self).__name__} needs rank-sorted buckets but the tables were built without ranks"
            )
        if not self.supports_dynamic_ranks and tables.rank_domain > tables.num_points:
            raise InvalidParameterError(
                f"{type(self).__name__} requires permutation ranks (0..n-1) and cannot "
                "attach to tables with a dynamic rank domain; build the engine with "
                "dynamic=False or use a rank-domain-agnostic sampler"
            )
        self.tables = tables
        # Rank-agnostic samplers must not adopt the tables' ranks: a later
        # plain fit() would feed them to the fresh tables.
        self.ranks = tables.ranks if self._use_ranks else None
        # Params reflect the attached structure; _explicit_k/_explicit_l are
        # left untouched so a later plain fit() still auto-selects (K, L).
        self.params = self._attached_parameters(n)
        self._store_dataset(dataset)
        # _after_fit rebuilds all derived state from the tables as they are
        # now: any still-undrained mutation record predates that rebuild, so
        # it is discarded (unresolved — cheap) and the sampler starts
        # epoch-aligned instead of paying a second full rebuild on its first
        # sync.  A previously attached sampler loses the record too, but its
        # epoch check detects that and falls back to a rebuild of its own.
        tables.discard_delta()
        self._synced_epoch = getattr(tables, "mutation_epoch", 0)
        self._after_fit()
        return self

    def _attached_parameters(self, n: int) -> LSHParameters:
        """The parameter record describing externally built tables."""
        k = getattr(self.tables.family, "k", 1)
        l = self.tables.num_tables
        p1 = self.family.collision_probability(self.radius) ** k
        p2 = self.family.collision_probability(self.far_radius) ** k
        return LSHParameters(
            k=k,
            l=l,
            p_near=p1,
            p_far=p2,
            recall=1.0 - (1.0 - p1) ** l,
            expected_far_collisions=n * p2,
        )

    def notify_update(self) -> None:
        """Tell the sampler its attached tables mutated (insert/delete).

        Refreshes the views that go stale when the table layer grows its
        arrays, recomputes the parameter record for the new ``n``, drains the
        table layer's structured :class:`~repro.engine.dynamic.MutationDelta`
        and hands it to :meth:`_after_update` so subclasses can maintain
        derived per-bucket state incrementally.  Tables that do not track
        deltas report ``None``, which subclasses must treat as "anything may
        have changed" (full rebuild).

        The delta is drained (single-consumer).  Samplers track the table
        layer's mutation epoch and compare it with the drained record's
        ``start_epoch``, so a sampler that missed an earlier record (it went
        to a different consumer — two samplers attached to one table set)
        detects the gap, receives ``None`` and rebuilds in full instead of
        silently applying only the tail of the mutation history.  Samplers
        that declare :attr:`consumes_mutation_deltas` False skip the drain
        (and its resolution cost) entirely; the record is discarded.
        """
        self._check_fitted()
        self.ranks = self.tables.ranks if self._use_ranks else None
        # Size off the live count: under sustained churn the slot count keeps
        # growing while the served dataset does not, and parameter records
        # (expected far collisions etc.) should describe the latter.
        self.params = self._attached_parameters(max(1, self.tables.num_live))
        epoch = getattr(self.tables, "mutation_epoch", 0)
        if self.consumes_mutation_deltas:
            delta = self.tables.drain_delta()
            if delta is not None and delta.start_epoch != self._synced_epoch:
                # Mutations between our last sync and this record's start
                # were drained by another consumer; without their record,
                # only a full rebuild is safe.
                delta = None
        else:
            self.tables.discard_delta()
            delta = None
        self._synced_epoch = epoch
        self._after_update(delta)

    def sample_detailed_from_candidates(
        self,
        query: Point,
        view: tuple,
        exclude_index: Optional[int] = None,
    ) -> Optional[QueryResult]:
        """Answer one query from a pre-gathered candidate view, or ``None``.

        *view* is the rank-sorted ``(ranks, indices)`` multiset produced by
        :meth:`~repro.lsh.tables.LSHTables.colliding_view`.  The batch engine
        gathers it once per query with array operations and offers it to the
        sampler; samplers whose query procedure is a function of the colliding
        multiset override this to skip their per-bucket Python loop.  The
        default returns ``None``, telling the engine to fall back to
        :meth:`sample_detailed`.  Overrides must answer with exactly the same
        distribution as ``sample_detailed`` — this is a fast path, not a
        different sampler.
        """
        return None

    #: Whether this sampler's single-draw answer is determined by a *rank
    #: prefix* of the colliding view: scanning candidates in increasing rank
    #: order, the query can stop at the first near point.  Samplers that set
    #: this True must implement :meth:`sample_detailed_from_prefix`.  The
    #: sharded serving engine uses it to gather only each shard's bottom-``B``
    #: candidates by rank (a distributed top-k over the exchangeable rank
    #: domain) instead of merging the full colliding multiset.
    supports_rank_prefix_scan: bool = False

    def sample_detailed_from_prefix(
        self,
        query: Point,
        view: tuple,
        complete: bool,
        exclude_index: Optional[int] = None,
    ) -> Optional[QueryResult]:
        """Answer one query from a *rank-prefix* candidate view, or ``None``.

        *view* is a rank-sorted ``(ranks, indices)`` multiset that is a
        **prefix** (by rank) of the full colliding view: every colliding
        reference with rank below the view's last entry is present, but
        higher-ranked references may be missing unless *complete* is True.
        Implementations must return exactly what :meth:`sample_detailed`
        would return on the full view — including identical
        :class:`~repro.core.result.QueryStats` counters — or ``None`` when
        the prefix cannot prove that (the caller then retries with a longer
        prefix, or falls back to the full view).  The default returns
        ``None`` (no prefix support).
        """
        return None

    #: Whether this sampler's prefix methods need per-table metadata on the
    #: view — per-reference probing-table ids and full per-table colliding
    #: bucket sizes (``view.table_ids`` / ``view.table_sizes`` on a
    #: :class:`~repro.engine.gather.PrefixView`).  Samplers that replay a
    #: bucket-by-bucket scan (rather than a rank-ordered one) set this True
    #: so the sharded gather ships the metadata along; rank-ordered scanners
    #: leave it False and keep the wire payload minimal.
    prefix_scan_needs_tables: bool = False

    def sample_k_from_prefix(
        self,
        query: Point,
        view: tuple,
        complete: bool,
        k: int,
        replacement: bool = True,
    ) -> Optional[List[int]]:
        """Answer one multi-draw request from a rank-prefix view, or ``None``.

        The k-aware form of :meth:`sample_detailed_from_prefix`, with the
        same certification contract: *view* is a true rank prefix of the
        full colliding view (the whole view iff *complete*), and
        implementations must return **exactly** the list
        :meth:`~repro.core.base.NeighborSampler.sample_k` would return —
        same indices, same order — or ``None`` when the prefix cannot prove
        that (the caller then retries with a longer prefix, or falls back to
        the merged view).  Only samplers whose ``sample_k`` is a
        deterministic function of the colliding multiset can implement this;
        the default returns ``None`` (no k-aware prefix support), which the
        sharded engines also use as the eligibility signal — requests with
        ``k > 1`` only take the prefix path when this method is overridden.
        """
        return None

    def _stripped_for_snapshot(self) -> "LSHNeighborSampler":
        """A shallow copy of the sampler suitable for pickling into a snapshot.

        The heavy references (tables, dataset, rank view) are nulled — the
        snapshot layer persists them as arrays and re-binds them on load.
        Subclasses drop rebuildable per-query caches here too; state needed
        for bit-identical post-load behaviour (RNG streams, sketches) stays.
        """
        clone = copy.copy(self)
        clone.tables = None
        clone._dataset = None
        clone.ranks = None
        clone._store = None  # columnar store rebuilds lazily from the dataset
        return clone

    def _after_fit(self) -> None:
        """Hook for subclasses needing extra per-bucket structures."""

    def _after_update(self, delta=None) -> None:
        """Hook invoked by :meth:`notify_update`; default is a no-op.

        Subclasses that cache per-bucket derivatives (e.g. the Section 4
        count-distinct sketches) must bring them up to date here.

        Parameters
        ----------
        delta:
            The :class:`~repro.engine.dynamic.MutationDelta` drained from the
            table layer, naming exactly which buckets changed and how —
            subclasses should use it to update only the affected state.
            ``None`` means the tables reported no structured delta; the only
            safe response is a full rebuild of all derived state.
        """

    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        """Number of LSH tables in use."""
        self._check_fitted()
        return self.tables.num_tables

"""Section 3: the rank-permutation r-NNS data structure.

Construction assigns every data point a random *rank* (a position in a random
permutation drawn independently of the LSH randomness) and stores every LSH
bucket sorted by rank.  A query scans each colliding bucket in rank order
until the first r-near point and returns, over all ``L`` buckets, the near
point with the smallest rank.  Because the permutation is independent of the
hashing, every point of ``B_S(q, r)`` is equally likely to carry the smallest
rank, so — conditioned on the whole neighborhood colliding at least once,
which the choice of ``L`` guarantees with high probability — the output is
uniform over ``B_S(q, r)`` (Theorem 1).

Section 3.1: returning the ``k`` near points with the smallest ranks yields a
uniform sample of size ``k`` *without replacement*.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.exceptions import InvalidParameterError
from repro.lsh.family import LSHFamily
from repro.rng import SeedLike
from repro.types import Point


class PermutationFairSampler(LSHNeighborSampler):
    """Fair r-near-neighbor sampling via a random rank permutation."""

    # Section 3 is deterministic at query time (the motivation for
    # Section 4), so the serving engine may coalesce duplicate queries.
    deterministic_queries = True

    def __init__(
        self,
        family: LSHFamily,
        radius: float,
        far_radius: Optional[float] = None,
        num_hashes: Optional[int] = None,
        num_tables: Optional[int] = None,
        recall: float = 0.99,
        max_expected_far_collisions: float = 1.0,
        seed: SeedLike = None,
    ):
        super().__init__(
            family=family,
            radius=radius,
            far_radius=far_radius,
            num_hashes=num_hashes,
            num_tables=num_tables,
            recall=recall,
            max_expected_far_collisions=max_expected_far_collisions,
            use_ranks=True,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Return the minimum-rank r-near colliding point (Section 3 query).

        Scans the ``L`` colliding buckets in rank order and returns the near
        point with the smallest rank; because the rank permutation is
        uniform, the answer is a uniform draw from the colliding near points
        (deterministic given the construction randomness — repeated queries
        return the same neighbor).  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        value_cache: dict = {}
        best_rank = np.inf
        best_index: Optional[int] = None
        best_value: Optional[float] = None

        for bucket in self.tables.query_buckets(query):
            stats.buckets_probed += 1
            for position, index in enumerate(bucket.indices):
                index = int(index)
                rank = int(bucket.ranks[position])
                if rank >= best_rank:
                    # Bucket is sorted by rank: nothing later can improve.
                    break
                if index == exclude_index:
                    continue
                stats.candidates_examined += 1
                already_evaluated = index in value_cache
                value = self._value(index, query, value_cache)
                if not already_evaluated:
                    stats.distance_evaluations += 1
                if self.measure.within(value, self.radius):
                    best_rank = rank
                    best_index = index
                    best_value = value
                    break  # first near point in this bucket has the bucket's lowest near rank
        return QueryResult(index=best_index, value=best_value, stats=stats)

    # ------------------------------------------------------------------
    def sample_detailed_from_candidates(
        self, query: Point, view: tuple, exclude_index: Optional[int] = None
    ) -> QueryResult:
        """Fast path over a pre-gathered rank-sorted candidate view.

        The Section 3 answer is "the r-near colliding point of smallest
        rank", which is a function of the colliding multiset alone: walking
        the rank-sorted view and returning the first near point is exactly
        equivalent to the per-bucket scan of :meth:`sample_detailed`, without
        the Python loop over ``L`` buckets.  Duplicate entries (one per
        colliding table) cost one cache lookup each.
        """
        ranks, indices = view
        stats = QueryStats(buckets_probed=self.tables.num_tables)
        value_cache: dict = {}
        for index in indices.tolist():
            if index == exclude_index:
                continue
            if index in value_cache:
                continue  # already evaluated (and found far) at a lower rank
            stats.candidates_examined += 1
            value = self._value(index, query, value_cache)
            stats.distance_evaluations += 1
            if self.measure.within(value, self.radius):
                return QueryResult(index=index, value=value, stats=stats)
        return QueryResult(index=None, value=None, stats=stats)

    def sample_k(self, query: Point, k: int, replacement: bool = True) -> List[int]:
        """Sample ``k`` near neighbors.

        Without replacement this is the direct Section 3.1 algorithm: the
        ``k`` r-near colliding points with the smallest ranks.  With
        replacement it falls back to repeating the query against fresh rank
        draws (see :class:`~repro.core.rank_perturbation.RankPerturbationSampler`
        for the structure that makes repeated queries properly independent).
        """
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        if k == 0:
            return []
        if replacement:
            return super().sample_k(query, k, replacement=True)
        return [index for index, _ in self._k_lowest_rank_neighbors(query, k)]

    def _k_lowest_rank_neighbors(self, query: Point, k: int) -> List[tuple]:
        """The ``k`` near colliding points with smallest ranks as ``(index, rank)``."""
        value_cache: dict = {}
        found: dict = {}
        for bucket in self.tables.query_buckets(query):
            near_in_bucket = 0
            for position, index in enumerate(bucket.indices):
                index = int(index)
                rank = int(bucket.ranks[position])
                if index in found:
                    near_in_bucket += 1
                    if near_in_bucket >= k:
                        break
                    continue
                value = self._value(index, query, value_cache)
                if self.measure.within(value, self.radius):
                    found[index] = rank
                    near_in_bucket += 1
                    if near_in_bucket >= k:
                        break
        ordered = sorted(found.items(), key=lambda item: item[1])
        return ordered[:k]

"""Section 3: the rank-permutation r-NNS data structure.

Construction assigns every data point a random *rank* (a position in a random
permutation drawn independently of the LSH randomness) and stores every LSH
bucket sorted by rank.  A query scans each colliding bucket in rank order
until the first r-near point and returns, over all ``L`` buckets, the near
point with the smallest rank.  Because the permutation is independent of the
hashing, every point of ``B_S(q, r)`` is equally likely to carry the smallest
rank, so — conditioned on the whole neighborhood colliding at least once,
which the choice of ``L`` guarantees with high probability — the output is
uniform over ``B_S(q, r)`` (Theorem 1).

Section 3.1: returning the ``k`` near points with the smallest ranks yields a
uniform sample of size ``k`` *without replacement*.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.exceptions import InvalidParameterError
from repro.lsh.family import LSHFamily
from repro.rng import SeedLike
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("permutation", inputs="family")
class PermutationFairSampler(LSHNeighborSampler):
    """Fair r-near-neighbor sampling via a random rank permutation."""

    # Section 3 is deterministic at query time (the motivation for
    # Section 4), so the serving engine may coalesce duplicate queries.
    deterministic_queries = True

    # The Section 3 answer is the minimum-rank near colliding point, so it is
    # determined by a rank prefix of the colliding view — the property the
    # sharded engine's bounded per-shard gather exploits.
    supports_rank_prefix_scan = True

    def __init__(
        self,
        family: LSHFamily,
        radius: float,
        far_radius: Optional[float] = None,
        num_hashes: Optional[int] = None,
        num_tables: Optional[int] = None,
        recall: float = 0.99,
        max_expected_far_collisions: float = 1.0,
        seed: SeedLike = None,
    ):
        super().__init__(
            family=family,
            radius=radius,
            far_radius=far_radius,
            num_hashes=num_hashes,
            num_tables=num_tables,
            recall=recall,
            max_expected_far_collisions=max_expected_far_collisions,
            use_ranks=True,
            seed=seed,
        )

    #: First evaluation chunk of the rank-ordered scan; subsequent chunks
    #: grow geometrically so a query with a distant first near point costs
    #: O(log) kernel calls instead of one per candidate.  Kept small: on
    #: serving workloads the first near point usually sits within the first
    #: few candidates, and a wide first chunk would overshoot on every query.
    _SCAN_CHUNK = 8

    # ------------------------------------------------------------------
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Return the minimum-rank r-near colliding point (Section 3 query).

        The answer is a function of the colliding multiset alone, so the
        query gathers the rank-sorted view of all colliding buckets once and
        scans it with batched distance kernels (see
        :meth:`sample_detailed_from_candidates`); because the rank
        permutation is uniform, the answer is a uniform draw from the
        colliding near points (deterministic given the construction
        randomness — repeated queries return the same neighbor).  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        return self.sample_detailed_from_candidates(
            query, self.tables.colliding_view(query), exclude_index=exclude_index
        )

    # ------------------------------------------------------------------
    def sample_detailed_from_candidates(
        self, query: Point, view: tuple, exclude_index: Optional[int] = None
    ) -> QueryResult:
        """Vectorized scan of a pre-gathered rank-sorted candidate view.

        The Section 3 answer is "the r-near colliding point of smallest
        rank": deduplicate the view preserving rank order, then score
        geometrically growing chunks through one distance kernel each until
        the first near point.  ``candidates_examined`` counts the distinct
        candidates up to and including the returned one;
        ``distance_evaluations`` counts the pairs actually scored (the final
        chunk may overshoot the hit).
        """
        _, indices = view
        stats = QueryStats(buckets_probed=self.tables.num_tables)
        evaluator = self._evaluator(query)
        # Dedupe keeping each point's first (lowest-rank) occurrence, then
        # restore rank order among the survivors.
        unique, first_seen = np.unique(indices, return_index=True)
        candidates = unique[np.argsort(first_seen, kind="stable")]
        if exclude_index is not None:
            candidates = candidates[candidates != exclude_index]

        start = 0
        chunk = self._SCAN_CHUNK
        while start < candidates.size:
            batch = candidates[start : start + chunk]
            values = evaluator.values(batch)
            near_mask = self.measure.within_mask(values, self.radius)
            hits = np.flatnonzero(near_mask)
            if hits.size:
                position = int(hits[0])
                stats.candidates_examined += position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(
                    index=int(batch[position]), value=float(values[position]), stats=stats
                )
            stats.candidates_examined += int(batch.size)
            start += chunk
            chunk *= 4
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)

    def sample_detailed_from_prefix(
        self, query: Point, view: tuple, complete: bool, exclude_index: Optional[int] = None
    ) -> Optional[QueryResult]:
        """Scan a rank-prefix view, answering only when provably identical.

        The same chunked scan as :meth:`sample_detailed_from_candidates`,
        with one extra rule: a chunk may only be scored while it lies
        entirely inside the prefix.  Deduplication keeps each point's first
        (lowest-rank) occurrence, so the deduplicated prefix is a *prefix of
        the full deduplicated candidate sequence* — any hit found in a
        fully-contained chunk is therefore the global minimum-rank near
        point, with bit-identical values and work counters.  Returns ``None``
        when the prefix is exhausted first (no near point among its
        candidates, or the next chunk would be cut short); the caller widens
        the prefix and retries.
        """
        if complete:
            return self.sample_detailed_from_candidates(
                query, view, exclude_index=exclude_index
            )
        _, indices = view
        stats = QueryStats(buckets_probed=self.tables.num_tables)
        evaluator = self._evaluator(query)
        unique, first_seen = np.unique(indices, return_index=True)
        candidates = unique[np.argsort(first_seen, kind="stable")]
        if exclude_index is not None:
            candidates = candidates[candidates != exclude_index]

        start = 0
        chunk = self._SCAN_CHUNK
        while start < candidates.size:
            if start + chunk > candidates.size:
                # The chunk would be cut short by the prefix boundary: on the
                # full view it would score more candidates, so values and
                # counters could diverge.  Ask for a longer prefix.
                return None
            batch = candidates[start : start + chunk]
            values = evaluator.values(batch)
            hits = np.flatnonzero(self.measure.within_mask(values, self.radius))
            if hits.size:
                position = int(hits[0])
                stats.candidates_examined += position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(
                    index=int(batch[position]), value=float(values[position]), stats=stats
                )
            stats.candidates_examined += int(batch.size)
            start += chunk
            chunk *= 4
        return None

    def sample_k_from_prefix(
        self,
        query: Point,
        view: tuple,
        complete: bool,
        k: int,
        replacement: bool = True,
    ) -> Optional[List[int]]:
        """Answer :meth:`sample_k` from a rank-prefix view, when provable.

        With replacement the sampler is query-deterministic, so the request
        reduces to one certified single draw repeated ``k`` times.  Without
        replacement this runs the exact Section 3.1 chunk schedule of
        :meth:`_k_lowest_rank_neighbors` over the (deduplicated) prefix:
        hits accumulate in rank order and later chunks only append, so once
        a fully-contained chunk run has produced ``k`` hits the result is
        final.  Returns ``None`` when an incomplete prefix would cut a
        chunk short, or runs out before ``k`` hits — the full view might
        hold more candidates, so nothing short of a longer prefix can prove
        the answer.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        if k == 0:
            return []
        if replacement:
            result = self.sample_detailed_from_prefix(query, view, complete)
            if result is None:
                return None
            if result.index is None:
                return []
            return [int(result.index)] * k
        _, indices = view
        evaluator = self._evaluator(query)
        unique, first_seen = np.unique(indices, return_index=True)
        candidates = unique[np.argsort(first_seen, kind="stable")]

        found: List[int] = []
        start = 0
        chunk = max(self._SCAN_CHUNK, 2 * k)
        while start < candidates.size and len(found) < k:
            if not complete and start + chunk > candidates.size:
                return None
            batch = slice(start, start + chunk)
            near_mask = self.measure.within_mask(
                evaluator.values(candidates[batch]), self.radius
            )
            found.extend(int(index) for index in candidates[batch][near_mask])
            start += chunk
            chunk *= 4
        if len(found) < k and not complete:
            return None
        return found[:k]

    def sample_k(self, query: Point, k: int, replacement: bool = True) -> List[int]:
        """Sample ``k`` near neighbors.

        Without replacement this is the direct Section 3.1 algorithm: the
        ``k`` r-near colliding points with the smallest ranks.  With
        replacement it falls back to repeating the query against fresh rank
        draws (see :class:`~repro.core.rank_perturbation.RankPerturbationSampler`
        for the structure that makes repeated queries properly independent).
        """
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        if k == 0:
            return []
        if replacement:
            return super().sample_k(query, k, replacement=True)
        return [index for index, _ in self._k_lowest_rank_neighbors(query, k)]

    def _k_lowest_rank_neighbors(self, query: Point, k: int) -> List[tuple]:
        """The ``k`` near colliding points with smallest ranks as ``(index, rank)``.

        Same chunked kernel scan as the single-draw query, continued until
        ``k`` near points have been found (or the view is exhausted).
        """
        ranks, indices = self.tables.colliding_view(query)
        evaluator = self._evaluator(query)
        unique, first_seen = np.unique(indices, return_index=True)
        order = np.argsort(first_seen, kind="stable")
        candidates = unique[order]
        candidate_ranks = ranks[first_seen[order]]

        found: List[tuple] = []
        start = 0
        chunk = max(self._SCAN_CHUNK, 2 * k)
        while start < candidates.size and len(found) < k:
            batch = slice(start, start + chunk)
            near_mask = self.measure.within_mask(
                evaluator.values(candidates[batch]), self.radius
            )
            found.extend(
                (int(index), int(rank))
                for index, rank in zip(candidates[batch][near_mask], candidate_ranks[batch][near_mask])
            )
            start += chunk
            chunk *= 4
        return found[:k]

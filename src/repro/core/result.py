"""Result containers returned by the samplers' detailed query methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class QueryStats:
    """Work counters for a single query.

    These are the quantities the paper's running-time theorems are stated in
    terms of, so benchmarks and tests can check the *shape* of the cost
    (e.g. that the Section 3 structure examines
    ``O(L + b(q, cr) / (b(q, r) + 1))`` points) without relying on wall-clock
    noise.

    Attributes
    ----------
    candidates_examined:
        Number of point references read from buckets (with multiplicity).
    distance_evaluations:
        Number of exact measure (pair) evaluations performed.  Vectorized
        samplers may evaluate a whole bucket or chunk at once and stop at the
        first hit, so this can exceed ``candidates_examined``; each pair is
        still evaluated at most once per query (memoized).
    buckets_probed:
        Number of hash buckets (or filter buckets) inspected.
    rounds:
        Number of rejection-sampling rounds (Sections 4 and 5.2).
    kernel_calls:
        Number of batched distance-kernel invocations dispatched for the
        query.  The vectorized candidate-evaluation pipeline scores a whole
        candidate array per call, so this stays near one per rejection round
        / bucket rather than one per candidate — the counter the perf-guard
        CI job asserts on.
    """

    candidates_examined: int = 0
    distance_evaluations: int = 0
    buckets_probed: int = 0
    rounds: int = 0
    kernel_calls: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as a plain JSON-serializable dict.

        The one serialization recipe shared by the HTTP ``/v1/stats`` and
        query endpoints (:mod:`repro.server`) and the
        ``benchmarks/results/*.json`` writers, so counter names never drift
        between the wire format and the checked-in benchmark artifacts.
        """
        return {name: int(getattr(self, name)) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "QueryStats":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f: int(data[f]) for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)


@dataclass
class QueryResult:
    """Outcome of a single sampling query.

    Attributes
    ----------
    index:
        Index of the returned dataset point, or ``None`` when the sampler
        found no near neighbor (the paper's ``⊥``).
    value:
        The measure value (distance or similarity) between the returned point
        and the query, when it was computed.
    stats:
        Work counters for the query.
    """

    index: Optional[int]
    value: Optional[float] = None
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def found(self) -> bool:
        """True when a near neighbor was returned."""
        return self.index is not None

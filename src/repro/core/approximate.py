"""Approximate-neighborhood sampling (the relaxed notion analysed in Q2).

Har-Peled and Mahabadi's relaxed fairness notion samples uniformly from some
set ``S'`` that contains every r-near neighbor and no point farther than
``cr``.  In the concrete LSH instantiation discussed in Section 1.2 and
evaluated in Section 6.2, ``S' = B(q, cr) ∩ (union of colliding buckets)``:
the query collects everything found in the ``L`` buckets and returns a
uniform point among those with similarity at least ``cr`` (distance at most
``cr``).  This avoids filtering down to the exact neighborhood — hence the
speed-up — but, as the Figure 2 instance shows, points whose neighborhoods
are tightly clustered end up strongly under-represented.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("approximate", inputs="family")
class ApproximateNeighborhoodSampler(LSHNeighborSampler):
    """Uniform sampling over the colliding points within the relaxed radius.

    The relaxed threshold is the ``far_radius`` (``cr``) passed at
    construction time; the ``radius`` (``r``) is kept so callers can still
    ask whether the returned point was a true near neighbor.
    """

    def sample_detailed(self, query: Point, exclude_index: int = None) -> QueryResult:
        """Draw uniformly from the colliding points within the relaxed radius.

        Points are filtered against ``far_radius`` (``cr``), not ``radius``:
        this is Har-Peled and Mahabadi's approximate-neighborhood notion, so
        the returned point may be a cr-near (rather than r-near) neighbor.
        See :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        # Hash once: distinct candidates and multiset size from one gather.
        buckets = self.tables.query_buckets(query)
        parts = [bucket.indices for bucket in buckets if bucket.indices.size]
        stats.buckets_probed = self.tables.num_tables
        stats.candidates_examined = sum(part.size for part in parts)
        candidates = self.tables.distinct_indices(parts)
        if exclude_index is not None:
            candidates = candidates[candidates != exclude_index]
        if candidates.size == 0:
            return QueryResult(index=None, value=None, stats=stats)
        evaluator = self._evaluator(query)
        values = evaluator.values(candidates)
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        relaxed_mask = self.measure.within_mask(values, self.far_radius)
        relaxed = candidates[relaxed_mask]
        if relaxed.size == 0:
            return QueryResult(index=None, value=None, stats=stats)
        position = int(self._query_rng.integers(0, relaxed.size))
        chosen = int(relaxed[position])
        chosen_value = float(values[relaxed_mask][position])
        return QueryResult(index=chosen, value=chosen_value, stats=stats)

    def candidate_set(self, query: Point) -> np.ndarray:
        """The realized set ``S'`` for this query (distinct colliding points within ``cr``)."""
        self._check_fitted()
        candidates = self.tables.query_candidates(query)
        if candidates.size == 0:
            return candidates
        values = self._evaluator(query).values(candidates)
        return candidates[self.measure.within_mask(values, self.far_radius)]

"""Appendix A: independent sampling for a single repeated query.

The Section 3 structure is deterministic at query time, so repeating the same
query always returns the same point.  Appendix A fixes this for the special
case where *one* query is repeated many times: after returning the lowest-rank
near point ``x``, the structure swaps the rank of ``x`` with the rank of a
point chosen uniformly among the ranks ``{rank(x), ..., n-1}`` (a step of a
Fisher-Yates shuffle).  After the swap it is impossible to tell how the
remaining near neighbors are distributed among the ranks above ``rank(x)``,
so the next repetition of the query is again a fresh uniform draw.

The buckets must therefore support rank updates.  The paper uses priority
queues; we keep each bucket as a pair of parallel lists (ranks ascending,
point indices) and maintain them with :mod:`bisect`, which gives logarithmic
updates on top of a cache-friendly layout.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.lsh.family import LSHFamily
from repro.rng import SeedLike
from repro.types import Point
from repro.registry import register_sampler


class _DynamicBucket:
    """A bucket whose members are kept sorted by their (mutable) ranks."""

    __slots__ = ("ranks", "indices")

    def __init__(self) -> None:
        self.ranks: List[int] = []
        self.indices: List[int] = []

    def insert(self, rank: int, index: int) -> None:
        """Splice point *index* with *rank* into its sorted position."""
        position = bisect.bisect_left(self.ranks, rank)
        self.ranks.insert(position, rank)
        self.indices.insert(position, index)

    def remove(self, rank: int, index: int) -> None:
        """Remove the (rank, index) pair (tolerating duplicate ranks)."""
        position = bisect.bisect_left(self.ranks, rank)
        while position < len(self.ranks) and self.ranks[position] == rank:
            if self.indices[position] == index:
                del self.ranks[position]
                del self.indices[position]
                return
            position += 1
        raise KeyError(f"point {index} with rank {rank} not found in bucket")

    def __len__(self) -> int:
        return len(self.indices)


@register_sampler("rank_perturbation", inputs="family")
class RankPerturbationSampler(LSHNeighborSampler):
    """Section 3 sampler + Appendix A rank perturbation after every query."""

    # The perturbation walk indexes rank->point arrays by rank value, so the
    # ranks must be a permutation of 0..n-1; the dynamic table layer's large
    # i.i.d. rank domain is incompatible (attach() rejects it cleanly).
    supports_dynamic_ranks = False

    def __init__(
        self,
        family: LSHFamily,
        radius: float,
        far_radius: Optional[float] = None,
        num_hashes: Optional[int] = None,
        num_tables: Optional[int] = None,
        recall: float = 0.99,
        max_expected_far_collisions: float = 1.0,
        seed: SeedLike = None,
    ):
        super().__init__(
            family=family,
            radius=radius,
            far_radius=far_radius,
            num_hashes=num_hashes,
            num_tables=num_tables,
            recall=recall,
            max_expected_far_collisions=max_expected_far_collisions,
            use_ranks=True,
            seed=seed,
        )
        # point index -> rank, and rank -> point index (inverse permutation)
        self._point_rank: Optional[np.ndarray] = None
        self._rank_point: Optional[np.ndarray] = None
        # per table: point index -> bucket key, and key -> dynamic bucket
        self._point_keys: List[List[Hashable]] = []
        self._dynamic_tables: List[Dict[Hashable, _DynamicBucket]] = []

    # ------------------------------------------------------------------
    def _after_fit(self) -> None:
        n = self.num_points
        self._point_rank = np.array(self.ranks, dtype=np.int64)
        self._rank_point = np.empty(n, dtype=np.int64)
        self._rank_point[self._point_rank] = np.arange(n)

        # Rebuild dynamic (mutable) buckets from the static tables so the
        # dataset does not need to be rehashed; the static buckets are
        # already sorted by rank, which keeps the dynamic lists sorted too.
        self._point_keys = []
        self._dynamic_tables = []
        for table in self.tables._tables:
            keys_of_points: List[Hashable] = [None] * n
            dynamic: Dict[Hashable, _DynamicBucket] = {}
            for key, bucket in table.items():
                dynamic_bucket = _DynamicBucket()
                for rank, index in zip(bucket.ranks, bucket.indices):
                    dynamic_bucket.ranks.append(int(rank))
                    dynamic_bucket.indices.append(int(index))
                    keys_of_points[int(index)] = key
                dynamic[key] = dynamic_bucket
            self._point_keys.append(keys_of_points)
            self._dynamic_tables.append(dynamic)

    # ------------------------------------------------------------------
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Appendix A query: re-randomize one rank, return the minimum-rank near point.

        Before the scan, a random point's rank is redrawn (the "perturbation"),
        which makes repeated queries independent while keeping each answer
        uniform over the colliding near points.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        value_cache: dict = {}
        best_rank = np.inf
        best_index: Optional[int] = None
        best_value: Optional[float] = None

        query_keys = self.tables.query_keys(query)
        for table, key in zip(self._dynamic_tables, query_keys):
            bucket = table.get(key)
            stats.buckets_probed += 1
            if bucket is None:
                continue
            for rank, index in zip(bucket.ranks, bucket.indices):
                if rank >= best_rank:
                    break
                if index == exclude_index:
                    continue
                stats.candidates_examined += 1
                already_evaluated = index in value_cache
                value = self._value(index, query, value_cache)
                if not already_evaluated:
                    stats.distance_evaluations += 1
                if self.measure.within(value, self.radius):
                    best_rank = rank
                    best_index = index
                    best_value = value
                    break
        if best_index is not None:
            self._perturb_rank(best_index)
        return QueryResult(index=best_index, value=best_value, stats=stats)

    # ------------------------------------------------------------------
    def _perturb_rank(self, point: int) -> None:
        """Swap the rank of *point* with a uniformly chosen rank above it."""
        n = self.num_points
        rank_x = int(self._point_rank[point])
        target_rank = int(self._query_rng.integers(rank_x, n))
        if target_rank == rank_x:
            return
        other = int(self._rank_point[target_rank])
        self._swap_ranks(point, other)

    def _swap_ranks(self, a: int, b: int) -> None:
        rank_a = int(self._point_rank[a])
        rank_b = int(self._point_rank[b])
        for table, keys in zip(self._dynamic_tables, self._point_keys):
            bucket_a = table[keys[a]]
            bucket_b = table[keys[b]]
            bucket_a.remove(rank_a, a)
            bucket_b.remove(rank_b, b)
            bucket_a.insert(rank_b, a)
            bucket_b.insert(rank_a, b)
        self._point_rank[a], self._point_rank[b] = rank_b, rank_a
        self._rank_point[rank_a], self._rank_point[rank_b] = b, a

    # ------------------------------------------------------------------
    @property
    def current_ranks(self) -> np.ndarray:
        """Current rank of every point (changes after every successful query)."""
        self._check_fitted()
        return self._point_rank.copy()

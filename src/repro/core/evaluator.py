"""Per-query memoized candidate evaluation over the columnar dataset stores.

:class:`CandidateEvaluator` is the seam between the samplers' query
procedures and the distance layer.  Each query builds one evaluator; every
candidate array the query wants scored goes through :meth:`values`, which

* memoizes results in a flat ``float64`` array indexed by dataset slot
  (``NaN`` = not yet evaluated), replacing the per-``int`` dict caches the
  scalar loops used — re-examining a candidate in a later rejection round is
  an array gather, not a Python dict probe per index;
* evaluates all not-yet-seen candidates with **one**
  :meth:`~repro.distances.base.Measure.values_at` kernel call, so a
  rejection round costs one kernel invocation instead of one Python-level
  ``Measure.value`` call per candidate;
* counts fresh pair evaluations (``fresh_evaluations``, feeding
  ``QueryStats.distance_evaluations``) and kernel invocations
  (``kernel_calls``), the counters the perf-guard CI job asserts on.

When the dataset has no columnar store (exotic representations) — or when
the :func:`scalar_kernels` override is active — the evaluator scores
candidates through the scalar ``Measure.value`` loop instead.  The two modes
are *exactly* equivalent: the scalar measure implementations share the batch
kernels' arithmetic recipes, so seeded sampler outputs are byte-identical
either way (property-tested in ``tests/test_vectorized_equivalence.py``).

One caveat of the ``NaN``-sentinel memo: a pair whose measure value is
itself ``NaN`` (possible only with NaN-poisoned input data) is re-evaluated
on every round and re-counted in ``fresh_evaluations``.  Correctness is
unaffected; only the counters inflate for such degenerate inputs.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.distances.base import Measure

#: Process-wide switch for the vectorized kernels.  Tests and benchmarks
#: flip it through :func:`scalar_kernels` to pin the scalar reference path.
_VECTORIZE = True


@contextmanager
def scalar_kernels():
    """Force the scalar per-pair fallback while the context is active.

    Used by the equivalence tests (scalar vs vectorized byte-identical
    outputs) and by the benchmarks to measure the pipeline's speedup against
    the pre-vectorization evaluation cost.
    """
    global _VECTORIZE
    previous = _VECTORIZE
    _VECTORIZE = False
    try:
        yield
    finally:
        _VECTORIZE = previous


def vectorized_kernels_enabled() -> bool:
    """Whether evaluators built now will use the batch kernels."""
    return _VECTORIZE


class CandidateEvaluator:
    """Memoized measure evaluation between one query and dataset slots.

    Parameters
    ----------
    measure:
        The measure to evaluate.
    query:
        The query point (fixed for the evaluator's lifetime).
    store:
        Columnar :class:`~repro.store.base.DatasetStore` over the dataset, or
        ``None`` to force the scalar fallback.
    dataset:
        The raw dataset container (indexed by slot) for the scalar fallback.
    size:
        Number of dataset slots; bounds the memo array.
    """

    __slots__ = ("_measure", "_query", "_store", "_dataset", "_memo", "fresh_evaluations", "kernel_calls")

    def __init__(
        self,
        measure: Measure,
        query,
        store=None,
        dataset=None,
        size: int = 0,
    ):
        self._measure = measure
        self._query = query
        self._store = store if (_VECTORIZE and store is not None) else None
        self._dataset = dataset
        self._memo = np.full(size, np.nan, dtype=np.float64)
        #: Pair evaluations actually performed (memo misses).
        self.fresh_evaluations = 0
        #: Batch evaluations dispatched (one per round with any memo miss).
        self.kernel_calls = 0

    # ------------------------------------------------------------------
    def values(self, indices: np.ndarray) -> np.ndarray:
        """Measure values for the (distinct) dataset slots *indices*.

        Slots seen in an earlier call are served from the memo; the rest are
        scored with a single kernel call.  *indices* should not contain
        duplicates — duplicate misses would be evaluated (and counted) twice.
        """
        if indices.size == 0:
            return np.empty(0, dtype=np.float64)
        memo = self._memo
        values = memo[indices]
        miss_mask = np.isnan(values)
        if miss_mask.any():
            missing = indices[miss_mask]
            fresh = self._evaluate(missing)
            memo[missing] = fresh
            values[miss_mask] = fresh
            self.fresh_evaluations += int(missing.size)
            self.kernel_calls += 1
        return values

    def value(self, index: int) -> float:
        """Memoized scalar lookup (one slot)."""
        cached = self._memo[index]
        if not np.isnan(cached):
            return float(cached)
        return float(self.values(np.asarray([index], dtype=np.intp))[0])

    # ------------------------------------------------------------------
    def _evaluate(self, indices: np.ndarray) -> np.ndarray:
        if self._store is not None:
            return np.asarray(
                self._measure.values_at(self._store, indices, self._query), dtype=np.float64
            )
        dataset = self._dataset
        measure = self._measure
        query = self._query
        return np.asarray(
            [measure.value(dataset[int(i)], query) for i in indices], dtype=np.float64
        )

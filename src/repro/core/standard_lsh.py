"""The standard (unfair) LSH query — the baseline whose bias Figure 1 shows.

The classical query procedure iterates over the ``L`` hash tables and, inside
each colliding bucket, over the stored points, returning the *first* r-near
point it encounters.  Because closer points collide with the query in more
tables, they are found earlier much more often: the output distribution over
``B_S(q, r)`` is heavily biased towards high similarity.  Section 2.2 of the
paper gives the two-point example (``S = {x, y}``, ``q = x``) where the bias
is extreme.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.exceptions import InvalidParameterError
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("standard_lsh", inputs="family")
class StandardLSHSampler(LSHNeighborSampler):
    """First-found r-near neighbor over the ``L`` LSH tables.

    Parameters are those of :class:`~repro.core.base.LSHNeighborSampler`,
    plus:

    shuffle_tables:
        When True, the order in which tables are visited is randomized per
        query.  The paper notes the bias persists "even if the order in which
        the L hash tables are visited is randomized"; the flag lets
        experiments verify that claim.
    far_point_limit_factor:
        The theoretical query procedure stops after seeing ``3 L`` far points
        and reports ``⊥``; set to ``None`` to disable the early stop (as the
        experimental implementation effectively does when hunting for a near
        point).
    """

    def __init__(self, *args, shuffle_tables: bool = False, far_point_limit_factor: float = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._shuffle_tables = shuffle_tables
        self._far_point_limit_factor = far_point_limit_factor

    @property
    def deterministic_queries(self) -> bool:
        """First-found scanning is deterministic unless table order is shuffled."""
        return not self._shuffle_tables

    @property
    def supports_rank_prefix_scan(self) -> bool:
        """Prefix replay requires the fixed 0..L-1 table visit order.

        With ``shuffle_tables`` the visit order is drawn from the query RNG,
        and a refused replay followed by a fallback would advance that RNG
        twice — so shuffled samplers opt out of the prefix path entirely.
        """
        return not self._shuffle_tables

    #: The classical scan consumes buckets table by table, so replaying it
    #: from a gathered prefix needs each reference tagged with its source
    #: table plus the true per-table bucket sizes (to certify that no probed
    #: bucket was truncated by the rank cut).
    prefix_scan_needs_tables = True

    def sample_detailed(self, query: Point, exclude_index: int = None) -> QueryResult:
        """Classical LSH query: return the first r-near colliding point found.

        Fast — but the output is biased towards close neighbors (the paper's
        Figure 1); use the fair samplers when uniformity matters.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        evaluator = self._evaluator(query)
        far_limit = (
            None
            if self._far_point_limit_factor is None
            else int(self._far_point_limit_factor * self.tables.num_tables)
        )
        far_seen = 0

        buckets = self.tables.query_buckets(query)
        order = range(len(buckets))
        if self._shuffle_tables:
            order = self._query_rng.permutation(len(buckets))
        for table_index in order:
            bucket = buckets[int(table_index)]
            stats.buckets_probed += 1
            members = bucket.indices
            if exclude_index is not None:
                members = members[members != exclude_index]
            if members.size == 0:
                continue
            # Score the whole bucket with one (memoized) kernel call, then
            # replay the classical scan-order semantics on the mask: stop at
            # the first near member, or at the far member that pushes
            # far_seen past the limit, whichever the scan reaches first.
            near_mask = self.measure.within_mask(evaluator.values(members), self.radius)
            near_positions = np.flatnonzero(near_mask)
            first_near = int(near_positions[0]) if near_positions.size else None
            stop_position = None
            if far_limit is not None:
                cumulative_far = np.cumsum(~near_mask)
                over = np.flatnonzero(far_seen + cumulative_far > far_limit)
                stop_position = int(over[0]) if over.size else None
            if first_near is not None and (stop_position is None or first_near < stop_position):
                stats.candidates_examined += first_near + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                index = int(members[first_near])
                return QueryResult(index=index, value=evaluator.value(index), stats=stats)
            if stop_position is not None:
                stats.candidates_examined += stop_position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(index=None, value=None, stats=stats)
            stats.candidates_examined += int(members.size)
            far_seen += int(members.size)  # no near member: the whole bucket was far
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)

    # ------------------------------------------------------------------
    def sample_detailed_from_prefix(
        self, query: Point, view: tuple, complete: bool, exclude_index: Optional[int] = None
    ) -> Optional[QueryResult]:
        """Replay the classical scan from a rank-prefix gather, when provable.

        Ranked buckets are stored sorted ascending by rank, so selecting a
        table's references out of the (rank-sorted) gathered view restores
        that bucket's scan order exactly.  The scan is replayed table by
        table with the same one-kernel-call-per-bucket scoring as
        :meth:`sample_detailed`; because ``distance_evaluations`` counts the
        *whole* scored bucket, the replay refuses (returns ``None``) the
        moment it reaches a bucket the rank cut truncated — scoring a partial
        member array would diverge the counters even when the answer index
        happens to match.  Requires the per-table metadata a
        ``with_tables`` gather attaches (``table_ids`` / ``table_sizes``);
        views without it are refused.
        """
        if self._shuffle_tables:
            return None
        if getattr(view, "table_ids", None) is None or view.table_sizes is None:
            return None
        self._check_fitted()
        stats = QueryStats()
        evaluator = self._evaluator(query)
        far_limit = (
            None
            if self._far_point_limit_factor is None
            else int(self._far_point_limit_factor * self.tables.num_tables)
        )
        far_seen = 0

        _, indices = view
        table_ids = view.table_ids
        table_sizes = view.table_sizes
        for table_index in range(len(table_sizes)):
            stats.buckets_probed += 1
            members = indices[table_ids == table_index]
            if int(members.size) != int(table_sizes[table_index]):
                # The rank cut truncated this bucket before the scan decided:
                # a partial scoring would diverge the work counters.
                return None
            if exclude_index is not None:
                members = members[members != exclude_index]
            if members.size == 0:
                continue
            near_mask = self.measure.within_mask(evaluator.values(members), self.radius)
            near_positions = np.flatnonzero(near_mask)
            first_near = int(near_positions[0]) if near_positions.size else None
            stop_position = None
            if far_limit is not None:
                cumulative_far = np.cumsum(~near_mask)
                over = np.flatnonzero(far_seen + cumulative_far > far_limit)
                stop_position = int(over[0]) if over.size else None
            if first_near is not None and (stop_position is None or first_near < stop_position):
                stats.candidates_examined += first_near + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                index = int(members[first_near])
                return QueryResult(index=index, value=evaluator.value(index), stats=stats)
            if stop_position is not None:
                stats.candidates_examined += stop_position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(index=None, value=None, stats=stats)
            stats.candidates_examined += int(members.size)
            far_seen += int(members.size)
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)

    def sample_k_from_prefix(
        self,
        query: Point,
        view: tuple,
        complete: bool,
        k: int,
        replacement: bool = True,
    ) -> Optional[List[int]]:
        """Answer :meth:`sample_k` from a rank-prefix view, when provable.

        The classical query is deterministic (shuffling opts out of the
        prefix path), so repeating it never finds a second point: with
        replacement ``k`` draws all return the first-found neighbor, and
        without replacement the seen-set of the generic
        :meth:`~repro.core.base.NeighborSampler.sample_k` loop collapses the
        result to at most one index.  One certified single-draw replay
        therefore decides the whole request.
        """
        if k < 0:
            raise InvalidParameterError(f"k must be non-negative, got {k}")
        if k == 0:
            return []
        result = self.sample_detailed_from_prefix(query, view, complete)
        if result is None:
            return None
        if result.index is None:
            return []
        if replacement:
            return [int(result.index)] * k
        return [int(result.index)]

"""The standard (unfair) LSH query — the baseline whose bias Figure 1 shows.

The classical query procedure iterates over the ``L`` hash tables and, inside
each colliding bucket, over the stored points, returning the *first* r-near
point it encounters.  Because closer points collide with the query in more
tables, they are found earlier much more often: the output distribution over
``B_S(q, r)`` is heavily biased towards high similarity.  Section 2.2 of the
paper gives the two-point example (``S = {x, y}``, ``q = x``) where the bias
is extreme.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("standard_lsh", inputs="family")
class StandardLSHSampler(LSHNeighborSampler):
    """First-found r-near neighbor over the ``L`` LSH tables.

    Parameters are those of :class:`~repro.core.base.LSHNeighborSampler`,
    plus:

    shuffle_tables:
        When True, the order in which tables are visited is randomized per
        query.  The paper notes the bias persists "even if the order in which
        the L hash tables are visited is randomized"; the flag lets
        experiments verify that claim.
    far_point_limit_factor:
        The theoretical query procedure stops after seeing ``3 L`` far points
        and reports ``⊥``; set to ``None`` to disable the early stop (as the
        experimental implementation effectively does when hunting for a near
        point).
    """

    def __init__(self, *args, shuffle_tables: bool = False, far_point_limit_factor: float = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._shuffle_tables = shuffle_tables
        self._far_point_limit_factor = far_point_limit_factor

    @property
    def deterministic_queries(self) -> bool:
        """First-found scanning is deterministic unless table order is shuffled."""
        return not self._shuffle_tables

    def sample_detailed(self, query: Point, exclude_index: int = None) -> QueryResult:
        """Classical LSH query: return the first r-near colliding point found.

        Fast — but the output is biased towards close neighbors (the paper's
        Figure 1); use the fair samplers when uniformity matters.  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.
        """
        self._check_fitted()
        stats = QueryStats()
        evaluator = self._evaluator(query)
        far_limit = (
            None
            if self._far_point_limit_factor is None
            else int(self._far_point_limit_factor * self.tables.num_tables)
        )
        far_seen = 0

        buckets = self.tables.query_buckets(query)
        order = range(len(buckets))
        if self._shuffle_tables:
            order = self._query_rng.permutation(len(buckets))
        for table_index in order:
            bucket = buckets[int(table_index)]
            stats.buckets_probed += 1
            members = bucket.indices
            if exclude_index is not None:
                members = members[members != exclude_index]
            if members.size == 0:
                continue
            # Score the whole bucket with one (memoized) kernel call, then
            # replay the classical scan-order semantics on the mask: stop at
            # the first near member, or at the far member that pushes
            # far_seen past the limit, whichever the scan reaches first.
            near_mask = self.measure.within_mask(evaluator.values(members), self.radius)
            near_positions = np.flatnonzero(near_mask)
            first_near = int(near_positions[0]) if near_positions.size else None
            stop_position = None
            if far_limit is not None:
                cumulative_far = np.cumsum(~near_mask)
                over = np.flatnonzero(far_seen + cumulative_far > far_limit)
                stop_position = int(over[0]) if over.size else None
            if first_near is not None and (stop_position is None or first_near < stop_position):
                stats.candidates_examined += first_near + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                index = int(members[first_near])
                return QueryResult(index=index, value=evaluator.value(index), stats=stats)
            if stop_position is not None:
                stats.candidates_examined += stop_position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(index=None, value=None, stats=stats)
            stats.candidates_examined += int(members.size)
            far_seen += int(members.size)  # no near member: the whole bucket was far
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)

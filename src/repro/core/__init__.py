"""Fair near-neighbor samplers — the paper's primary contribution.

The samplers all answer the same question — "give me a point of
``B_S(q, r)``" — but with different guarantees and costs:

========================  =======================================================
:class:`ExactUniformSampler`       brute force; exact uniform; O(n) per query
:class:`StandardLSHSampler`        classical LSH query; fast; **biased** towards
                                   close points (the baseline whose unfairness the
                                   paper demonstrates)
:class:`CollectAllFairSampler`     "fair LSH" baseline of Section 6: collect every
                                   colliding near point, dedupe, sample uniformly
:class:`ApproximateNeighborhoodSampler`  the relaxed notion of Har-Peled and
                                   Mahabadi analysed in Section 6.2
:class:`PermutationFairSampler`    Section 3: rank-permutation r-NNS structure
:class:`RankPerturbationSampler`   Appendix A: repeated-query independent sampling
:class:`IndependentFairSampler`    Section 4: full r-NNIS structure with segments
                                   and count-distinct sketches
:class:`GaussianFilterIndex`       Section 5 / Appendix B: nearly-linear-space
                                   locality-sensitive filter index for inner product
:class:`FilterFairSampler`         Section 5.2: alpha-NNIS query on top of the
                                   filter index
========================  =======================================================
"""

from repro.core.result import QueryResult, QueryStats
from repro.core.evaluator import CandidateEvaluator, scalar_kernels, vectorized_kernels_enabled
from repro.core.base import NeighborSampler, LSHNeighborSampler
from repro.core.exact import ExactUniformSampler
from repro.core.standard_lsh import StandardLSHSampler
from repro.core.fair_collect import CollectAllFairSampler
from repro.core.approximate import ApproximateNeighborhoodSampler
from repro.core.fair_nns import PermutationFairSampler
from repro.core.rank_perturbation import RankPerturbationSampler
from repro.core.fair_nnis import IndependentFairSampler
from repro.core.filter_nn import GaussianFilterIndex
from repro.core.filter_nnis import FilterFairSampler
from repro.core.weighted import (
    WeightedFairSampler,
    exponential_similarity_weight,
    inverse_distance_weight,
)
from repro.core.sampling import sample_with_replacement, sample_without_replacement

__all__ = [
    "QueryResult",
    "QueryStats",
    "CandidateEvaluator",
    "scalar_kernels",
    "vectorized_kernels_enabled",
    "NeighborSampler",
    "LSHNeighborSampler",
    "ExactUniformSampler",
    "StandardLSHSampler",
    "CollectAllFairSampler",
    "ApproximateNeighborhoodSampler",
    "PermutationFairSampler",
    "RankPerturbationSampler",
    "IndependentFairSampler",
    "GaussianFilterIndex",
    "FilterFairSampler",
    "WeightedFairSampler",
    "exponential_similarity_weight",
    "inverse_distance_weight",
    "sample_with_replacement",
    "sample_without_replacement",
]

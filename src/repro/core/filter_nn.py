"""Section 5 / Appendix B: the nearly-linear-space locality-sensitive filter index.

Construction (for inner-product similarity on unit vectors): draw
``t = ceil(1 / (1 - alpha^2))`` independent blocks of ``m^(1/t)`` random
Gaussian vectors each.  Every data point is assigned, in each block, to the
random vector with which it has the largest inner product; the concatenation
of the ``t`` winning indices is the point's bucket, so each point is stored
exactly once (linear space).  This is the "concomitant order statistics"
filter family with the tensoring trick used for efficient evaluation.

Query: evaluate all ``t * m^(1/t)`` filters; in each block keep the filters
whose inner product with the query is at least ``alpha * Delta_i - f(alpha,
epsilon)`` where ``Delta_i`` is the block maximum and
``f(alpha, epsilon) = sqrt(2 (1 - alpha^2) ln(1/epsilon))``; probe every
bucket in the cross product of the surviving filters and return the first
point with inner product at least ``beta`` (Theorem 3 / Theorem 7).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import NeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.distances.inner_product import InnerProductSimilarity
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.rng import SeedLike, ensure_rng
from repro.types import Dataset, Point
from repro.registry import register_sampler

BucketKey = Tuple[int, ...]


def query_threshold_offset(alpha: float, epsilon: float) -> float:
    """The paper's ``f(alpha, epsilon) = sqrt(2 (1 - alpha^2) ln(1/epsilon))``."""
    if not -1.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must be in (-1, 1), got {alpha}")
    if not 0.0 < epsilon < 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return math.sqrt(2.0 * (1.0 - alpha * alpha) * math.log(1.0 / epsilon))


def filter_rho(alpha: float, beta: float) -> float:
    """The exponent ``rho = (1 - alpha^2)(1 - beta^2) / (1 - alpha beta)^2``."""
    if not -1.0 < beta < alpha < 1.0:
        raise InvalidParameterError(f"need -1 < beta < alpha < 1, got alpha={alpha}, beta={beta}")
    return (1.0 - alpha * alpha) * (1.0 - beta * beta) / (1.0 - alpha * beta) ** 2


def default_filters_per_block(n: int, alpha: float, beta: float) -> int:
    """Heuristic ``m^(1/t)`` from the analysis: ``m = n^{(1-beta^2)/(1-alpha beta)^2}``."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    t = max(1, int(math.ceil(1.0 / (1.0 - alpha * alpha))))
    exponent = (1.0 - beta * beta) / (1.0 - alpha * beta) ** 2
    m = max(2.0, float(n) ** exponent)
    return max(2, int(round(m ** (1.0 / t))))


@register_sampler("gaussian_filter", inputs="self")
class GaussianFilterIndex(NeighborSampler):
    """Single filter structure solving the (alpha, beta)-NN problem.

    Parameters
    ----------
    alpha:
        Near inner-product threshold (the structure guarantees finding a
        point if one with inner product >= alpha exists).
    beta:
        Relaxed threshold; any returned point has inner product >= beta.
    epsilon:
        Per-point failure probability knob entering the query threshold
        offset ``f(alpha, epsilon)``.
    filters_per_block:
        ``m^(1/t)``; defaults to the analysis-driven heuristic.
    num_blocks:
        ``t``; defaults to ``ceil(1 / (1 - alpha^2))``.
    max_probed_buckets:
        Safety cap on the number of cross-product buckets examined per query.
    """

    def __init__(
        self,
        alpha: float,
        beta: float,
        epsilon: float = 0.1,
        filters_per_block: Optional[int] = None,
        num_blocks: Optional[int] = None,
        max_probed_buckets: int = 100_000,
        seed: SeedLike = None,
    ):
        super().__init__()
        if not -1.0 < beta < alpha < 1.0:
            raise InvalidParameterError(
                f"need -1 < beta < alpha < 1, got alpha={alpha}, beta={beta}"
            )
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.epsilon = float(epsilon)
        self.measure = InnerProductSimilarity()
        self.radius = self.alpha
        self.far_radius = self.beta
        self.num_blocks = (
            int(num_blocks)
            if num_blocks is not None
            else max(1, int(math.ceil(1.0 / (1.0 - alpha * alpha))))
        )
        self._requested_filters_per_block = filters_per_block
        self.filters_per_block: Optional[int] = None
        self.max_probed_buckets = int(max_probed_buckets)
        self._rng = ensure_rng(seed)
        self._blocks: List[np.ndarray] = []
        self._buckets: Dict[BucketKey, List[int]] = {}
        self._point_keys: List[BucketKey] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset) -> "GaussianFilterIndex":
        """Build the filter index over a 2-D array of unit vectors.

        Draws the Gaussian filter directions, evaluates every point against
        every filter and stores the survivors per filter; returns ``self``.
        """
        data = np.asarray(dataset, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise EmptyDatasetError("GaussianFilterIndex requires a non-empty 2-D dataset")
        n, dim = data.shape
        self.filters_per_block = (
            int(self._requested_filters_per_block)
            if self._requested_filters_per_block is not None
            else default_filters_per_block(n, self.alpha, self.beta)
        )
        if self.filters_per_block < 2:
            raise InvalidParameterError("filters_per_block must be at least 2")

        self._blocks = [
            self._rng.standard_normal((self.filters_per_block, dim)) for _ in range(self.num_blocks)
        ]
        # Winning filter per block for every point; bucket key = tuple of winners.
        winners = np.stack([np.argmax(data @ block.T, axis=1) for block in self._blocks], axis=1)
        self._buckets = {}
        self._point_keys = []
        for index in range(n):
            key: BucketKey = tuple(int(w) for w in winners[index])
            self._point_keys.append(key)
            self._buckets.setdefault(key, []).append(index)
        self._store_dataset(data)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets."""
        self._check_fitted()
        return len(self._buckets)

    def bucket_of(self, index: int) -> BucketKey:
        """The bucket key a data point was stored under."""
        self._check_fitted()
        return self._point_keys[index]

    def total_stored_references(self) -> int:
        """Each point is stored exactly once (linear space invariant)."""
        self._check_fitted()
        return sum(len(members) for members in self._buckets.values())

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _surviving_filters(self, query: np.ndarray) -> List[np.ndarray]:
        """Per block, the filter indices above the query threshold."""
        offset = query_threshold_offset(self.alpha, self.epsilon)
        surviving = []
        for block in self._blocks:
            scores = block @ query
            delta = float(np.max(scores))
            threshold = self.alpha * delta - offset
            surviving.append(np.flatnonzero(scores >= threshold))
        return surviving

    def candidate_buckets(self, query: Point) -> List[BucketKey]:
        """Non-empty buckets in the cross product of surviving filters.

        When the cross product is larger than the number of non-empty
        buckets, it is cheaper to test every non-empty bucket against the
        per-block surviving sets instead; the method picks whichever
        enumeration is smaller.
        """
        self._check_fitted()
        query = np.asarray(query, dtype=float)
        surviving = self._surviving_filters(query)
        product_size = 1
        for indices in surviving:
            product_size *= max(1, indices.size)
            if product_size > self.max_probed_buckets:
                break

        if product_size <= min(len(self._buckets), self.max_probed_buckets):
            keys = []
            for combo in itertools.product(*[list(map(int, s)) for s in surviving]):
                if combo in self._buckets:
                    keys.append(combo)
            return keys

        surviving_sets = [set(int(i) for i in s) for s in surviving]
        keys = []
        for key in self._buckets:
            if all(key[block] in surviving_sets[block] for block in range(self.num_blocks)):
                keys.append(key)
        return keys

    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Standard (alpha, beta)-NN query: first point with inner product >= beta.

        Each probed bucket is scored with one batched inner-product kernel
        call (memoized across buckets); the scan stops at the first member
        reaching ``beta``, exactly as the member-by-member loop did.
        """
        self._check_fitted()
        query = np.asarray(query, dtype=float)
        stats = QueryStats()
        evaluator = self._evaluator(query)
        for key in self.candidate_buckets(query):
            stats.buckets_probed += 1
            members = np.asarray(self._buckets[key], dtype=np.intp)
            if exclude_index is not None:
                members = members[members != exclude_index]
            if members.size == 0:
                continue
            values = evaluator.values(members)
            hits = np.flatnonzero(values >= self.beta)
            if hits.size:
                position = int(hits[0])
                stats.candidates_examined += position + 1
                stats.distance_evaluations = evaluator.fresh_evaluations
                stats.kernel_calls = evaluator.kernel_calls
                return QueryResult(
                    index=int(members[position]), value=float(values[position]), stats=stats
                )
            stats.candidates_examined += int(members.size)
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)

    def search(self, query: Point) -> Optional[int]:
        """Convenience alias for the plain near-neighbor search."""
        return self.sample_detailed(query).index

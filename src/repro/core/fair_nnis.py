"""Section 4: the r-near neighbor *independent* sampling (r-NNIS) structure.

The structure keeps the Section 3 layout (LSH tables whose buckets are sorted
by a random rank permutation) and adds two ingredients:

* every bucket carries a mergeable count-distinct sketch of its members, so a
  query can estimate ``s_q = |S_q|``, the number of distinct points colliding
  with it, by merging the ``L`` bucket sketches;
* instead of returning the minimum-rank near point (which is deterministic
  given the permutation), the query splits the rank space into ``k`` equal
  segments, repeatedly picks a segment uniformly at random, retrieves the
  near colliding points inside it with a rank-range query, and accepts the
  segment with probability proportional to how many near points it holds.
  Accepting returns a uniform point of the segment — overall every near
  point is returned with probability ``1 / (k * lambda)`` per round, so the
  output is uniform, and because all the randomness is drawn fresh at query
  time, answers to different queries are independent (Theorem 2).

``k`` starts at roughly ``2 * s_q`` (so segments hold O(log n) near points
with high probability) and is halved every ``Sigma = Theta(log^2 n)``
unsuccessful rounds, which keeps the expected query time at
``O~(n^rho + b(q, cr) / (b(q, r) + 1))``.

Served over :class:`~repro.engine.dynamic.DynamicLSHTables`, the per-bucket
sketches are maintained *incrementally*: each mutation batch's
:class:`~repro.engine.dynamic.MutationDelta` is folded into only the
affected bucket sketches (inserts merge, deletions trigger a targeted
per-bucket rebuild), so sketch upkeep costs ``O(batch x L)`` instead of the
``O(total bucket refs)`` a full rebuild would — see :meth:`_after_update`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.base import LSHNeighborSampler
from repro.core.result import QueryResult, QueryStats
from repro.exceptions import InvalidParameterError
from repro.lsh.family import LSHFamily
from repro.lsh.tables import point_digest
from repro.rng import SeedLike
from repro.sketches.kmv import BottomTSketch, DistinctCountSketcher
from repro.types import Point
from repro.registry import register_sampler


@register_sampler("independent", inputs="family")
class IndependentFairSampler(LSHNeighborSampler):
    """The Section 4 r-NNIS data structure.

    The per-bucket sketches are derived state, so this sampler opts into
    structured mutation deltas (see
    :attr:`~repro.core.base.LSHNeighborSampler.consumes_mutation_deltas`)
    and maintains the sketches incrementally under churn.

    Extra parameters beyond :class:`~repro.core.base.LSHNeighborSampler`:

    lambda_factor, sigma_factor:
        Constants in ``lambda = lambda_factor * log2(n)`` (per-segment near
        point budget) and ``Sigma = sigma_factor * log2(n)^2`` (rounds before
        halving ``k``).
    sketch_epsilon, sketch_delta:
        Accuracy of the per-bucket count-distinct sketches; the paper uses
        ``epsilon = 1/2`` and a polynomially small ``delta``.
    sketch_min_bucket:
        Buckets smaller than this store no sketch; their contribution to the
        colliding-count estimate is computed exactly at query time (this is
        the paper's space optimisation for tiny buckets).
    max_rounds:
        Hard safety cap on the total number of rejection rounds.
    """

    consumes_mutation_deltas = True

    def __init__(
        self,
        family: LSHFamily,
        radius: float,
        far_radius: Optional[float] = None,
        num_hashes: Optional[int] = None,
        num_tables: Optional[int] = None,
        recall: float = 0.99,
        max_expected_far_collisions: float = 1.0,
        lambda_factor: float = 1.0,
        sigma_factor: float = 1.0,
        sketch_epsilon: float = 0.5,
        sketch_delta: float = 0.01,
        sketch_min_bucket: int = 16,
        max_rounds: int = 100_000,
        seed: SeedLike = None,
    ):
        super().__init__(
            family=family,
            radius=radius,
            far_radius=far_radius,
            num_hashes=num_hashes,
            num_tables=num_tables,
            recall=recall,
            max_expected_far_collisions=max_expected_far_collisions,
            use_ranks=True,
            seed=seed,
        )
        if lambda_factor <= 0 or sigma_factor <= 0:
            raise InvalidParameterError("lambda_factor and sigma_factor must be positive")
        if max_rounds < 1:
            raise InvalidParameterError("max_rounds must be >= 1")
        self.lambda_factor = float(lambda_factor)
        self.sigma_factor = float(sigma_factor)
        self.sketch_epsilon = float(sketch_epsilon)
        self.sketch_delta = float(sketch_delta)
        self.sketch_min_bucket = int(sketch_min_bucket)
        self.max_rounds = int(max_rounds)
        self._sketcher: Optional[DistinctCountSketcher] = None
        # per table: bucket key -> sketch (only for buckets above the size cutoff)
        self._bucket_sketches: List[Dict[Hashable, BottomTSketch]] = []
        # Caches keyed by a hashable digest of the query.  Both cached values
        # (the merged sketch estimate and the rank-sorted view of the
        # colliding points) are deterministic functions of the query and the
        # construction randomness, so caching them does not affect the output
        # distribution; it avoids re-merging L sketches and re-concatenating
        # L buckets when the same query is repeated (the common case in
        # fairness audits).
        self._estimate_cache: Dict[Hashable, float] = {}
        self._view_cache: Dict[Hashable, tuple] = {}
        self._cache_limit = 1024

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _after_fit(self) -> None:
        # Runs on fit() and attach() alike: any previously served queries'
        # cached estimates/views describe the old tables and must go.
        self._estimate_cache.clear()
        self._view_cache.clear()
        n = self.num_points
        self._sketcher = DistinctCountSketcher(
            universe_size=n,
            epsilon=self.sketch_epsilon,
            delta=self.sketch_delta,
            seed=self._perm_rng,
        )
        self._bucket_sketches = []
        for table in self.tables._tables:
            sketches: Dict[Hashable, BottomTSketch] = {}
            # Through _refresh_bucket_sketch so that attach()ing to dynamic
            # tables with tombstones still awaiting compaction never bakes
            # dead members into a sketch.
            for key in table:
                self._refresh_bucket_sketch(table, sketches, key)
            self._bucket_sketches.append(sketches)

    def _after_update(self, delta=None) -> None:
        """Attached tables mutated: bring the per-bucket sketches up to date.

        With a structured :class:`~repro.engine.dynamic.MutationDelta` the
        work is proportional to the batch, not the index: inserted members
        are folded into the ``L`` affected bucket sketches with
        :meth:`~repro.sketches.kmv.BottomTSketch.add_keys` (sketches are
        union-closed, so merging is exact), buckets whose live size crosses
        ``sketch_min_bucket`` are promoted to a stored sketch, and only the
        buckets that saw deletions or a compaction sweep fall back to a
        targeted rebuild — a tombstone cannot be subtracted from a sketch.
        Buckets that shrink below ``sketch_min_bucket`` drop their sketch
        (keeping it would over-count forever; the exact small-bucket path
        takes over).  The serving engine coalesces updates so this runs once
        per mutation batch, not once per mutation.

        Without a delta (``None`` — the tables do not track mutations) every
        sketch is rebuilt from compacted buckets, the pre-incremental
        behaviour.
        """
        # A full rebuild also re-draws the sketcher for the current n, so the
        # sketch hash range tracks the index size.  The incremental path must
        # not outgrow the fit-time range indefinitely (keys colliding in a
        # too-small range make sketches under-count): once the slot count
        # exceeds the sketcher's universe with 4x headroom, fall back to one
        # full rebuild — amortized O(1) per insert, since the next fallback
        # is another 4x away.  getattr: sketchers unpickled from pre-v2
        # snapshots lack the attribute, and the 0 default routes them into
        # the same rebuild (which re-draws a modern sketcher).
        if (
            delta is None
            or delta.overflowed
            or self.tables.num_points > 4 * getattr(self._sketcher, "universe_size", 0)
        ):
            self.tables.ensure_clean_buckets()
            self._after_fit()
            # The rebuild reflects everything up to and including the
            # compaction it just forced — whose sweep record landed in the
            # tables' fresh delta.  Drop that residue and re-anchor, or the
            # next sync would redundantly re-sketch every swept bucket.
            self.tables.discard_delta()
            self._synced_epoch = getattr(self.tables, "mutation_epoch", 0)
            return
        # Cached estimates and candidate views may describe pre-mutation
        # tables; drop them even for an empty delta — they are cheap to
        # rebuild and notify_update only fires when something mutated.
        self._estimate_cache.clear()
        self._view_cache.clear()
        if delta.is_empty:
            return
        for table_index, table in enumerate(self.tables._tables):
            sketches = self._bucket_sketches[table_index]
            rebuild_keys = delta.rebuild_keys(table_index)
            for key in rebuild_keys:
                self._refresh_bucket_sketch(table, sketches, key)
            for key, members in delta.inserted_members[table_index].items():
                if key in rebuild_keys:
                    continue  # already rebuilt from the current live members
                sketch = sketches.get(key)
                if sketch is not None:
                    sketch.add_keys(members)
                else:
                    # No stored sketch: the bucket was small before the batch;
                    # promote it if the inserts pushed it past the cutoff.
                    self._refresh_bucket_sketch(table, sketches, key)

    def _refresh_bucket_sketch(
        self, table: Dict[Hashable, object], sketches: Dict[Hashable, BottomTSketch], key: Hashable
    ) -> None:
        """Recompute one bucket's stored sketch from its live members.

        Drops the sketch when the bucket disappeared or its live size is
        below ``sketch_min_bucket`` (small buckets are answered exactly at
        query time); otherwise re-sketches the surviving members.  Bucket
        arrays may still hold tombstoned references awaiting compaction, so
        membership is filtered through the table layer's liveness mask.
        """
        bucket = table.get(key)
        if bucket is None:
            sketches.pop(key, None)
            return
        members = bucket.indices
        alive = getattr(self.tables, "alive", None)
        if alive is not None:
            members = members[alive[members]]
        if members.size >= self.sketch_min_bucket:
            sketches[key] = self._sketcher.sketch_keys(int(i) for i in members)
        else:
            sketches.pop(key, None)

    def _stripped_for_snapshot(self):
        # The per-query caches are deterministic functions of the tables and
        # rebuild lazily; pickling them only bloats snapshots.
        clone = super()._stripped_for_snapshot()
        clone._estimate_cache = {}
        clone._view_cache = {}
        return clone

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def estimate_colliding_count(self, query: Point) -> float:
        """Sketch-based estimate of ``s_q``, the number of colliding points."""
        self._check_fitted()
        digest = point_digest(query)
        if digest is not None and digest in self._estimate_cache:
            return self._estimate_cache[digest]
        query_keys = self.tables.query_keys(query)
        # query_buckets (rather than raw table access) so that tombstoned
        # members awaiting compaction are filtered out of the on-the-fly
        # small-bucket sketches; stored sketches already exclude them.  The
        # keys are passed along so the query is hashed only once.
        buckets = self.tables.query_buckets(query, keys=query_keys)
        merged: Optional[BottomTSketch] = None
        for table_index, (key, bucket) in enumerate(zip(query_keys, buckets)):
            if len(bucket) == 0:
                continue
            sketch = self._bucket_sketches[table_index].get(key)
            if sketch is None:
                # Small bucket: build its sketch on the fly (cheaper than
                # storing sketches for the long tail of tiny buckets).
                sketch = self._sketcher.sketch_keys(int(i) for i in bucket.indices)
            merged = sketch if merged is None else merged.merge(sketch)
        estimate = 0.0 if merged is None else float(merged.estimate())
        if digest is not None:
            if len(self._estimate_cache) >= self._cache_limit:
                self._estimate_cache.clear()
            self._estimate_cache[digest] = estimate
        return estimate

    def _colliding_view(self, query: Point) -> tuple:
        """Rank-sorted ``(ranks, indices)`` of all points colliding with *query*.

        Concatenating the ``L`` colliding buckets once per query turns every
        segment lookup of the rejection loop into a single ``searchsorted``
        instead of a Python loop over all tables.  Points colliding in
        several tables appear once per table; the segment lookup
        de-duplicates after slicing.
        """
        digest = point_digest(query)
        if digest is not None and digest in self._view_cache:
            return self._view_cache[digest]
        view = self.tables.colliding_view(query)
        if digest is not None:
            if len(self._view_cache) >= self._cache_limit:
                self._view_cache.clear()
            self._view_cache[digest] = view
        return view

    def _log_n(self) -> float:
        # Live count: dead slots neither collide nor get sampled, so they
        # should not inflate the rejection-round budgets.
        return max(1.0, math.log2(max(2, self.tables.num_live)))

    def _segment_bounds(self, segment: int, k: int) -> tuple:
        # Integer arithmetic: the dynamic table layer uses a 2^62-sized rank
        # domain, where float division would mis-place segment boundaries.
        domain = self.tables.rank_domain
        lo = (segment * domain) // k
        hi = ((segment + 1) * domain) // k if segment + 1 < k else domain
        return lo, hi

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def sample_detailed(self, query: Point, exclude_index: Optional[int] = None) -> QueryResult:
        """Section 4 r-NNIS query: segment rejection sampling over ranks.

        Estimates ``s_q`` from the merged bucket sketches, splits the rank
        domain into ``k ~ 2 s_q`` segments and rejection-samples segments
        until one is accepted; all randomness is drawn at query time, so
        answers are uniform *and* independent across repeated queries
        (Theorem 2).  See
        :meth:`~repro.core.base.NeighborSampler.sample_detailed` for the
        parameters and the returned :class:`~repro.core.result.QueryResult`.

        The rejection loop is fully vectorized: a round's candidate segment
        is one ``searchsorted`` slice of the rank-sorted colliding view, the
        segment's distinct members are scored with a single batched distance
        kernel (memoized across rounds), and the per-round randomness —
        uniform segment choice and acceptance coin — is pre-drawn in one
        chunk per ``k`` level (``sigma`` rounds) instead of one RNG call per
        round.  Each round consumes exactly one segment draw and one
        acceptance uniform, so the output distribution is the paper's.
        """
        self._check_fitted()
        return self._sample_over_view(query, self._colliding_view(query), exclude_index)

    def sample_detailed_from_candidates(
        self, query: Point, view: tuple, exclude_index: Optional[int] = None
    ) -> QueryResult:
        """Fast path over a pre-gathered rank-sorted candidate view.

        The Section 4 rejection loop is a function of the colliding multiset
        (plus fresh query-time randomness), so the batch engine can hand over
        the view it already gathered and skip this sampler's own gather/cache
        lookup.  Identical distribution to :meth:`sample_detailed`.
        """
        return self._sample_over_view(query, view, exclude_index)

    def _sample_over_view(
        self, query: Point, view: tuple, exclude_index: Optional[int]
    ) -> QueryResult:
        stats = QueryStats()
        n = self.tables.num_live

        estimate = self.estimate_colliding_count(query)
        if estimate <= 0.0:
            return QueryResult(index=None, value=None, stats=stats)

        # k: smallest power of two >= 2 * s_hat, capped so segments are never
        # smaller than a single rank slot.
        k = 1
        while k < 2.0 * estimate and k < 2 * n:
            k *= 2
        lam = max(1.0, self.lambda_factor * self._log_n())
        sigma = max(1, int(math.ceil(self.sigma_factor * self._log_n() ** 2)))

        view_ranks, view_indices = view
        evaluator = self._evaluator(query)
        num_tables = self.tables.num_tables
        within_mask = self.measure.within_mask
        radius = self.radius
        while k >= 1 and stats.rounds < self.max_rounds:
            # One chunk per k level: k halves after exactly sigma failed
            # rounds, so the segment choices and acceptance coins for the
            # whole level can be drawn in two array calls.
            chunk = min(sigma, self.max_rounds - stats.rounds)
            segments = self._query_rng.integers(0, k, size=chunk)
            acceptance = self._query_rng.random(chunk)
            for round_index in range(chunk):
                stats.rounds += 1
                lo, hi = self._segment_bounds(int(segments[round_index]), k)
                left = int(np.searchsorted(view_ranks, lo, side="left"))
                right = int(np.searchsorted(view_ranks, hi, side="left"))
                candidates = np.unique(view_indices[left:right])
                stats.buckets_probed += num_tables
                stats.candidates_examined += int(candidates.size)
                if exclude_index is not None:
                    candidates = candidates[candidates != exclude_index]

                if candidates.size:
                    near = candidates[within_mask(evaluator.values(candidates), radius)]
                else:
                    near = candidates

                if near.size and acceptance[round_index] < min(1.0, near.size / lam):
                    chosen = int(near[int(self._query_rng.integers(0, near.size))])
                    stats.distance_evaluations = evaluator.fresh_evaluations
                    stats.kernel_calls = evaluator.kernel_calls
                    return QueryResult(index=chosen, value=evaluator.value(chosen), stats=stats)
            k //= 2
        stats.distance_evaluations = evaluator.fresh_evaluations
        stats.kernel_calls = evaluator.kernel_calls
        return QueryResult(index=None, value=None, stats=stats)
